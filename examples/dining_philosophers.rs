//! The deadlock lab as a standalone demo: watch the cyclic hold-and-wait
//! happen, deterministically, then watch resource ordering prevent it.
//!
//! Run with: `cargo run --example dining_philosophers`

use labs::lab6_philosophers::{deadlock_rate, dine, naive_source, ordered_source, DinnerOutcome};
use minilang::compile_and_run;

fn main() {
    let rounds = 12;

    println!("== naive version: philosopher i takes fork i, then fork (i+1)%5 ==\n");
    let naive = naive_source(rounds);
    let mut shown = false;
    for seed in 0..30 {
        match dine(&naive, seed) {
            DinnerOutcome::Deadlocked(blocked) if !shown => {
                println!("seed {seed}: DEADLOCK — the cyclic hold-and-wait:");
                for b in &blocked {
                    println!("  {b}");
                }
                shown = true;
            }
            DinnerOutcome::Deadlocked(_) => {}
            DinnerOutcome::Completed(meals) => {
                println!("seed {seed}: finished with {meals} meals (got lucky)");
            }
            DinnerOutcome::Other(e) => println!("seed {seed}: unexpected: {e}"),
        }
        if shown && seed >= 4 {
            break;
        }
    }
    let rate = deadlock_rate(&naive, 0..30);
    println!("\ndeadlock rate over 30 seeded runs: {:.0}%", rate * 100.0);

    println!("\n== fixed version: philosopher 4 requests the forks in the other order ==\n");
    let fixed = ordered_source(rounds);
    let rate = deadlock_rate(&fixed, 0..30);
    println!("deadlock rate over 30 seeded runs: {:.0}%", rate * 100.0);

    // Show the first few scheduling events of one fixed run, as the lab
    // asks ("the message should show the philosopher number and the
    // relevant fork number").
    let out = compile_and_run(&ordered_source(1), 5).expect("fixed version runs");
    println!("\nevent log of one complete dinner (seed 5):");
    for line in out.stdout.lines().take(18) {
        println!("  {line}");
    }
    println!("  ...");
    let last = out.stdout.lines().last().unwrap_or("");
    println!("  {last}");
}
