//! A full course session: run each of the seven PDC labs the way the
//! closed labs did, then regenerate the paper's three evaluation tables.
//!
//! Run with: `cargo run --example course_session` (add `--release` for
//! speed; the cohort simulation autogrades 19 x 7 real VM submissions).

use assess::{table1, table2, table3};
use labs::{
    lab1_sync, lab2_spinlock, lab3_numa, lab4_procthread, lab5_bank, lab6_philosophers,
    lab7_boundedbuffer,
};

fn main() {
    println!("==================== closed-lab walkthrough ====================\n");

    // Lab 1 — the missing-synchronization counter.
    let buggy_losses = lab1_sync::wrong_seed_count(lab1_sync::BUGGY_SOURCE, 0..10);
    let fixed_losses = lab1_sync::wrong_seed_count(lab1_sync::FIXED_SOURCE, 0..10);
    println!("Lab 1 (synchronization):");
    println!("  buggy handout lost updates on {buggy_losses}/10 seeds");
    println!("  mutex-fixed version lost updates on {fixed_losses}/10 seeds\n");

    // Lab 2 — TAS vs TTAS coherence traffic.
    let tas = lab2_spinlock::coherence_trace(4, 100, 10, false, cluster::CoherenceProtocol::Mesi);
    let ttas = lab2_spinlock::coherence_trace(4, 100, 10, true, cluster::CoherenceProtocol::Mesi);
    println!("Lab 2 (spin lock & cache coherence), 4 cores, 100 acquisitions:");
    println!(
        "  TAS : {:>6} invalidations, {:>6} bus transactions",
        tas.invalidations, tas.bus_transactions
    );
    println!(
        "  TTAS: {:>6} invalidations, {:>6} bus transactions",
        ttas.invalidations, ttas.bus_transactions
    );
    println!(
        "  (TTAS spins in cache: hit rate {:.1}% vs {:.1}%)\n",
        ttas.hit_rate() * 100.0,
        tas.hit_rate() * 100.0
    );

    // Lab 3 — the UMA/NUMA access-time table.
    println!("Lab 3 (UMA and NUMA access times):");
    for row in lab3_numa::full_table(512, 4096) {
        println!(
            "  {:<24} {:>12.1} ns/access",
            row.domain.to_string(),
            row.mean_ns
        );
    }
    let mpi_times = lab3_numa::mpi_pull_experiment(4, 2048);
    println!(
        "  MPI pull (2048 words) virtual times by rank: {:?}\n",
        mpi_times
            .iter()
            .map(|t| format!("{:.0}ns", t))
            .collect::<Vec<_>>()
    );

    // Lab 4 — producer/consumer file copy.
    let ok = lab4_procthread::run_copy_checked(&(1..=50).collect::<Vec<i64>>(), 7).expect("runs");
    println!(
        "Lab 4 (process & thread management): 50-number file copy in order: {}\n",
        if ok { "PASS" } else { "FAIL" }
    );

    // Lab 5 — the bank account, steps (iv)-(vi).
    println!("Lab 5 (bank account):");
    let serial =
        lab5_bank::ending_balance(lab5_bank::BankStep::SerializedThreads, 0).expect("runs");
    println!(
        "  step iv  (serialized threads): balance {serial} (expected {})",
        lab5_bank::EXPECTED
    );
    let racy = lab5_bank::racy_balances(0..10);
    println!("  step v   (concurrent, racy)  : balances observed across 10 runs: {racy:?}");
    let locked = lab5_bank::ending_balance(lab5_bank::BankStep::ConcurrentLocked, 0).expect("runs");
    println!("  step vi  (mutex-protected)   : balance {locked}\n");

    // Lab 6 — dining philosophers.
    let naive_rate = lab6_philosophers::deadlock_rate(&lab6_philosophers::naive_source(15), 0..10);
    let fixed_rate =
        lab6_philosophers::deadlock_rate(&lab6_philosophers::ordered_source(15), 0..10);
    println!(
        "Lab 6 (deadlock): naive deadlock rate {:.0}%, resource-ordered {:.0}%\n",
        naive_rate * 100.0,
        fixed_rate * 100.0
    );

    // Lab 7 — the bounded buffer.
    println!("Lab 7 (bounded buffer):");
    println!(
        "  buggy handout correct on {:.0}% of seeds",
        lab7_boundedbuffer::correctness_rate(&lab7_boundedbuffer::buggy_source(), 0..10) * 100.0
    );
    println!(
        "  mutex fix     correct on {:.0}% of seeds",
        lab7_boundedbuffer::correctness_rate(&lab7_boundedbuffer::mutex_source(), 0..10) * 100.0
    );
    println!(
        "  semaphore fix correct on {:.0}% of seeds\n",
        lab7_boundedbuffer::correctness_rate(&lab7_boundedbuffer::semaphore_source(), 0..10)
            * 100.0
    );

    println!("==================== evaluation (paper vs reproduced) ====================\n");
    let seed = 2012; // Spring 2012, the semester the paper evaluated
    println!("{}", table1(seed).render());
    println!("{}", table2(seed).render());
    println!("{}", table3(seed).render());
}
