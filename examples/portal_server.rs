//! Serve the portal over real HTTP and drive it with a real client — the
//! closest thing to pointing a 2013 lab browser at grid.uhd.edu.
//!
//! Run with: `cargo run --example portal_server`
//! (binds 127.0.0.1:0 and exercises the API against itself; pass a port
//! number to keep it running for manual browsing, e.g. `-- 8080`.)
//!
//! Set `CCP_DATA_DIR=/some/dir` to boot durable: portal state persists to
//! write-ahead logs under the directory and survives a kill/restart (the
//! recovery report shows up in `/api/health`).

use ccp_core::{Portal, PortalConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use webportal::App;

fn http(addr: std::net::SocketAddr, raw: String) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("receive");
    out
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap_or("")
}

fn main() {
    let mut config = PortalConfig::default();
    if let Ok(dir) = std::env::var("CCP_DATA_DIR") {
        config.data_dir = Some(dir.into());
    }
    let mut portal = Portal::new(config);
    if portal.durable() {
        for r in portal.recovery_reports() {
            println!(
                "recovered {} log: {} records replayed in {}us (snapshot: {:?})",
                r.stream, r.records_replayed, r.wall_us, r.snapshot_lsn
            );
        }
        if let Some(e) = portal.wal_error() {
            eprintln!("durability degraded: {e}");
        }
    }
    portal
        .bootstrap_admin("admin", "change-me-please")
        .expect("bootstrap");
    let app = App::new(portal);
    let handle = webportal::serve(Arc::clone(&app), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();
    println!("portal serving on http://{addr}/");

    // Log in over the wire.
    let creds = r#"{"user":"admin","password":"change-me-please"}"#;
    let login = http(
        addr,
        format!(
            "POST /api/login HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{creds}",
            creds.len()
        ),
    );
    let token = body_of(&login)
        .split("\"token\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("token in response")
        .to_string();
    println!("logged in; token {}…", &token[..8]);

    // Create a student, then act as them.
    let body = r#"{"name":"demo","password":"demo-pass-99","role":"student"}"#;
    http(
        addr,
        format!(
            "POST /api/admin/users HTTP/1.1\r\nHost: {addr}\r\nCookie: sid={token}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    let creds = r#"{"user":"demo","password":"demo-pass-99"}"#;
    let login = http(
        addr,
        format!(
            "POST /api/login HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{creds}",
            creds.len()
        ),
    );
    let demo = body_of(&login)
        .split("\"token\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("token")
        .to_string();

    // Upload, compile and run a program — all over HTTP.
    let program = r#"fn main() { println("hello from the cluster, over HTTP"); }"#;
    http(
        addr,
        format!(
            "POST /api/file?path=web.mini HTTP/1.1\r\nHost: {addr}\r\nCookie: sid={demo}\r\nContent-Length: {}\r\n\r\n{program}",
            program.len()
        ),
    );
    let compiled = http(
        addr,
        format!("POST /api/compile?path=web.mini HTTP/1.1\r\nHost: {addr}\r\nCookie: sid={demo}\r\nContent-Length: 0\r\n\r\n"),
    );
    let artifact = body_of(&compiled)
        .split("\"artifact\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("artifact id")
        .to_string();
    println!("compiled to artifact {artifact}");
    let run = http(
        addr,
        format!("POST /api/run?artifact={artifact} HTTP/1.1\r\nHost: {addr}\r\nCookie: sid={demo}\r\nContent-Length: 0\r\n\r\n"),
    );
    println!("run response: {}", body_of(&run));

    // The HTML dashboard.
    let home = http(addr, format!("GET / HTTP/1.1\r\nHost: {addr}\r\n\r\n"));
    let title_line = home.lines().find(|l| l.contains("<title>")).unwrap_or("");
    println!("dashboard served: {title_line}");
    println!("requests served: {}", handle.served());

    // Optionally keep serving for manual exploration.
    if let Some(port) = std::env::args().nth(1) {
        println!("(re-binding on 127.0.0.1:{port} for manual browsing; Ctrl-C to stop)");
        let handle2 =
            webportal::serve(app, &format!("127.0.0.1:{port}")).expect("bind manual port");
        println!("open http://{}/", handle2.addr());
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    handle.shutdown();
    // Group commit may still hold a few appends in memory; force them out
    // so a durable run loses nothing at clean shutdown.
    if let Err(e) = app.write(|p| p.flush_wal()) {
        eprintln!("final WAL flush failed: {e}");
    }
    println!("server stopped cleanly");
}
