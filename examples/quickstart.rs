//! Quickstart: the §II user journey end to end, in one binary.
//!
//! Boots the UHD cluster portal, creates an instructor and a student,
//! uploads a parallel program through the file manager, compiles it,
//! runs it interactively, then submits it to the job distributor and
//! monitors it to completion.
//!
//! Run with: `cargo run --example quickstart`

use auth::Role;
use ccp_core::{Portal, PortalConfig};

fn main() {
    // 1. Boot the portal over the paper's 4-segment, 69-node cluster.
    let mut portal = Portal::new(PortalConfig::default());
    portal
        .bootstrap_admin("admin", "change-me-please")
        .expect("first admin");
    let (free, total, _) = portal.cluster_status();
    println!("cluster up: {free}/{total} cores free");

    // 2. Accounts: one faculty, one student.
    let admin = portal
        .login("admin", "change-me-please", 0)
        .expect("admin login");
    portal
        .create_user(&admin, "hlin", "faculty-pass-1", Role::Faculty, 0)
        .expect("create faculty");
    portal
        .create_user(&admin, "student1", "student-pass-1", Role::Student, 0)
        .expect("create student");

    // 3. The student logs in and uploads a program through the portal.
    let tok = portal
        .login("student1", "student-pass-1", 0)
        .expect("student login");
    let program = r#"
        var counter = 0;
        var m;
        fn worker(n) {
            for (var i = 0; i < n; i = i + 1) {
                lock(m);
                counter = counter + 1;
                unlock(m);
            }
        }
        fn main() {
            m = mutex();
            var t1 = spawn worker(1000);
            var t2 = spawn worker(1000);
            join(t1); join(t2);
            println("final counter = ", counter);
            return counter;
        }
    "#;
    portal
        .write_file(&tok, "counter.mini", program.as_bytes().to_vec(), 0)
        .expect("upload");
    println!("uploaded counter.mini to /home/student1");

    // 4. Compile; diagnostics come back gcc-style.
    let report = portal
        .compile(&tok, "counter.mini", 0)
        .expect("compile request");
    print!("{}", report.render());
    let artifact = report.artifact.expect("compilation succeeded").to_string();

    // 5. Run interactively (the "run in browser" button).
    let run = portal.run_interactive(&tok, &artifact, 42, 0).expect("run");
    let outcome = run.outcome.expect("program succeeded");
    print!("interactive run output: {}", outcome.stdout);
    println!(
        "  ({} instructions, {} context switches, {} peak threads)",
        outcome.executed, outcome.context_switches, outcome.peak_threads
    );

    // 6. Submit as a 4-core batch job and monitor it.
    let job = portal
        .submit_job(&tok, &artifact, 4, 10, 0)
        .expect("submit");
    println!("submitted {job} to the distributor");
    while !portal
        .job(&tok, job, 0)
        .expect("job view")
        .state
        .is_terminal()
    {
        portal.tick();
    }
    let view = portal.job(&tok, job, 0).expect("job view");
    println!("job finished: {}", view.state_label);
    print!("job stdout: {}", view.stdout);

    let (free, total, _) = portal.cluster_status();
    println!("cluster after drain: {free}/{total} cores free");
}
