//! ccp-top: a terminal dashboard over the portal's time-series store.
//!
//! Boots an in-process portal, drives a bursty seeded workload through the
//! job distributor, and every few ticks renders the same windowed queries
//! `/api/dashboard` serves — queue depth, throughput rates, wait/run
//! quantiles, and the SLO alert table. Because every panel reads the
//! tick-domain store, the frames below are identical on every run.
//!
//! Run with: `cargo run --example ccp_top`

use ccp_core::{Portal, PortalConfig, QuantilePanel, RatePanel};
use cluster::ClusterSpec;

fn rate(p: &RatePanel) -> String {
    match p.rate_milli {
        Some(r) => format!("{:>6}  {:>8.3}/t", p.total, r as f64 / 1000.0),
        None => format!("{:>6}  {:>10}", p.total, "-"),
    }
}

fn quant(q: &QuantilePanel) -> String {
    let show = |v: Option<f64>| match v {
        Some(v) if v.is_infinite() => "+Inf".to_string(),
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    };
    format!("p50 {:>6}  p99 {:>6}", show(q.p50), show(q.p99))
}

fn render_frame(portal: &Portal) {
    let d = portal.dashboard_view();
    println!(
        "── tick {:>4} ── window {} ── captures {} (evicted {}) ──",
        d.at, d.window, d.captures, d.evicted
    );
    let avg = d
        .queue_depth_avg_milli
        .map(|m| format!("{:.2}", m as f64 / 1000.0))
        .unwrap_or_else(|| "-".into());
    println!(
        "  queue {:>4} (avg {avg})   running {:>4}",
        d.queue_depth, d.jobs_running
    );
    println!("  submitted  {}", rate(&d.submitted));
    println!("  dispatched {}", rate(&d.dispatched));
    println!("  completed  {}", rate(&d.completed));
    println!("  node-lost  {}", rate(&d.node_lost));
    println!("  wait ticks  {}", quant(&d.wait_ticks));
    println!("  run  ticks  {}", quant(&d.run_ticks));
    for a in &d.alerts {
        let state = if a.firing { "FIRING" } else { "ok" };
        let since = a
            .since
            .map(|t| format!("since tick {t}"))
            .unwrap_or_else(|| "never breached".into());
        println!(
            "  slo {:<12} {:<7} {} ({} transitions)",
            a.slo, state, since, a.transitions
        );
    }
}

fn main() {
    // Two quad-core nodes: small enough that the burst below builds a real
    // backlog and trips the queue-depth objective.
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(1, 2),
        // Slow the VM down so each job spans many scheduler ticks.
        instructions_per_tick: 200,
        seed: 42,
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "change-me-please").unwrap();
    let tok = portal.login("admin", "change-me-please", 0).unwrap();

    // One compiled artifact feeds the whole workload.
    let program =
        "fn main() { var s = 0; for (var i = 0; i < 200; i = i + 1) { s = s + i; } return s; }";
    portal
        .write_file(&tok, "busy.mini", program.as_bytes().to_vec(), 0)
        .unwrap();
    let report = portal.compile(&tok, "busy.mini", 0).unwrap();
    let artifact = report.artifact.expect("compile succeeded").to_string();

    // A front-loaded burst (wide jobs early, backlog builds) followed by a
    // drain phase, so the queue-depth SLO fires and clears on screen.
    let mut submitted = 0u32;
    for _ in 0..240 {
        let now = portal.now_tick();
        if submitted < 80 {
            let cores = [4u32, 2, 2, 1][(submitted % 4) as usize];
            let est = 6 + (submitted % 5) as u64 * 3;
            portal
                .submit_job(&tok, &artifact, cores, est, now)
                .expect("cluster fits the job");
            submitted += 1;
        }
        portal.tick();
        if portal.now_tick().is_multiple_of(16) {
            render_frame(&portal);
        }
    }

    // Drain whatever is left, then show the closing frame.
    while portal.dashboard_view().queue_depth > 0 || portal.dashboard_view().jobs_running > 0 {
        portal.tick();
    }
    portal.tick();
    println!("── final ──");
    render_frame(&portal);
    let slow = portal.slow_ops(&tok, portal.now_tick()).unwrap();
    println!("slowest ops recorded: {}", slow.len());
}
