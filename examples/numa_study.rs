//! The UMA/NUMA study (Lab 3) at full width: on-node hierarchy sweep,
//! payload scaling for remote-node access, and a topology/collective sweep
//! over the message-passing kernel — the "topology, latency, routing"
//! module of the course.
//!
//! Run with: `cargo run --release --example numa_study`

use cluster::{AccessKind, MemorySystem};
use labs::lab3_numa;
use mpik::{Reduce, World};
use simnet::{LinkProfile, Pattern, Topology};

fn main() {
    println!("== on-node memory hierarchy (simulated ns/access) ==");
    for row in lab3_numa::measure_on_node(2048) {
        println!("  {:<24} {:>10.2}", row.domain.to_string(), row.mean_ns);
    }

    println!("\n== remote-node (MPI) access vs payload size ==");
    println!("  {:<12} {:>14}", "bytes", "ns/access");
    for shift in [6u32, 10, 14, 18, 20] {
        let row = lab3_numa::measure_remote_node(64, 1 << shift);
        println!("  {:<12} {:>14.0}", 1u64 << shift, row.mean_ns);
    }

    println!("\n== stride sweep: cache-line effects ==");
    let mut mem = MemorySystem::new(2, 2);
    println!("  {:<8} {:>12}", "stride", "ns/access");
    for stride in [8u64, 16, 32, 64, 128, 256] {
        let mean = mem.sweep(0, stride * 100_000, 4096, stride, AccessKind::Read);
        println!("  {:<8} {:>12.2}", stride, mean);
    }

    println!("\n== allreduce latency vs topology (8 ranks, virtual ns) ==");
    let topologies: Vec<(&str, Topology)> = vec![
        ("ring", Topology::ring(8)),
        ("mesh 2x4", Topology::mesh2d(2, 4)),
        ("hypercube", Topology::hypercube(3)),
        ("star", Topology::star(8)),
        ("clique", Topology::fully_connected(8)),
        ("cluster 2x4", Topology::segmented_cluster(2, 4)),
    ];
    println!(
        "  {:<14} {:>14} {:>10}",
        "topology", "max vt (ns)", "diameter"
    );
    for (name, topo) in topologies {
        let diameter = topo.diameter();
        let world = World::new(8, topo, LinkProfile::gigabit_ethernet());
        let (_, stats) = world
            .run_stats(|p| {
                p.allreduce_i64(p.rank() as i64, Reduce::Sum)
                    .expect("allreduce")
            })
            .expect("world runs");
        let max_vt = stats.iter().map(|s| s.virtual_time_ns).max().unwrap_or(0);
        println!("  {:<14} {:>14} {:>10}", name, max_vt, diameter);
    }

    println!("\n== traffic-pattern cost on the UHD cluster fabric ==");
    let mut net = simnet::Network::uhd_cluster();
    let nodes = net.topology().len();
    println!(
        "  {:<12} {:>10} {:>16}",
        "pattern", "flows", "total cost (ns)"
    );
    for pattern in Pattern::ALL {
        let flows = pattern.generate(nodes, 4096, 1);
        let mut total = 0u64;
        for f in &flows {
            total += net
                .send(f.src, f.dst, f.bytes)
                .expect("route")
                .total
                .nanos();
        }
        println!("  {:<12} {:>10} {:>16}", pattern.name(), flows.len(), total);
    }
    let ((from, to), bytes) = net.hottest_link().expect("traffic flowed");
    println!("  hottest link: {from} -> {to} carried {bytes} bytes");
}
