//! Golden verdicts: the systematic checker against every concurrency-lab
//! archetype — the known-buggy submission must produce its known failure
//! class (with a replaying repro schedule), and the corrected reference
//! solution must come back clean. Also pins down determinism: the same
//! program and budget yield a byte-identical report, including the repro.

use checker::{check_program, replay_schedule, CheckConfig, Verdict};
use labs::grading::grading_check_config;
use labs::{lab5_bank, lab6_philosophers, lab7_boundedbuffer};

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

/// Assert `src` fails with the given verdict class and that the reported
/// repro schedule replays to the same failure.
fn assert_fails_as(src: &str, class: &str) -> Verdict {
    let report = check_program(src, &cfg()).expect("lab source compiles");
    assert_eq!(
        report.verdict.class(),
        class,
        "expected a {class}, got {:?} after {} schedules",
        report.verdict,
        report.schedules
    );
    let repro = report
        .repro
        .as_ref()
        .expect("failures carry a repro schedule");
    let prog = minilang::compile(src).unwrap();
    let replayed = replay_schedule(&prog, &cfg(), repro);
    assert!(
        report.verdict.same_failure(&replayed),
        "repro must replay to the same failure: reported {:?}, replayed {:?}",
        report.verdict,
        replayed
    );
    report.verdict
}

fn assert_clean(src: &str, what: &str) {
    let report = check_program(src, &cfg()).expect("lab source compiles");
    assert_eq!(
        report.verdict,
        Verdict::Clean,
        "{what} must be clean, got {:?}",
        report.verdict
    );
    assert!(report.repro.is_none());
    assert!(report.schedules > 0);
}

// ---- lab 5: the banking account (basic synchronization) -------------------

#[test]
fn lab5_racy_bank_is_a_race() {
    let v = assert_fails_as(
        &lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        "race",
    );
    if let Verdict::Race { location, .. } = v {
        assert!(
            location.starts_with("Global"),
            "balance is a global: {location}"
        );
    }
}

#[test]
fn lab5_locked_bank_is_clean() {
    assert_clean(
        &lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked),
        "mutex-protected bank",
    );
}

// ---- lab 6: dining philosophers (deadlock) --------------------------------

#[test]
fn lab6_naive_philosophers_deadlock() {
    assert_fails_as(&lab6_philosophers::naive_source(3), "deadlock");
}

#[test]
fn lab6_ordered_philosophers_are_clean() {
    assert_clean(
        &lab6_philosophers::ordered_source(3),
        "resource-ordered philosophers",
    );
}

// ---- lab 7: bounded buffer (producer/consumer) ----------------------------

#[test]
fn lab7_buggy_buffer_is_a_race() {
    assert_fails_as(&lab7_boundedbuffer::buggy_source(), "race");
}

#[test]
fn lab7_mutex_buffer_is_clean() {
    assert_clean(&lab7_boundedbuffer::mutex_source(), "mutex bounded buffer");
}

#[test]
fn lab7_semaphore_buffer_is_clean() {
    assert_clean(
        &lab7_boundedbuffer::semaphore_source(),
        "semaphore bounded buffer",
    );
}

// ---- reduction-hostile archetypes -----------------------------------------
//
// Each hides its violation behind one specific ordering of *dependent*
// operations (lock/lock, notify/wait, send/send). A reducer that wrongly
// commutes such a pair only ever sees the clean ordering — these pin that
// the default (DPOR-on) budget still reaches the losing order.

#[test]
fn racy_then_synced_is_a_race() {
    assert_fails_as(checker::archetypes::racy_then_synced(), "race");
}

#[test]
fn lost_wakeup_is_a_deadlock() {
    assert_fails_as(checker::archetypes::lost_wakeup(), "deadlock");
}

#[test]
fn channel_drain_race_is_a_deadlock() {
    assert_fails_as(checker::archetypes::channel_drain_race(), "deadlock");
}

#[test]
fn archetype_corpus_matches_its_pinned_classes() {
    for (name, src, want) in checker::archetypes::corpus() {
        let report = check_program(src, &cfg()).expect("archetype compiles");
        assert_eq!(report.verdict.class(), want, "{name}: {:?}", report.verdict);
    }
}

// ---- determinism ----------------------------------------------------------

#[test]
fn same_budget_same_report_bit_for_bit() {
    for src in [
        lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        lab6_philosophers::naive_source(3),
        lab7_boundedbuffer::buggy_source(),
    ] {
        let a = check_program(&src, &cfg()).unwrap();
        let b = check_program(&src, &cfg()).unwrap();
        assert_eq!(a, b, "two runs with the same budget must agree exactly");
        assert_eq!(
            a.repro, b.repro,
            "including the repro schedule byte for byte"
        );
    }
}

// ---- the grader's (smaller) budget still catches the seeded bugs ----------

#[test]
fn grading_budget_finds_lab5_race_and_lab6_deadlock() {
    let g = grading_check_config();
    let bank = check_program(&lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy), &g).unwrap();
    assert_eq!(bank.verdict.class(), "race", "{:?}", bank.verdict);
    let phil = check_program(&lab6_philosophers::naive_source(3), &g).unwrap();
    assert_eq!(phil.verdict.class(), "deadlock", "{:?}", phil.verdict);
}
