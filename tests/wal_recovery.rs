//! Kill-at-random-point durability property: crash the portal's WAL-backed
//! substrates at an arbitrary byte boundary — mid-record, mid-fsync window,
//! right after a compaction — and recovery must reconstruct exactly the
//! state reached by some *prefix* of the successful operations, never a
//! torn half-applied mess, and never lose an operation the journal had
//! already acknowledged as durable.
//!
//! The reference state machine is a fresh instance replaying the first
//! `last_lsn` recorded operations: the WAL assigns one LSN per logged op,
//! densely from 1, so `ops[..last_lsn]` is precisely what a correct
//! recovery must reproduce (byte-identical via `snapshot_bytes`).

use ccp_core::{Portal, PortalConfig};
use cluster::{Cluster, ClusterSpec, SlaveId};
use sched::{JobId, JobSpec, RetryPolicy, SchedPolicyKind, SchedRecord, Scheduler};
use vfs::{Vfs, VfsRecord};
use wal::{FsyncPolicy, Journal, MemStorage};

/// Deterministic splitmix64 so the op script and crash point derive from
/// the seed alone (no rand dependency, no flaky schedules).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

// ---- vfs -----------------------------------------------------------------

/// Drive a journaled Vfs through `steps` seeded operations, recording each
/// successful one. Returns the op list and the durable LSN at crash time.
fn run_vfs_workload(
    storage: MemStorage,
    seed: u64,
    steps: u32,
    fsync: FsyncPolicy,
    snapshot_interval: u64,
) -> (Vec<VfsRecord>, u64) {
    let (journal, recovered) =
        Journal::open(Box::new(storage), fsync, snapshot_interval).expect("open fresh log");
    assert_eq!(recovered.report.records_replayed, 0, "fresh log is empty");
    let mut fs = Vfs::new();
    fs.attach_journal(journal);
    let mut rng = Mix(seed);
    let mut ops: Vec<VfsRecord> = Vec::new();
    let mut record = |ok: bool, rec: VfsRecord| {
        if ok {
            ops.push(rec);
        }
    };

    record(
        fs.add_user("alice", 1 << 20).is_ok(),
        VfsRecord::AddUser {
            user: "alice".into(),
            quota: 1 << 20,
        },
    );
    for i in 0..steps {
        let file = format!("/home/alice/f{}.txt", rng.below(6));
        let dir = format!("/home/alice/d{}", rng.below(4));
        match rng.below(6) {
            0 => {
                let data = format!("write {i} by seed {seed}").into_bytes();
                record(
                    fs.write("alice", &file, data.clone()).is_ok(),
                    VfsRecord::Write {
                        user: "alice".into(),
                        path: file,
                        data,
                    },
                );
            }
            1 => {
                let data = format!("+{i}").into_bytes();
                record(
                    fs.append("alice", &file, &data).is_ok(),
                    VfsRecord::Append {
                        user: "alice".into(),
                        path: file,
                        data,
                    },
                );
            }
            2 => record(
                fs.mkdir_p("alice", &dir).is_ok(),
                VfsRecord::MkdirP {
                    user: "alice".into(),
                    path: dir,
                },
            ),
            3 => record(
                fs.remove("alice", &file).is_ok(),
                VfsRecord::Remove {
                    user: "alice".into(),
                    path: file,
                },
            ),
            4 => {
                let to = format!("/home/alice/c{}.txt", rng.below(4));
                record(
                    fs.copy("alice", &file, &to).is_ok(),
                    VfsRecord::Copy {
                        user: "alice".into(),
                        from: file,
                        to,
                    },
                );
            }
            _ => {
                let to = format!("/home/alice/r{}.txt", rng.below(4));
                record(
                    fs.rename("alice", &file, &to).is_ok(),
                    VfsRecord::Rename {
                        user: "alice".into(),
                        from: file,
                        to,
                    },
                );
            }
        }
    }
    let durable = fs.wal_durable_lsn().unwrap_or(0);
    assert_eq!(
        fs.wal_last_lsn().unwrap_or(0),
        ops.len() as u64,
        "one LSN per successful op"
    );
    (ops, durable)
}

fn vfs_reference(ops: &[VfsRecord]) -> Vfs {
    let mut fs = Vfs::new();
    for op in ops {
        fs.apply(op).expect("ops succeeded the first time");
    }
    fs
}

#[test]
fn vfs_recovers_an_acked_prefix_from_any_crash_point() {
    for seed in 0..8u64 {
        let mut rng = Mix(seed ^ 0x00c0_ffee);
        let storage = MemStorage::new();
        // Small fsync window and snapshot interval so every seed crosses
        // several group commits and at least one compaction.
        let (ops, durable) = run_vfs_workload(
            storage.clone(),
            seed,
            120,
            FsyncPolicy::EveryN(1 + (seed % 5)),
            16,
        );
        // Crash: keep a seed-chosen slice of the unsynced tail, cutting at
        // an arbitrary byte boundary (often mid-record).
        let pending = storage.log_bytes() - storage.synced_bytes();
        storage.crash(rng.below(pending as u64 + 1) as usize);

        let (_, recovered) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0)
            .expect("recovery never errors on torn logs");
        let (fs, replay_errors) = Vfs::recover(&recovered).expect("replay");
        assert_eq!(replay_errors, 0, "seed {seed}: replay must be clean");

        let k = recovered.report.last_lsn;
        assert!(
            k >= durable,
            "seed {seed}: lost acked op {k} < durable {durable}"
        );
        assert!(
            k <= ops.len() as u64,
            "seed {seed}: recovered more ops than were issued"
        );
        assert_eq!(
            fs.snapshot_bytes(),
            vfs_reference(&ops[..k as usize]).snapshot_bytes(),
            "seed {seed}: recovered state must equal the {k}-op prefix"
        );
    }
}

#[test]
fn vfs_corrupt_tail_recovers_clean_prefix() {
    for seed in [3u64, 7, 11] {
        let storage = MemStorage::new();
        let (ops, _) = run_vfs_workload(storage.clone(), seed, 60, FsyncPolicy::Always, 0);
        // Bit-rot a byte two-thirds into the log: recovery must stop at the
        // first bad record and still hand back a valid prefix.
        storage.corrupt_byte(storage.log_bytes() * 2 / 3);
        let (_, recovered) =
            Journal::open(Box::new(storage), FsyncPolicy::Always, 0).expect("open survives rot");
        let (fs, replay_errors) = Vfs::recover(&recovered).expect("replay");
        assert_eq!(replay_errors, 0);
        let k = recovered.report.last_lsn;
        assert!(
            recovered.report.corrupt_records > 0 || recovered.report.torn_bytes > 0,
            "seed {seed}: the flipped byte must be noticed"
        );
        assert!(k < ops.len() as u64, "seed {seed}: some suffix was dropped");
        assert_eq!(
            fs.snapshot_bytes(),
            vfs_reference(&ops[..k as usize]).snapshot_bytes()
        );
    }
}

// ---- sched ---------------------------------------------------------------

fn fresh_sched() -> Scheduler {
    Scheduler::new(
        Cluster::new(ClusterSpec::small(2, 2)),
        SchedPolicyKind::Fifo,
    )
    .with_retry(RetryPolicy::fixed(3, 2))
    .with_retry_seed(42)
}

/// Drive a journaled scheduler through `steps` seeded commands, mirroring
/// each successful one as the record the WAL saw.
fn run_sched_workload(storage: MemStorage, seed: u64, steps: u32) -> (Vec<SchedRecord>, u64) {
    let (journal, _) =
        Journal::open(Box::new(storage), FsyncPolicy::EveryN(1 + (seed % 4)), 24).expect("open");
    let mut s = fresh_sched();
    s.attach_journal(journal);
    let mut rng = Mix(seed.wrapping_mul(31).wrapping_add(7));
    let mut ops: Vec<SchedRecord> = Vec::new();
    let mut submitted: Vec<JobId> = Vec::new();
    for i in 0..steps {
        match rng.below(10) {
            0..=3 => {
                let spec = if rng.below(2) == 0 {
                    JobSpec::sequential("u", &format!("job{i}"), 1 + rng.below(6))
                } else {
                    JobSpec::parallel(
                        "u",
                        &format!("job{i}"),
                        1 + rng.below(8) as u32,
                        1 + rng.below(6),
                    )
                };
                if let Ok(id) = s.submit(spec.clone()) {
                    submitted.push(id);
                    ops.push(SchedRecord::Submit { spec });
                }
            }
            4 => {
                if let Some(&id) = submitted.get(rng.below(submitted.len() as u64) as usize) {
                    if s.cancel(id).is_ok() {
                        ops.push(SchedRecord::Cancel { id });
                    }
                }
            }
            5 => {
                if let Some(&id) = submitted.get(rng.below(submitted.len() as u64) as usize) {
                    let line = format!("in{i}");
                    if s.push_stdin(id, &line).is_ok() {
                        ops.push(SchedRecord::PushStdin { id, line });
                    }
                }
            }
            6 => {
                if let Some(&id) = submitted.get(rng.below(submitted.len() as u64) as usize) {
                    let out = format!("out{i}\n");
                    let ticks = 1 + rng.below(4);
                    if s.set_outcome(id, Some(&out), None, Some(ticks)).is_ok() {
                        ops.push(SchedRecord::SetOutcome {
                            id,
                            stdout: Some(out),
                            stderr: None,
                            actual_ticks: Some(ticks),
                        });
                    }
                }
            }
            7 => {
                let node = SlaveId {
                    segment: rng.below(2) as usize,
                    slot: rng.below(2) as usize,
                };
                if s.drain_node(node).is_ok() {
                    ops.push(SchedRecord::DrainNode { node });
                }
            }
            8 => {
                let node = SlaveId {
                    segment: rng.below(2) as usize,
                    slot: rng.below(2) as usize,
                };
                if s.undrain_node(node).is_ok() {
                    ops.push(SchedRecord::UndrainNode { node });
                }
            }
            _ => {
                s.tick();
                ops.push(SchedRecord::Tick);
            }
        }
        assert!(s.wal_error().is_none(), "WAL must not degrade in-memory");
    }
    let durable = s.wal_durable_lsn().unwrap_or(0);
    assert_eq!(s.wal_last_lsn().unwrap_or(0), ops.len() as u64);
    (ops, durable)
}

fn sched_reference(ops: &[SchedRecord]) -> Scheduler {
    let mut s = fresh_sched();
    for op in ops {
        s.apply_record(op).expect("ops succeeded the first time");
    }
    s
}

#[test]
fn sched_recovers_an_acked_prefix_from_any_crash_point() {
    for seed in 0..8u64 {
        let mut rng = Mix(seed.wrapping_mul(977));
        let storage = MemStorage::new();
        let (ops, durable) = run_sched_workload(storage.clone(), seed, 150);
        let pending = storage.log_bytes() - storage.synced_bytes();
        storage.crash(rng.below(pending as u64 + 1) as usize);

        let (_, recovered) =
            Journal::open(Box::new(storage), FsyncPolicy::Always, 0).expect("recovery");
        let mut s = fresh_sched();
        let replay_errors = s.recover(&recovered).expect("replay");
        assert_eq!(replay_errors, 0, "seed {seed}");

        let k = recovered.report.last_lsn;
        assert!(k >= durable, "seed {seed}: lost acked command");
        assert!(k <= ops.len() as u64, "seed {seed}");
        assert_eq!(
            s.snapshot_bytes(),
            sched_reference(&ops[..k as usize]).snapshot_bytes(),
            "seed {seed}: recovered scheduler must equal the {k}-command prefix"
        );
    }
}

// ---- whole portal --------------------------------------------------------

#[test]
fn portal_survives_a_restart_with_data_dir_set() {
    let dir = std::env::temp_dir().join(format!("ccp-wal-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        data_dir: Some(dir.clone()),
        wal_fsync: FsyncPolicy::Always,
        ..PortalConfig::default()
    };

    {
        let mut portal = Portal::new(cfg.clone());
        assert!(portal.durable(), "data_dir set => journaled");
        assert!(portal.wal_error().is_none());
        portal.bootstrap_admin("admin", "pw-123456").unwrap();
        let tok = portal.login("admin", "pw-123456", 0).unwrap();
        portal
            .write_file(&tok, "notes.txt", b"survives the crash".to_vec(), 0)
            .unwrap();
        portal.mkdir(&tok, "labs/week1", 0).unwrap();
        // Dropped without any explicit flush: FsyncPolicy::Always means
        // every op was already durable — this is the "kill -9".
    }

    {
        let mut portal = Portal::new(cfg);
        let h = portal.health_view();
        assert!(h.durable);
        assert!(h.wal_error.is_none());
        assert_eq!(h.recovery.len(), 2, "one report per stream");
        let vfs_rec = h.recovery.iter().find(|r| r.stream == "vfs").unwrap();
        assert!(
            vfs_rec.records_replayed > 0 || vfs_rec.snapshot_lsn.is_some(),
            "the first boot's writes must be visible to recovery"
        );
        // Credentials are not journaled; re-bootstrapping the admin must
        // tolerate the already-recovered home directory.
        portal.bootstrap_admin("admin", "pw-123456").unwrap();
        let tok = portal.login("admin", "pw-123456", 0).unwrap();
        assert_eq!(
            portal.read_file(&tok, "notes.txt", 0).unwrap(),
            b"survives the crash"
        );
        assert!(portal.list_dir(&tok, "labs/week1", 0).unwrap().is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn double_recovery_is_idempotent() {
    let storage = MemStorage::new();
    let (ops, _) = run_sched_workload(storage.clone(), 5, 80);
    storage.crash(0);
    let open = |st: MemStorage| Journal::open(Box::new(st), FsyncPolicy::Always, 0).expect("open");

    // First recovery (reopening truncates any torn tail in storage)...
    let (_, rec1) = open(storage.clone());
    let mut s1 = fresh_sched();
    s1.recover(&rec1).expect("replay 1");
    // ...then a second crash-before-any-writes and another recovery must
    // land on the same bytes: recovery changes nothing it doesn't have to.
    let (_, rec2) = open(storage);
    let mut s2 = fresh_sched();
    s2.recover(&rec2).expect("replay 2");
    assert_eq!(rec1.report.last_lsn, rec2.report.last_lsn);
    assert_eq!(s1.snapshot_bytes(), s2.snapshot_bytes());
    assert!(rec1.report.last_lsn <= ops.len() as u64);
}
