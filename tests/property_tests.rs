//! Property-based tests over core data structures and invariants,
//! spanning several crates (proptest).

use proptest::prelude::*;
use simnet::{route, LinkProfile, Network, Topology};

// ---- simnet ----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every route in every supported topology is a valid shortest path.
    #[test]
    fn routes_are_shortest_paths(
        kind in 0usize..6,
        size_seed in 2usize..10,
        a_seed in 0usize..100,
        b_seed in 0usize..100,
    ) {
        let topo = match kind {
            0 => Topology::ring(size_seed.max(2)),
            1 => Topology::star(size_seed),
            2 => Topology::mesh2d(2, size_seed.max(2)),
            3 => Topology::hypercube((size_seed % 4) + 1),
            4 => Topology::tree(size_seed + 3),
            _ => Topology::segmented_cluster(2, size_seed.max(1)),
        };
        let n = topo.len();
        let a = a_seed % n;
        let b = b_seed % n;
        let path = route(&topo, a, b).unwrap();
        prop_assert_eq!(path[0], a);
        prop_assert_eq!(*path.last().unwrap(), b);
        prop_assert!(simnet::routing::validate_path(&topo, &path));
        let bfs = topo.bfs_distances(a);
        prop_assert_eq!(path.len() - 1, bfs[b]);
    }

    /// Message cost is monotone in payload size and additive over hops.
    #[test]
    fn message_cost_monotone(bytes1 in 0u64..1_000_000, extra in 1u64..1_000_000) {
        let net = Network::new(Topology::ring(6), LinkProfile::new(500, 1 << 28));
        let small = net.message_cost(0, 3, bytes1).unwrap();
        let large = net.message_cost(0, 3, bytes1 + extra).unwrap();
        prop_assert!(large.total >= small.total);
        prop_assert_eq!(small.hops, 3);
    }
}

// ---- vfs --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Path normalization is idempotent and never escapes the root.
    #[test]
    fn vpath_normalization_idempotent(raw in "[a-z./]{0,40}") {
        if let Ok(p) = vfs::VPath::parse(&raw) {
            let again = vfs::VPath::parse(&p.to_string()).unwrap();
            prop_assert_eq!(p.to_string(), again.to_string());
            // No component may survive as a literal `..` (names like "..a"
            // are legal filenames).
            prop_assert!(p.components().iter().all(|c| c != ".."));
        }
    }

    /// Quota accounting: used bytes always equal the sum of the user's file
    /// sizes, through arbitrary write/overwrite/remove sequences.
    #[test]
    fn quota_matches_file_sizes(ops in proptest::collection::vec((0u8..3, 0usize..4, 0usize..200), 1..40)) {
        let mut fs = vfs::Vfs::new();
        fs.add_user("u", 1 << 20).unwrap();
        let names = ["a", "b", "c", "d"];
        for (op, which, size) in ops {
            let path = format!("/home/u/{}", names[which]);
            match op {
                0 => { let _ = fs.write("u", &path, vec![0; size]); }
                1 => { let _ = fs.remove("u", &path); }
                _ => { let _ = fs.append("u", &path, &vec![0; size % 50]); }
            }
        }
        let (used, _) = fs.quota("u").unwrap();
        let actual: u64 = fs
            .walk("u", "/home/u")
            .unwrap()
            .into_iter()
            .map(|(_, st)| st.size)
            .sum();
        prop_assert_eq!(used, actual);
    }
}

// ---- auth ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SHA-256 streaming in arbitrary chunkings equals one-shot.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2000), cuts in proptest::collection::vec(0usize..2000, 0..8)) {
        let oneshot = auth::Sha256::digest(&data);
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        points.sort_unstable();
        points.dedup();
        let mut h = auth::Sha256::new();
        let mut prev = 0;
        for p in points {
            h.update(&data[prev..p]);
            prev = p;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// Password verification accepts exactly the original password.
    #[test]
    fn password_roundtrip(pw in "[ -~]{8,24}", wrong in "[ -~]{8,24}") {
        let policy = auth::PasswordPolicy { iterations: 5, min_length: 1 };
        let h = auth::PasswordHash::create_seeded(&pw, policy, 11);
        prop_assert!(h.verify(&pw));
        if wrong != pw {
            prop_assert!(!h.verify(&wrong));
        }
    }
}

// ---- cluster --------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MESI invariants hold under arbitrary access traces, and counters are
    /// self-consistent.
    #[test]
    fn mesi_invariants_hold(trace in proptest::collection::vec((0usize..4, 0u64..512, any::<bool>()), 1..200)) {
        let mut sys = cluster::CacheSystem::new(4, 64, cluster::CoherenceProtocol::Mesi);
        for (core, addr, write) in &trace {
            let kind = if *write { cluster::AccessKind::Write } else { cluster::AccessKind::Read };
            sys.access(*core, *addr, kind);
            prop_assert!(sys.check_invariants());
        }
        prop_assert_eq!(sys.stats().accesses(), trace.len() as u64);
    }

    /// Allocation and release leave the cluster exactly as found.
    #[test]
    fn allocate_release_conserves_cores(requests in proptest::collection::vec(1u32..12, 1..12)) {
        let mut c = cluster::Cluster::new(cluster::ClusterSpec::small(2, 3));
        let initial = c.free_cores();
        let mut allocs = Vec::new();
        for r in requests {
            if let Ok(a) = c.allocate_cores(r) {
                prop_assert_eq!(a.total_cores(), r);
                allocs.push(a);
            }
        }
        let held: u32 = allocs.iter().map(|a| a.total_cores()).sum();
        prop_assert_eq!(c.free_cores(), initial - held);
        for a in &allocs {
            c.release(a);
        }
        prop_assert_eq!(c.free_cores(), initial);
    }
}

// ---- minilang ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The locked counter is exact for arbitrary iteration counts and seeds.
    #[test]
    fn locked_counter_always_exact(n in 1i64..120, seed in 0u64..500) {
        let src = format!(r#"
            var counter = 0;
            var m;
            fn w() {{ for (var i = 0; i < {n}; i = i + 1) {{ lock(m); counter = counter + 1; unlock(m); }} }}
            fn main() {{ m = mutex(); var a = spawn w(); var b = spawn w(); join(a); join(b); return counter; }}
        "#);
        let out = minilang::compile_and_run(&src, seed).unwrap();
        prop_assert_eq!(out.main_result, minilang::Value::Int(2 * n));
    }

    /// Arithmetic expression evaluation matches Rust's (wrapping) semantics.
    #[test]
    fn arithmetic_matches_rust(a in -1000i64..1000, b in -1000i64..1000, c in 1i64..100) {
        let src = format!("fn main() {{ return ({a} + {b}) * {c} + {a} / {c} - {b} % {c}; }}");
        let expect = (a.wrapping_add(b)).wrapping_mul(c).wrapping_add(a.wrapping_div(c)).wrapping_sub(b.wrapping_rem(c));
        let out = minilang::compile_and_run(&src, 0).unwrap();
        prop_assert_eq!(out.main_result, minilang::Value::Int(expect));
    }

    /// JSON round-trips arbitrary string payloads.
    #[test]
    fn json_string_roundtrip(s in "[ -~]{0,60}") {
        let v = httpd::Json::str(s.clone());
        let parsed = httpd::Json::parse(&v.to_string()).unwrap();
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }
}

// ---- checker ---------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interleaving checker is total over arbitrary small concurrent
    /// programs (no panic, no hang within budget), any failure it reports
    /// comes with a repro schedule that replays to the same failure class,
    /// and properly synchronized bodies are never flagged.
    #[test]
    fn checker_is_total_and_repros_replay(
        threads in 1usize..=3,
        iters in 1i64..=3,
        body in 0usize..4,
        seed in 0u64..64,
    ) {
        let stmt = match body {
            0 => "counter = counter + 1;",
            1 => "lock(m); counter = counter + 1; unlock(m);",
            2 => "atomic_add(counter, 1);",
            _ => "lock(m); unlock(m); counter = counter + 1;",
        };
        let mut src = String::from("var counter = 0;\nvar m;\n");
        src.push_str(&format!(
            "fn w() {{ for (var i = 0; i < {iters}; i = i + 1) {{ {stmt} }} }}\n"
        ));
        src.push_str("fn main() { m = mutex();");
        for t in 0..threads {
            src.push_str(&format!(" var t{t} = spawn w();"));
        }
        for t in 0..threads {
            src.push_str(&format!(" join(t{t});"));
        }
        src.push_str(" return counter; }\n");

        let cfg = checker::CheckConfig {
            max_schedules: 12,
            max_steps: 60_000,
            steps_per_schedule: 8_000,
            minimize_replays: 12,
            seed,
            ..checker::CheckConfig::default()
        };
        let prog = minilang::compile(&src).unwrap();
        let report = checker::check(&prog, &cfg);

        if report.verdict.is_failure() {
            let repro = report.repro.clone().expect("failure verdicts carry a repro");
            prop_assert!(!repro.is_empty(), "repro schedules are never empty");
            let replayed = checker::replay_schedule(&prog, &cfg, &repro);
            prop_assert!(
                report.verdict.same_failure(&replayed),
                "repro replayed to {replayed:?}, expected {:?}", report.verdict
            );
        }
        // Locked and atomic bodies (and single-thread runs of anything) are
        // genuinely clean; the checker must never invent a failure for them.
        // Bodies 0 and 3 leave the increment unprotected, so any verdict
        // short of a panic is acceptable there.
        if matches!(body, 1 | 2) || threads == 1 {
            prop_assert!(
                !report.verdict.is_failure(),
                "false positive on clean program: {:?}\n{src}", report.verdict
            );
        }
    }
}

// ---- compile cache ---------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Content addressing is exact: recompiling byte-identical source hits
    /// the cache and yields an identical program, while flipping any single
    /// byte of the source misses.
    #[test]
    fn compile_cache_is_content_exact(
        a in 0i64..1000,
        b in 0i64..1000,
        flip in 0usize..usize::MAX,
    ) {
        let src = format!("fn main() {{ var x = {a}; println(x + {b}); }}");
        let mut cache = toolchain::CompileCache::new(16);

        let lang = toolchain::LanguageId::MiniLang;
        let prog = minilang::compile(&src).unwrap();
        cache.insert(lang, "", &src, prog.clone());
        let hit = cache.lookup(lang, "", &src);
        prop_assert!(hit.is_some(), "identical source must hit");
        prop_assert_eq!(
            format!("{:?}", hit.unwrap()),
            format!("{prog:?}"),
            "cached program must be the inserted one"
        );

        // The source is pure ASCII, so flipping the low bit of any byte
        // keeps it valid UTF-8 while changing exactly one byte.
        let mut mutated = src.clone().into_bytes();
        let i = flip % mutated.len();
        mutated[i] ^= 1;
        let mutated = String::from_utf8(mutated).unwrap();
        prop_assert!(
            cache.lookup(lang, "", &mutated).is_none(),
            "one-byte change at offset {} must miss", i
        );
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}

// ---- VM snapshot/restore ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot → steps → restore → re-steps is indistinguishable from the
    /// first execution of that suffix: same event trace, same canonical
    /// state, same instruction count. Random split points and schedules;
    /// `tests/vm_snapshot.rs` sweeps a fixed grid of the same invariant.
    #[test]
    fn vm_snapshot_roundtrip_is_exact(
        seed in 0u64..32,
        prefix in 0usize..50,
        suffix in 1usize..40,
        pick in 0usize..1000,
        threads in 2usize..=3,
    ) {
        let mut src = String::from("var total = 0;\nvar m;\nvar c;\n");
        src.push_str(
            "fn w(k) { var a = [k, k + 1]; lock(m); total = total + a[0] + rand_int(0, 2); \
             unlock(m); send(c, a); }\n",
        );
        src.push_str("fn main() { m = mutex(); c = channel(1);");
        for t in 0..threads {
            src.push_str(&format!(" var t{t} = spawn w({t});"));
        }
        for t in 0..threads {
            src.push_str(&format!(" var r{t} = recv(c); total = total + r{t}[1]; join(t{t});"));
        }
        src.push_str(" println(total); return total; }\n");
        let prog = minilang::compile(&src).unwrap();

        let fresh = || {
            let mut vm = minilang::Vm::new(prog.clone(), minilang::VmConfig {
                seed,
                quantum: 1,
                max_instructions: 200_000,
                policy: minilang::SchedPolicy::RoundRobin,
            });
            vm.set_recording(true);
            vm
        };
        // Step up to `n` visible slices, picking enabled threads from `salt`;
        // record chosen tids and debug-formatted events.
        let drive = |vm: &mut minilang::Vm, n: usize, salt: usize,
                     tids: &mut Vec<usize>, events: &mut Vec<String>| {
            for s in 0..n {
                if vm.all_finished() { break; }
                let en = vm.enabled_threads();
                if en.is_empty() {
                    if !vm.advance_clock() { break; }
                    continue;
                }
                let tid = en[salt.wrapping_add(s).wrapping_mul(2654435761) % en.len()];
                if vm.step_thread(tid, 1).is_err() { break; }
                tids.push(tid);
                events.extend(vm.drain_events().iter().map(|e| format!("{e:?}")));
            }
        };
        let replay = |vm: &mut minilang::Vm, tids: &[usize], events: &mut Vec<String>| {
            for &tid in tids {
                while !vm.is_enabled(tid) {
                    assert!(vm.advance_clock(), "replayed thread {tid} not enabled");
                }
                vm.step_thread(tid, 1).expect("replayed step succeeds");
                events.extend(vm.drain_events().iter().map(|e| format!("{e:?}")));
            }
        };

        let mut vm = fresh();
        let mut ptids = Vec::new();
        let mut pevents = Vec::new();
        drive(&mut vm, prefix, pick, &mut ptids, &mut pevents);
        let snap = vm.snapshot();
        let hash_at_snap = vm.state_hash();

        let mut tids = Vec::new();
        let mut first = Vec::new();
        drive(&mut vm, suffix, pick.wrapping_mul(31), &mut tids, &mut first);
        let first_hash = vm.state_hash();
        let first_executed = vm.executed();

        vm.restore(&snap);
        prop_assert_eq!(vm.state_hash(), hash_at_snap, "restore lands on snapshot state");
        let mut second = Vec::new();
        replay(&mut vm, &tids, &mut second);
        prop_assert_eq!(&second, &first, "restored run re-emits the event trace");
        prop_assert_eq!(vm.state_hash(), first_hash, "restored run reaches the same state");
        prop_assert_eq!(vm.executed(), first_executed, "restored run counts the same work");

        // A fresh VM replaying prefix + suffix agrees with both.
        let mut fv = fresh();
        let mut scratch = Vec::new();
        replay(&mut fv, &ptids, &mut scratch);
        prop_assert_eq!(fv.state_hash(), hash_at_snap, "fresh prefix replay agrees");
        scratch.clear();
        replay(&mut fv, &tids, &mut scratch);
        prop_assert_eq!(&scratch, &first, "fresh suffix replay re-emits the trace");
        prop_assert_eq!(fv.state_hash(), first_hash, "fresh replay reaches the same state");
    }
}

// ---- parallel exploration --------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pooled checker is observationally serial: for arbitrary small
    /// racy/clean programs, worker counts, and budgets, its report equals
    /// the serial one exactly.
    #[test]
    fn pooled_check_equals_serial(
        threads in 2usize..=3,
        locked in proptest::bool::ANY,
        workers in 2usize..=4,
        max_schedules in 2u64..=16,
        seed in 0u64..64,
    ) {
        let stmt = if locked {
            "lock(m); counter = counter + 1; unlock(m);"
        } else {
            "counter = counter + 1;"
        };
        let mut src = String::from("var counter = 0;\nvar m;\n");
        src.push_str(&format!("fn w() {{ {stmt} }}\n"));
        src.push_str("fn main() { m = mutex();");
        for t in 0..threads {
            src.push_str(&format!(" var t{t} = spawn w();"));
        }
        for t in 0..threads {
            src.push_str(&format!(" join(t{t});"));
        }
        src.push_str(" return counter; }\n");

        let cfg = checker::CheckConfig {
            max_schedules,
            max_steps: 60_000,
            steps_per_schedule: 8_000,
            seed,
            ..checker::CheckConfig::default()
        };
        let prog = minilang::compile(&src).unwrap();
        let serial = checker::check(&prog, &cfg);
        let parallel = checker::Pool::new(workers).check(&prog, &cfg);
        prop_assert_eq!(
            parallel, serial,
            "{} workers diverged (schedules {}, seed {})",
            workers, max_schedules, seed
        );
    }
}
