//! Workspace integration tests: the whole system, wired together the way
//! the paper's deployment was — browser → portal → toolchain → distributor
//! → cluster — plus cross-crate consistency checks.

use auth::Role;
use ccp_core::{Portal, PortalConfig};
use cluster::{ClusterSpec, NodeHealth};
use httpd::Method;
use sched::{JobSpec, JobState, SchedPolicyKind, Scheduler};
use std::sync::Arc;
use webportal::{app::dispatch, build_router, App};

/// The course's closing demo: a student takes the Lab 1 handout, watches it
/// fail on the cluster, fixes it, and passes — entirely through the portal.
#[test]
fn student_fixes_lab1_through_the_portal() {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let admin = portal.login("admin", "super-secret9", 0).unwrap();
    portal
        .create_user(&admin, "student", "password99", Role::Student, 0)
        .unwrap();
    let tok = portal.login("student", "password99", 0).unwrap();

    // Upload the buggy handout and run it on several seeds: wrong somewhere.
    portal
        .write_file(
            &tok,
            "lab1.mini",
            labs::lab1_sync::BUGGY_SOURCE.as_bytes().to_vec(),
            0,
        )
        .unwrap();
    let report = portal.compile(&tok, "lab1.mini", 0).unwrap();
    assert!(report.success());
    let buggy = report.artifact.unwrap().to_string();
    let mut saw_wrong = false;
    for seed in 0..10 {
        let run = portal.run_interactive(&tok, &buggy, seed, 0).unwrap();
        let out = run.outcome.expect("program completes");
        if out.main_result != minilang::Value::Int(1000) {
            saw_wrong = true;
        }
    }
    assert!(saw_wrong, "the handout should fail on some seed");

    // Fix it, autograde it, pass.
    portal
        .write_file(
            &tok,
            "lab1.mini",
            labs::lab1_sync::FIXED_SOURCE.as_bytes().to_vec(),
            0,
        )
        .unwrap();
    let report = portal.compile(&tok, "lab1.mini", 0).unwrap();
    let fixed = report.artifact.unwrap().to_string();
    for seed in 0..5 {
        let run = portal.run_interactive(&tok, &fixed, seed, 0).unwrap();
        assert_eq!(run.outcome.unwrap().main_result, minilang::Value::Int(1000));
    }
    let grade = labs::grade(labs::LabId::Sync, labs::lab1_sync::FIXED_SOURCE);
    assert!(grade.passed);
}

/// The same flow over actual HTTP requests.
#[test]
fn lab_submission_over_http() {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(1, 2),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let router = build_router(Arc::clone(&app));

    let login = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"super-secret9"}"#,
        None,
    );
    let token = login
        .body_str()
        .split("\"token\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    dispatch(
        &router,
        Method::Post,
        "/api/admin/users",
        br#"{"name":"s1","password":"password99"}"#,
        Some(&token),
    );
    let login = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"s1","password":"password99"}"#,
        None,
    );
    let s1 = login
        .body_str()
        .split("\"token\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();

    dispatch(
        &router,
        Method::Post,
        "/api/file?path=phil.mini",
        labs::lab6_philosophers::ordered_source(3).as_bytes(),
        Some(&s1),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=phil.mini",
        b"",
        Some(&s1),
    );
    let artifact = resp
        .body_str()
        .split("\"artifact\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        &format!("/api/run?artifact={artifact}&seed=3"),
        b"",
        Some(&s1),
    );
    assert!(
        resp.body_str().contains("\"success\":true"),
        "{}",
        resp.body_str()
    );
    assert!(resp.body_str().contains("all philosophers done"));
}

/// Failure injection across crates: a fault plan kills nodes under running
/// jobs; the scheduler fails them and later reuses recovered capacity.
#[test]
fn node_failures_propagate_to_jobs() {
    let cluster = cluster::Cluster::new(ClusterSpec::small(2, 2));
    let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo);
    // Fill the whole cluster with long jobs.
    let mut ids = Vec::new();
    for _ in 0..4 {
        ids.push(sched.submit(JobSpec::parallel("u", "x", 4, 1_000)).unwrap());
    }
    sched.tick();
    assert_eq!(sched.running_count(), 4);
    // Kill two nodes.
    let victims: Vec<_> = sched.cluster().slave_ids().into_iter().take(2).collect();
    for v in &victims {
        sched
            .cluster_mut()
            .set_health(*v, NodeHealth::Down)
            .unwrap();
    }
    sched.tick();
    let disrupted: Vec<_> = sched.jobs().filter(|j| j.state.is_requeued()).collect();
    assert!(
        !disrupted.is_empty(),
        "jobs on dead nodes must be requeued for retry"
    );
    for j in &disrupted {
        assert_eq!(j.last_failure.as_deref(), Some("node went down"));
        assert!(
            matches!(j.state, JobState::Requeued { attempt: 2, .. }),
            "{:?}",
            j.state
        );
    }
    // Recover; a new job can use the capacity again, and once the backoff
    // expires at least one disrupted job re-dispatches (attempt 2).
    for v in &victims {
        sched.cluster_mut().set_health(*v, NodeHealth::Up).unwrap();
    }
    let fresh = sched.submit(JobSpec::sequential("u", "y", 3)).unwrap();
    sched.run_ticks(6);
    assert!(
        sched.job(fresh).unwrap().state.is_terminal()
            || sched.job(fresh).unwrap().state.is_running()
    );
    let retried = sched
        .jobs()
        .filter(|j| j.attempt == 2 && (j.state.is_running() || j.state.is_terminal()))
        .count();
    assert!(
        retried >= 1,
        "a requeued job must re-dispatch after recovery"
    );
}

/// The assessment pipeline consumes the labs crate end to end and its
/// Table 1 stays within statistical reach of the paper's.
#[test]
fn table1_reproduction_is_sane() {
    let t = assess::table1(2012);
    assert_eq!(t.rows.len(), 7);
    for row in &t.rows {
        let paper: f64 = row[1].trim_end_matches('%').parse().unwrap();
        let repro: f64 = row[2].trim_end_matches('%').parse().unwrap();
        // 19 students => 1 student is ~5.3 points; allow 4 students drift.
        assert!(
            (paper - repro).abs() <= 22.0,
            "{}: paper {paper}% repro {repro}%",
            row[0]
        );
    }
}

/// VM cost model consistency: simulated remote access must dwarf local in
/// exactly the way the cluster's link profiles dictate.
#[test]
fn numa_hierarchy_is_consistent_across_crates() {
    let rows = labs::lab3_numa::full_table(128, 4096);
    // cache < dram < socket < node, each by the model's own parameters.
    assert!(
        rows.windows(2).all(|w| w[0].mean_ns < w[1].mean_ns),
        "{rows:?}"
    );
    // And the remote-node figure must exceed one uplink round trip.
    let uplink = simnet::LinkProfile::campus_uplink()
        .transfer_time(4096)
        .nanos();
    assert!(rows[3].mean_ns > uplink as f64);
}

/// Determinism across the whole stack: same seeds, same everything.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let mut portal = Portal::new(PortalConfig {
            cluster: ClusterSpec::small(1, 1),
            ..PortalConfig::default()
        });
        portal.bootstrap_admin("admin", "super-secret9").unwrap();
        let tok = portal.login("admin", "super-secret9", 0).unwrap();
        portal
            .write_file(
                &tok,
                "/home/admin/r.mini",
                labs::lab1_sync::BUGGY_SOURCE.as_bytes().to_vec(),
                0,
            )
            .unwrap();
        let art = portal
            .compile(&tok, "/home/admin/r.mini", 0)
            .unwrap()
            .artifact
            .unwrap()
            .to_string();
        let out = portal.run_interactive(&tok, &art, 77, 0).unwrap();
        out.outcome.unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stdout, b.stdout);
    assert_eq!(a.executed, b.executed);
    assert_eq!(a.main_result, b.main_result);
}

/// The accelerator node exists in the default cluster and its cost model
/// produces the CPU/accelerator crossover the coursework explores.
#[test]
fn accelerator_present_and_crossover_exists() {
    let cluster = cluster::Cluster::new(ClusterSpec::uhd());
    let gpu = cluster
        .accelerator_node()
        .expect("uhd spec has a GPU machine");
    assert_eq!(
        cluster.node_spec(gpu).unwrap().class,
        cluster::NodeClass::Accelerator
    );
    let acc = cluster::Accelerator::default();
    let small = cluster::KernelProfile {
        work_items: 64,
        ops_per_item: 8,
        bytes_in: 64,
        bytes_out: 64,
    };
    let large = cluster::KernelProfile {
        work_items: 1 << 20,
        ops_per_item: 128,
        bytes_in: 1 << 20,
        bytes_out: 0,
    };
    assert!(acc.speedup_vs_cpu(&small, 2600) < 1.0);
    assert!(acc.speedup_vs_cpu(&large, 2600) > 1.0);
}
