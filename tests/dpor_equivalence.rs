//! The DPOR acceptance bar: a differential harness proving the reduced
//! search equivalent to the unreduced sleep-set DFS it replaces.
//!
//! Equivalent means two things, checked program by program:
//!
//! - **Same violations.** Both searches classify every program identically
//!   (clean / race / deadlock / livelock). Reduction must never commute a
//!   dependent pair and lose the one ordering that fails.
//! - **No more schedules.** Where both searches exhaust the space, DPOR
//!   spends at most as many schedules as the baseline — the backtrack
//!   sets plus sleep sets are a strict refinement of sleep sets alone.
//!
//! The corpus is `checker::archetypes` (each member chosen to defeat a
//! naive reducer), plus randomly generated two-thread programs over the
//! synchronization vocabulary (proptest), plus the preemption-bound
//! variants: violations must be monotone in the bound, and every DPOR
//! configuration must stay bit-identical across pool widths.

use checker::{CheckConfig, CheckStats, Pool, Strategy};
use proptest::prelude::*;

/// A pure-DFS budget big enough that every corpus program either exhausts
/// its space or fails; random walks never enter the comparison.
fn base_cfg(seed: u64) -> CheckConfig {
    CheckConfig {
        max_schedules: 100_000,
        max_steps: 50_000_000,
        minimize: false,
        strategy: Strategy::Dfs,
        dfs_depth: 10_000,
        seed,
        ..CheckConfig::default()
    }
}

fn run(src: &str, dpor: bool, seed: u64) -> (checker::CheckReport, CheckStats) {
    let cfg = CheckConfig {
        dpor,
        ..base_cfg(seed)
    };
    let prog = minilang::compile(src).expect("corpus program compiles");
    checker::check_with_stats(&prog, &cfg)
}

// ---- the differential: corpus × seeds -------------------------------------

#[test]
fn dpor_finds_exactly_the_dfs_violations_with_fewer_schedules() {
    for (name, src, want) in checker::archetypes::corpus() {
        for seed in [0u64, 1, 2] {
            let (dfs, dfs_stats) = run(src, false, seed);
            let (dpor, dpor_stats) = run(src, true, seed);
            assert_eq!(
                dfs.verdict.class(),
                want,
                "{name} (seed {seed}): baseline DFS missed the pinned class"
            );
            assert_eq!(
                dpor.verdict.class(),
                dfs.verdict.class(),
                "{name} (seed {seed}): reduction changed the verdict class \
                 (dfs {:?}, dpor {:?})",
                dfs.verdict,
                dpor.verdict
            );
            assert_eq!(
                dpor.complete, dfs.complete,
                "{name} (seed {seed}): completeness diverged"
            );
            assert!(
                dpor_stats.dfs_schedules <= dfs_stats.dfs_schedules,
                "{name} (seed {seed}): DPOR spent more schedules than the \
                 unreduced search ({} > {})",
                dpor_stats.dfs_schedules,
                dfs_stats.dfs_schedules
            );
        }
    }
}

#[test]
fn dpor_strictly_reduces_every_clean_corpus_program() {
    // On failing programs both searches stop at the first violation, so
    // the counts are close; on the clean ones DPOR must actually prune.
    for (name, src, want) in checker::archetypes::corpus() {
        if want != "clean" {
            continue;
        }
        let (dfs, dfs_stats) = run(src, false, 0);
        let (dpor, dpor_stats) = run(src, true, 0);
        assert!(dfs.complete && dpor.complete, "{name}: budget too small");
        assert!(
            dpor_stats.dfs_schedules < dfs_stats.dfs_schedules,
            "{name}: no reduction ({} vs {})",
            dpor_stats.dfs_schedules,
            dfs_stats.dfs_schedules
        );
        assert!(
            dpor_stats.dpor_pruned_siblings > 0,
            "{name}: nothing pruned: {dpor_stats:?}"
        );
    }
}

// ---- preemption-bound monotonicity ----------------------------------------

#[test]
fn violations_are_monotone_in_the_preemption_bound() {
    // A violation inside bound b cannot vanish when the search is allowed
    // more preemptions: bounds 0, 1, 2, unbounded form a chain.
    let bounds = [Some(0u32), Some(1), Some(2), None];
    for (name, src, _) in checker::archetypes::corpus() {
        for seed in [0u64, 1, 2] {
            let found: Vec<bool> = bounds
                .iter()
                .map(|&b| {
                    let cfg = CheckConfig {
                        dpor: true,
                        preemption_bound: b,
                        // Modest cap so walk fill stays bounded; walks are
                        // part of the checker's contract and the chain must
                        // hold for the full report.
                        max_schedules: 64,
                        ..base_cfg(seed)
                    };
                    let prog = minilang::compile(src).unwrap();
                    checker::check(&prog, &cfg).verdict.class() != "clean"
                })
                .collect();
            for w in found.windows(2) {
                assert!(
                    !w[0] || w[1],
                    "{name} (seed {seed}): violation found at a tighter bound \
                     but lost at a looser one: {found:?}"
                );
            }
        }
    }
}

// ---- pool bit-identity over the DPOR merge --------------------------------

#[test]
fn dpor_configs_are_bit_identical_across_pool_widths() {
    for (name, src, _) in checker::archetypes::corpus() {
        let prog = minilang::compile(src).unwrap();
        for bound in [None, Some(0u32), Some(2)] {
            let cfg = CheckConfig {
                dpor: true,
                preemption_bound: bound,
                max_schedules: 64,
                ..base_cfg(0)
            };
            let serial = checker::check(&prog, &cfg);
            for workers in [1usize, 2, 4] {
                assert_eq!(
                    Pool::new(workers).check(&prog, &cfg),
                    serial,
                    "{name} (bound {bound:?}): {workers}-worker DPOR report \
                     diverged from serial"
                );
            }
        }
    }
}

// ---- randomized differential ----------------------------------------------

/// Emit one thread body from op codes: a straight-line sequence over the
/// shared vocabulary (mutex, two shared counters, a binary semaphore, a
/// capacity-1 channel). Blocking forever is allowed — that is a verdict
/// (deadlock), and both searches must agree on it.
fn body(ops: &[u8], thread: usize) -> String {
    let mut out = String::new();
    for (i, op) in ops.iter().enumerate() {
        let stmt = match op % 8 {
            0 => "lock(m); count = count + 1; unlock(m);".to_string(),
            1 => "count = count + 1;".to_string(),
            2 => "other = other + 1;".to_string(),
            3 => "sem_wait(s);".to_string(),
            4 => "sem_post(s);".to_string(),
            5 => "send(c, 1);".to_string(),
            6 => format!("var r{thread}_{i} = recv(c);"),
            _ => "lock(m); other = other + 1; unlock(m);".to_string(),
        };
        out.push_str(&stmt);
        out.push('\n');
    }
    out
}

fn random_program(t1: &[u8], t2: &[u8]) -> String {
    format!(
        r#"
        var count = 0;
        var other = 0;
        var m;
        var s;
        var c;
        fn one() {{
            {}
        }}
        fn two() {{
            {}
        }}
        fn main() {{
            m = mutex();
            s = semaphore(1);
            c = channel(1);
            var a = spawn one();
            var b = spawn two();
            join(a);
            join(b);
            return count + other;
        }}
        "#,
        body(t1, 1),
        body(t2, 2)
    )
}

/// Deterministic mirror of the proptest sweep below, so the randomized
/// differential runs even where proptest is stubbed out (offline builds):
/// a fixed-seed xorshift generator drives the same program space.
#[test]
fn seeded_random_programs_agree_under_reduction() {
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }
    fn ops(state: &mut u64) -> Vec<u8> {
        let len = 1 + (next(state) % 3) as usize;
        (0..len).map(|_| (next(state) & 0xFF) as u8).collect()
    }
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for case in 0..60 {
        let (t1, t2) = (ops(&mut state), ops(&mut state));
        let src = random_program(&t1, &t2);
        let (dfs, dfs_stats) = run(&src, false, 0);
        let (dpor, dpor_stats) = run(&src, true, 0);
        assert_eq!(
            dfs.verdict.class(),
            dpor.verdict.class(),
            "case {case}:\n{src}\ndfs {:?} vs dpor {:?}",
            dfs.verdict,
            dpor.verdict
        );
        if dfs.complete && dpor.complete {
            assert!(
                dpor_stats.dfs_schedules <= dfs_stats.dfs_schedules,
                "case {case}:\n{src}\nDPOR spent {} > DFS {}",
                dpor_stats.dfs_schedules,
                dfs_stats.dfs_schedules
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two-thread programs over the full synchronization vocabulary:
    /// the reduced and unreduced searches agree on the class, and where
    /// both exhaust the space DPOR spends no more schedules.
    #[test]
    fn random_programs_agree_under_reduction(
        t1 in proptest::collection::vec(any::<u8>(), 1..=3),
        t2 in proptest::collection::vec(any::<u8>(), 1..=3),
    ) {
        let src = random_program(&t1, &t2);
        let (dfs, dfs_stats) = run(&src, false, 0);
        let (dpor, dpor_stats) = run(&src, true, 0);
        prop_assert_eq!(
            dfs.verdict.class(),
            dpor.verdict.class(),
            "program:\n{}\ndfs {:?} vs dpor {:?}",
            src, dfs.verdict, dpor.verdict
        );
        if dfs.complete && dpor.complete {
            prop_assert!(
                dpor_stats.dfs_schedules <= dfs_stats.dfs_schedules,
                "program:\n{}\nDPOR spent {} > DFS {}",
                src, dpor_stats.dfs_schedules, dfs_stats.dfs_schedules
            );
        }
    }
}
