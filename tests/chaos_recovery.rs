//! Chaos test: a seeded workload replayed against random node outages.
//!
//! The contract under fault injection: every job reaches a terminal state,
//! no allocated core leaks, failure causes are recorded, and the whole run
//! is deterministic per seed (same seed → identical final state).

use cluster::{Cluster, ClusterSpec, FaultPlan};
use obs::{Obs, SloEngine, SloKind, SloSpec, TimeSeriesStore};
use sched::{RetryPolicy, SchedPolicyKind, Scheduler, WorkloadSpec};
use std::sync::Arc;

const MAX_TICKS: u64 = 3_000;

/// Final per-job observation used for determinism comparison.
#[derive(Debug, Clone, PartialEq)]
struct JobOutcome {
    state: String,
    attempt: u32,
    node_losses: u32,
    last_failure: Option<String>,
    recovery_wait: u64,
}

struct RunSummary {
    outcomes: Vec<JobOutcome>,
    free_cores: u32,
    total_cores: u32,
    retries: u64,
    node_losses: u64,
    recovery_wait: u64,
    makespan: u64,
}

/// Replay a seeded 60-job workload against 10 random 40-tick outages.
fn run_chaos(seed: u64) -> RunSummary {
    let cluster = Cluster::new(ClusterSpec::small(2, 4));
    let nodes = cluster.slave_ids();
    let plan = FaultPlan::random_outages(&nodes, 10, 250, 40, seed);
    let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo)
        .with_retry(RetryPolicy::default())
        .with_retry_seed(seed)
        .with_fault_plan(plan);

    let workload = WorkloadSpec {
        jobs: 60,
        core_choices: vec![1, 2, 4, 8],
        runtime_range: (5, 25),
        mean_interarrival: 2.0,
        users: 4,
        ..WorkloadSpec::default()
    };
    let arrivals = workload.generate(seed);

    let mut next = 0usize;
    for _ in 0..MAX_TICKS {
        let now = sched.now();
        while next < arrivals.len() && arrivals[next].at_tick <= now + 1 {
            // Give every third job a generous wall-clock budget so the
            // timeout path is exercised under faults too.
            let mut spec = arrivals[next].spec.clone();
            if next.is_multiple_of(3) {
                spec = spec.with_timeout(400);
            }
            sched.submit(spec).expect("workload jobs fit the cluster");
            next += 1;
        }
        sched.tick();
        if next >= arrivals.len() && sched.jobs().all(|j| j.state.is_terminal()) {
            break;
        }
    }

    let outcomes = sched
        .jobs()
        .map(|j| JobOutcome {
            state: format!("{:?}", j.state),
            attempt: j.attempt,
            node_losses: j.node_losses,
            last_failure: j.last_failure.clone(),
            recovery_wait: j.recovery_wait_ticks,
        })
        .collect();
    let (retries, node_losses, recovery_wait) =
        sched
            .accounting()
            .all()
            .fold((0u64, 0u64, 0u64), |(r, n, w), (_, u)| {
                (
                    r + u.retry_attempts,
                    n + u.node_losses,
                    w + u.recovery_wait_ticks,
                )
            });
    RunSummary {
        outcomes,
        free_cores: sched.cluster().free_cores(),
        total_cores: sched.cluster().total_cores(),
        retries,
        node_losses,
        recovery_wait,
        makespan: sched.now(),
    }
}

fn assert_invariants(seed: u64, s: &RunSummary) {
    assert_eq!(s.outcomes.len(), 60, "seed {seed}: all jobs accounted for");
    for (i, o) in s.outcomes.iter().enumerate() {
        assert!(
            o.state.starts_with("Completed")
                || o.state.starts_with("TimedOut")
                || o.state.starts_with("NodeLost")
                || o.state.starts_with("Cancelled")
                || o.state.starts_with("Failed"),
            "seed {seed}: job {i} not terminal after {MAX_TICKS} ticks: {}",
            o.state
        );
        // A job that gave up on retries must carry its failure cause and
        // must have burned the full retry budget.
        if o.state.starts_with("NodeLost") {
            assert!(
                o.last_failure.is_some(),
                "seed {seed}: job {i} lost without a cause"
            );
            assert_eq!(
                o.attempt,
                RetryPolicy::default().max_attempts,
                "seed {seed}: job {i} abandoned before exhausting retries"
            );
        }
        // A retried job's recovery wait is bookkept separately.
        if o.attempt > 1 {
            assert!(
                o.node_losses > 0,
                "seed {seed}: job {i} retried without a node loss"
            );
        }
    }
    // Faults released every core they interrupted: nothing leaks.
    assert_eq!(
        s.free_cores, s.total_cores,
        "seed {seed}: cores leaked after drain (makespan {})",
        s.makespan
    );
    // Accounting saw the same fault traffic the job records did.
    let job_losses: u64 = s.outcomes.iter().map(|o| o.node_losses as u64).sum();
    assert_eq!(
        s.node_losses, job_losses,
        "seed {seed}: accounting/job node-loss mismatch"
    );
    let job_recovery: u64 = s.outcomes.iter().map(|o| o.recovery_wait).sum();
    assert_eq!(
        s.recovery_wait, job_recovery,
        "seed {seed}: recovery-wait mismatch"
    );
}

#[test]
fn chaos_recovery_across_seeds() {
    let mut total_losses = 0;
    for seed in [11, 42, 1337] {
        let s = run_chaos(seed);
        assert_invariants(seed, &s);
        total_losses += s.node_losses;
        assert!(
            s.retries <= s.node_losses,
            "seed {seed}: more retries than losses"
        );
    }
    // The outage plan must actually have bitten at least once across seeds,
    // or this test is vacuous.
    assert!(
        total_losses > 0,
        "no run ever lost a node; chaos plan too weak"
    );
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    for seed in [11, 42, 1337] {
        let a = run_chaos(seed);
        let b = run_chaos(seed);
        assert_eq!(
            a.outcomes, b.outcomes,
            "seed {seed}: outcomes diverged between runs"
        );
        assert_eq!(a.makespan, b.makespan, "seed {seed}: makespan diverged");
        assert_eq!(
            (a.retries, a.node_losses, a.recovery_wait),
            (b.retries, b.node_losses, b.recovery_wait),
            "seed {seed}: accounting diverged"
        );
    }
}

/// The chaos workload with the continuous-observability pipeline attached:
/// per-tick registry captures into a [`TimeSeriesStore`] and a queue-depth
/// burn-rate SLO evaluated over them. Returns the `(tick, kind)` alert
/// transition history.
fn run_chaos_slo(seed: u64) -> Vec<(u64, String)> {
    let cluster = Cluster::new(ClusterSpec::small(2, 4));
    let nodes = cluster.slave_ids();
    let plan = FaultPlan::random_outages(&nodes, 10, 250, 40, seed);
    let obs = Arc::new(Obs::new());
    let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo)
        .with_obs(Arc::clone(&obs))
        .with_retry(RetryPolicy::default())
        .with_retry_seed(seed)
        .with_fault_plan(plan);
    let store = TimeSeriesStore::new(MAX_TICKS as usize);
    // A deliberately tight objective: the chaos backlog breaches it
    // mid-run, and the drained queue at the end clears it.
    let mut engine = SloEngine::new(
        vec![SloSpec {
            name: "queue-depth".into(),
            kind: SloKind::GaugeAbove {
                series: "ccp_sched_queue_depth".into(),
                threshold_milli: 1_000,
            },
            short_window: 4,
            long_window: 16,
        }],
        &obs.metrics,
    );

    let workload = WorkloadSpec {
        jobs: 60,
        core_choices: vec![1, 2, 4, 8],
        runtime_range: (5, 25),
        mean_interarrival: 2.0,
        users: 4,
        ..WorkloadSpec::default()
    };
    let arrivals = workload.generate(seed);

    let mut next = 0usize;
    for _ in 0..MAX_TICKS {
        let now = sched.now();
        while next < arrivals.len() && arrivals[next].at_tick <= now + 1 {
            let mut spec = arrivals[next].spec.clone();
            if next.is_multiple_of(3) {
                spec = spec.with_timeout(400);
            }
            sched.submit(spec).expect("workload jobs fit the cluster");
            next += 1;
        }
        sched.tick();
        sched.publish_gauges();
        let now = sched.now();
        store.record(now, &obs.metrics);
        engine.evaluate(now, &store, &obs.events);
        if next >= arrivals.len() && sched.jobs().all(|j| j.state.is_terminal()) {
            break;
        }
    }
    obs.events
        .recent(usize::MAX)
        .into_iter()
        .filter(|e| e.kind.starts_with("slo."))
        .map(|e| (e.at, e.kind))
        .collect()
}

#[test]
fn chaos_drives_slo_alert_through_fire_and_clear_deterministically() {
    for seed in [11, 42, 1337] {
        let a = run_chaos_slo(seed);
        let b = run_chaos_slo(seed);
        assert_eq!(
            a, b,
            "seed {seed}: alert transition history diverged between runs"
        );
        let kinds: Vec<&str> = a.iter().map(|(_, k)| k.as_str()).collect();
        assert!(
            kinds.contains(&"slo.firing"),
            "seed {seed}: chaos backlog never fired the queue-depth SLO: {a:?}"
        );
        // The workload drains by the end, so the final transition must be
        // a clear — the alert does not stay latched.
        assert_eq!(
            kinds.last().copied(),
            Some("slo.cleared"),
            "seed {seed}: alert still firing at the end: {a:?}"
        );
        // The state machine alternates: a fire is always followed by a
        // clear, never by another fire.
        for w in kinds.windows(2) {
            assert_ne!(w[0], w[1], "seed {seed}: repeated transition: {a:?}");
        }
    }
}

/// Regenerates the SLO-transition table in EXPERIMENTS.md:
/// `cargo test --test chaos_recovery -- --ignored --nocapture print_chaos_slo`
#[test]
#[ignore]
fn print_chaos_slo_transitions() {
    for seed in [11, 42, 1337] {
        let h = run_chaos_slo(seed);
        let pretty: Vec<String> = h.iter().map(|(at, k)| format!("{k}@{at}")).collect();
        println!("seed {seed}: {}", pretty.join(" -> "));
    }
}

#[test]
#[ignore]
fn print_chaos_stats() {
    for seed in [11, 42, 1337] {
        let s = run_chaos(seed);
        let retried = s.outcomes.iter().filter(|o| o.attempt > 1).count();
        let lost = s
            .outcomes
            .iter()
            .filter(|o| o.state.starts_with("NodeLost"))
            .count();
        let timed = s
            .outcomes
            .iter()
            .filter(|o| o.state.starts_with("TimedOut"))
            .count();
        let completed = s
            .outcomes
            .iter()
            .filter(|o| o.state.starts_with("Completed"))
            .count();
        let mean_rec = if s.retries > 0 {
            s.recovery_wait as f64 / s.retries as f64
        } else {
            0.0
        };
        println!("seed {seed}: makespan {} completed {completed} retried-jobs {retried} node-lost {lost} timed-out {timed} losses {} retries {} recovery-wait {} mean-recovery {mean_rec:.1}", s.makespan, s.node_losses, s.retries, s.recovery_wait);
    }
}
