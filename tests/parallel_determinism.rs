//! The parallel exploration engine's acceptance bar: for every lab
//! archetype, the pooled checker must produce a `CheckReport` equal — field
//! for field, byte for byte — to the serial one, across worker counts and
//! seeds. Parallelism buys wall-clock time only; it must never buy a
//! different answer.

use checker::{CheckConfig, CheckReport, Pool};
use labs::{lab1_sync, lab5_bank, lab6_philosophers, lab7_boundedbuffer};

/// Every lab archetype the grader meets: clean and buggy variants of the
/// exploration-graded labs, covering clean, race, and deadlock verdicts.
fn archetypes() -> Vec<(&'static str, String)> {
    vec![
        ("lab1 fixed", lab1_sync::FIXED_SOURCE.to_string()),
        ("lab1 buggy", lab1_sync::BUGGY_SOURCE.to_string()),
        (
            "lab5 locked",
            lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked),
        ),
        (
            "lab5 racy",
            lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        ),
        ("lab6 ordered", lab6_philosophers::ordered_source(4)),
        ("lab6 naive", lab6_philosophers::naive_source(5)),
        ("lab7 semaphore", lab7_boundedbuffer::semaphore_source()),
        ("lab7 buggy", lab7_boundedbuffer::buggy_source()),
        // Reduction-hostile archetypes (see `checker::archetypes`): their
        // violations hide behind one ordering of dependent ops, so they
        // stress exactly the DPOR merge arithmetic the pool replays.
        (
            "racy_then_synced",
            checker::archetypes::racy_then_synced().to_string(),
        ),
        (
            "lost_wakeup",
            checker::archetypes::lost_wakeup().to_string(),
        ),
        (
            "channel_drain_race",
            checker::archetypes::channel_drain_race().to_string(),
        ),
    ]
}

/// The grader's exploration budget (see `labs::grading`), seed injected.
fn grading_cfg(seed: u64) -> CheckConfig {
    CheckConfig {
        max_schedules: 24,
        max_steps: 400_000,
        minimize: false,
        seed,
        ..CheckConfig::default()
    }
}

fn assert_identical(name: &str, src: &str, cfg: &CheckConfig) {
    let program = minilang::compile(src).expect("archetype compiles");
    let serial: CheckReport = checker::check(&program, cfg);
    for workers in [1usize, 2, 4] {
        let pool = Pool::new(workers);
        let parallel = pool.check(&program, cfg);
        assert_eq!(
            parallel, serial,
            "{name}: {workers}-worker report diverged from serial (seed {})",
            cfg.seed
        );
    }
}

#[test]
fn every_archetype_is_bit_identical_across_workers_and_seeds() {
    for (name, src) in archetypes() {
        for seed in [0u64, 1, 2] {
            assert_identical(name, &src, &grading_cfg(seed));
        }
    }
}

#[test]
fn snapshot_engine_matches_stateless_reference_bit_for_bit() {
    // The snapshot/prefix-reuse engine (the default) against the stateless
    // explorer it replaced (`snapshot_prefix: false`, kept as the
    // reference): every archetype, seed, and worker count must yield the
    // exact same report. Fast path means faster, never different.
    for (name, src) in archetypes() {
        let program = minilang::compile(&src).expect("archetype compiles");
        for seed in [0u64, 1, 2] {
            // `dpor: false` pins both sides to the legacy engines this test
            // compares; DPOR-vs-reference equivalence lives in
            // `dpor_equivalence.rs`.
            let cfg = CheckConfig {
                dpor: false,
                ..grading_cfg(seed)
            };
            let reference = checker::check(
                &program,
                &CheckConfig {
                    snapshot_prefix: false,
                    ..cfg
                },
            );
            for workers in [1usize, 2, 4] {
                assert_eq!(
                    Pool::new(workers).check(&program, &cfg),
                    reference,
                    "{name}: snapshot engine ({workers} workers) diverged \
                     from the stateless reference (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn snapshot_stats_report_saved_replay_work() {
    // On a branchy clean program the snapshot engine must actually take
    // snapshots and skip prefix replay; the stateless engine must not.
    let src = lab6_philosophers::ordered_source(4);
    let program = minilang::compile(&src).unwrap();
    // Pin `dpor: false`: DPOR always snapshots, which would defeat the
    // stateless-engine half of this comparison.
    let cfg = CheckConfig {
        dpor: false,
        ..grading_cfg(0)
    };
    let (_, snap_stats) = checker::check_with_stats(&program, &cfg);
    assert!(
        snap_stats.snapshots > 0,
        "no snapshots taken: {snap_stats:?}"
    );
    assert!(
        snap_stats.replay_steps_saved > 0,
        "no replay work saved: {snap_stats:?}"
    );
    let (_, flat_stats) = checker::check_with_stats(
        &program,
        &CheckConfig {
            snapshot_prefix: false,
            ..cfg
        },
    );
    assert_eq!(flat_stats.snapshots, 0);
    assert_eq!(flat_stats.replay_steps_saved, 0);
    // Saved plus executed on the snapshot engine accounts for at least the
    // stateless engine's executed steps (it can only remove work).
    assert!(
        snap_stats.vm_steps + snap_stats.replay_steps_saved >= flat_stats.vm_steps,
        "snapshot accounting lost work: {snap_stats:?} vs {flat_stats:?}"
    );
    assert!(snap_stats.vm_steps < flat_stats.vm_steps);
}

#[test]
fn state_cache_configs_run_serial_and_stay_deterministic() {
    // The visited-state cache is a heuristic: it may change schedule
    // counts, so it is excluded from the parallel merge (the pool forces
    // such configs serial). Any pool width must therefore agree exactly
    // with the serial run, and the verdict must match the cache-off run.
    let src = lab6_philosophers::naive_source(4);
    let program = minilang::compile(&src).unwrap();
    let cfg = CheckConfig {
        state_cache_capacity: 1 << 14,
        ..grading_cfg(1)
    };
    let serial = checker::check(&program, &cfg);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            Pool::new(workers).check(&program, &cfg),
            serial,
            "cache-enabled config must run serial on a {workers}-wide pool"
        );
    }
    let off = checker::check(&program, &grading_cfg(1));
    assert_eq!(serial.verdict, off.verdict, "cache changed the verdict");
}

#[test]
fn default_config_with_minimization_is_bit_identical() {
    // The API default: minimize on, 48 schedules — what `/api/analyze` runs.
    let cfg = CheckConfig::default();
    assert_identical(
        "lab5 racy (default cfg)",
        &lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        &cfg,
    );
    assert_identical(
        "lab6 naive (default cfg)",
        &lab6_philosophers::naive_source(5),
        &cfg,
    );
}

#[test]
fn config_workers_override_beats_pool_width() {
    let src = lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy);
    let program = minilang::compile(&src).unwrap();
    let mut cfg = grading_cfg(7);
    let serial = checker::check(&program, &cfg);
    // A wide pool forced serial by the config override.
    cfg.workers = Some(1);
    assert_eq!(Pool::new(8).check(&program, &cfg), serial);
    // A serial pool forced wide by the config override.
    cfg.workers = Some(4);
    assert_eq!(Pool::new(1).check(&program, &cfg), serial);
}

#[test]
fn strategy_extremes_are_bit_identical() {
    // Pure DFS and pure random-walk exercise the two merge phases alone.
    let src = lab6_philosophers::naive_source(4);
    let program = minilang::compile(&src).unwrap();
    for strategy in [checker::Strategy::Dfs, checker::Strategy::RandomWalk] {
        let cfg = CheckConfig {
            strategy,
            ..grading_cfg(3)
        };
        let serial = checker::check(&program, &cfg);
        for workers in [2usize, 4] {
            assert_eq!(
                Pool::new(workers).check(&program, &cfg),
                serial,
                "{strategy:?} with {workers} workers"
            );
        }
    }
}

#[test]
fn batch_grading_through_portal_pool_matches_serial() {
    let batch: Vec<(labs::LabId, String)> = vec![
        (
            labs::LabId::Bank,
            lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked),
        ),
        (
            labs::LabId::Bank,
            lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
        ),
        (
            labs::LabId::Philosophers,
            lab6_philosophers::ordered_source(4),
        ),
    ];
    let serial: Vec<labs::GradeReport> = batch.iter().map(|(l, s)| labs::grade(*l, s)).collect();
    assert_eq!(labs::grade_batch(&Pool::new(3), &batch), serial);
}

// ---- compile cache ---------------------------------------------------------

#[test]
fn cache_hit_returns_identical_artifact_and_one_byte_change_misses() {
    use toolchain::{ArtifactStore, CompileCache, CompileRequest};
    use vfs::Vfs;

    let mut fs = Vfs::new();
    fs.add_user("alice", 1 << 20).unwrap();
    fs.add_user("bob", 1 << 20).unwrap();
    let mut store = ArtifactStore::new();
    let mut cache = CompileCache::new(32);

    let src = b"fn main() { println(41 + 1); }".to_vec();
    fs.write("alice", "/home/alice/a.mini", src.clone())
        .unwrap();
    fs.write("bob", "/home/bob/b.mini", src.clone()).unwrap();

    let first =
        CompileRequest::new("alice", "/home/alice/a.mini").run_cached(&fs, &mut store, &mut cache);
    assert!(first.success());
    assert_eq!(cache.stats().misses, 1);

    // Same bytes from another user: a hit, and the stored program behaves
    // identically to a fresh compile.
    let second =
        CompileRequest::new("bob", "/home/bob/b.mini").run_cached(&fs, &mut store, &mut cache);
    assert!(second.success());
    assert_eq!(cache.stats().hits, 1);
    let a = store.get(first.artifact.as_ref().unwrap()).unwrap();
    let b = store.get(second.artifact.as_ref().unwrap()).unwrap();
    assert_eq!(format!("{:?}", a.program), format!("{:?}", b.program));

    // One byte changed: a miss.
    let mut changed = src.clone();
    let i = changed.iter().position(|&c| c == b'1').unwrap();
    changed[i] = b'2';
    fs.write("alice", "/home/alice/a.mini", changed).unwrap();
    let third =
        CompileRequest::new("alice", "/home/alice/a.mini").run_cached(&fs, &mut store, &mut cache);
    assert!(third.success());
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn direct_cache_api_is_content_exact() {
    // Plain-test mirror of the `compile_cache_is_content_exact` property in
    // tests/property_tests.rs, so the cache API usage stays typechecked even
    // where proptest is unavailable.
    let src = "fn main() { var x = 3; println(x + 4); }".to_string();
    let mut cache = toolchain::CompileCache::new(16);
    let lang = toolchain::LanguageId::MiniLang;
    let prog = minilang::compile(&src).unwrap();
    cache.insert(lang, "", &src, prog.clone());
    let hit = cache.lookup(lang, "", &src).expect("identical source hits");
    assert_eq!(format!("{hit:?}"), format!("{prog:?}"));
    let mut mutated = src.clone().into_bytes();
    mutated[20] ^= 1;
    let mutated = String::from_utf8(mutated).unwrap();
    assert!(cache.lookup(lang, "", &mutated).is_none());
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn resubmitting_class_hits_at_least_ninety_percent() {
    use toolchain::{ArtifactStore, CompileCache, CompileRequest};
    use vfs::Vfs;

    // A simulated class of 30 students resubmitting the same lab starter
    // five times each: after the first compile, everything is a hit.
    let mut fs = Vfs::new();
    let mut store = ArtifactStore::new();
    let mut cache = CompileCache::new(64);
    let starter = lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked);
    for s in 0..30 {
        let user = format!("student{s}");
        fs.add_user(&user, 1 << 20).unwrap();
        fs.write(
            &user,
            &format!("/home/{user}/bank.mini"),
            starter.clone().into_bytes(),
        )
        .unwrap();
    }
    for _round in 0..5 {
        for s in 0..30 {
            let user = format!("student{s}");
            let report = CompileRequest::new(&user, &format!("/home/{user}/bank.mini"))
                .run_cached(&fs, &mut store, &mut cache);
            assert!(report.success());
        }
    }
    let stats = cache.stats();
    assert!(
        stats.hit_rate() >= 0.9,
        "class resubmission hit rate {:.3} below 0.9 ({stats:?})",
        stats.hit_rate()
    );
}

#[test]
fn portal_compile_path_uses_cache_and_surfaces_metrics() {
    use ccp_core::{Portal, PortalConfig};

    let mut portal = Portal::new(PortalConfig::default());
    portal.bootstrap_admin("admin", "change-me-please").unwrap();
    let tok = portal.login("admin", "change-me-please", 0).unwrap();
    portal
        .write_file(&tok, "hot.mini", b"fn main() { println(9); }".to_vec(), 0)
        .unwrap();
    portal.compile(&tok, "hot.mini", 0).unwrap();
    portal.compile(&tok, "hot.mini", 0).unwrap();
    let stats = portal.compile_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    let text = portal.metrics_text();
    for family in [
        "# TYPE ccp_compile_cache_hits_total counter",
        "# TYPE ccp_compile_cache_misses_total counter",
        "# TYPE ccp_compile_cache_evictions_total counter",
        "# TYPE ccp_compile_cache_entries gauge",
        "# TYPE ccp_pool_workers gauge",
        "# TYPE ccp_pool_tasks_total counter",
        "# TYPE ccp_pool_steals_total counter",
        "# TYPE ccp_pool_busy_us histogram",
        "# TYPE ccp_pool_idle_us histogram",
        "# TYPE ccp_vm_steps_total counter",
        "# TYPE ccp_vm_replay_steps_saved_total counter",
        "# TYPE ccp_checker_snapshots_total counter",
        "# TYPE ccp_checker_state_cache_hits_total counter",
        "# TYPE ccp_checker_state_cache_prunes_total counter",
    ] {
        assert!(text.contains(family), "missing {family:?} in exposition");
    }
    assert!(text.contains("ccp_compile_cache_hits_total 1"));
}
