//! Telemetry determinism: the metrics a chaos run leaves behind are a pure
//! function of the seed. Two runs with the same seed must render
//! byte-identical `/api/metrics` output — counters, gauges, histogram
//! buckets and all. Scheduler and cluster metrics use logical ticks only,
//! so nothing wall-clock can leak in.

use ccp_core::{Portal, PortalConfig};
use cluster::{Cluster, ClusterSpec, FaultPlan};
use httpd::Method;
use obs::Obs;
use sched::{RetryPolicy, SchedPolicyKind, Scheduler, WorkloadSpec};
use std::sync::Arc;
use webportal::{app::dispatch, build_router, App};

const MAX_TICKS: u64 = 3_000;

/// Replay the seeded 60-job chaos workload (same shape as
/// `chaos_recovery.rs`) with telemetry attached; return the rendered
/// Prometheus exposition.
fn run_chaos_metrics(seed: u64) -> String {
    let cluster = Cluster::new(ClusterSpec::small(2, 4));
    let nodes = cluster.slave_ids();
    let plan = FaultPlan::random_outages(&nodes, 10, 250, 40, seed);
    let obs = Arc::new(Obs::new());
    let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo)
        .with_obs(Arc::clone(&obs))
        .with_retry(RetryPolicy::default())
        .with_retry_seed(seed)
        .with_fault_plan(plan);

    let workload = WorkloadSpec {
        jobs: 60,
        core_choices: vec![1, 2, 4, 8],
        runtime_range: (5, 25),
        mean_interarrival: 2.0,
        users: 4,
        ..WorkloadSpec::default()
    };
    let arrivals = workload.generate(seed);

    let mut next = 0usize;
    for _ in 0..MAX_TICKS {
        let now = sched.now();
        while next < arrivals.len() && arrivals[next].at_tick <= now + 1 {
            let mut spec = arrivals[next].spec.clone();
            if next.is_multiple_of(3) {
                spec = spec.with_timeout(400);
            }
            sched.submit(spec).expect("workload jobs fit the cluster");
            next += 1;
        }
        sched.tick();
        if next >= arrivals.len() && sched.jobs().all(|j| j.state.is_terminal()) {
            break;
        }
    }
    sched.publish_gauges();
    obs.metrics.render()
}

#[test]
fn same_seed_chaos_runs_render_identical_metrics() {
    for seed in [11, 42, 1337] {
        let a = run_chaos_metrics(seed);
        let b = run_chaos_metrics(seed);
        assert_eq!(
            a, b,
            "seed {seed}: metrics exposition diverged between identical runs"
        );
    }
}

/// Regenerates the headline-metrics table in EXPERIMENTS.md:
/// `cargo test --test metrics_determinism -- --ignored --nocapture`
#[test]
#[ignore]
fn print_chaos_metrics() {
    for seed in [11, 42, 1337] {
        println!("==== seed {seed} ====");
        let text = run_chaos_metrics(seed);
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        {
            println!("{line}");
        }
    }
}

/// Drive a full portal — HTTP submission, WAL-journaled scheduler, VM
/// execution, auto-analysis on the checker pool — and return the raw
/// `/api/dashboard` and `/api/trace/:id` response bodies. Everything in
/// them is tick-domain, so two same-seed runs must be byte-identical
/// regardless of checker worker count.
fn run_portal_observability(seed: u64, checker_threads: usize) -> (String, String) {
    let dir = std::env::temp_dir().join(format!(
        "ccp-obs-det-{}-{seed}-{checker_threads}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(1, 2),
        seed,
        checker_threads: Some(checker_threads),
        data_dir: Some(dir.clone()),
        auto_analyze: true,
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let router = build_router(Arc::clone(&app));

    let login = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"super-secret9"}"#,
        None,
    );
    let token = login
        .body_str()
        .split("\"token\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=phil.mini",
        labs::lab6_philosophers::ordered_source(3).as_bytes(),
        Some(&token),
    );
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/compile?path=phil.mini",
        b"",
        Some(&token),
    );
    let artifact = resp
        .body_str()
        .split("\"artifact\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    let mut first_job = None;
    for cores in [1u32, 2, 1] {
        let body = format!(r#"{{"artifact":"{artifact}","cores":{cores},"estimated_ticks":4}}"#);
        let resp = dispatch(
            &router,
            Method::Post,
            "/api/jobs",
            body.as_bytes(),
            Some(&token),
        );
        let id = resp
            .body_str()
            .split("\"job\":")
            .nth(1)
            .unwrap()
            .split(['}', ','])
            .next()
            .unwrap()
            .trim()
            .to_string();
        first_job.get_or_insert(id);
    }
    for _ in 0..25 {
        dispatch(&router, Method::Post, "/api/tick", b"", Some(&token));
    }
    let dashboard = dispatch(&router, Method::Get, "/api/dashboard", b"", None)
        .body_str()
        .to_string();
    let trace = dispatch(
        &router,
        Method::Get,
        &format!("/api/trace/{}", first_job.unwrap()),
        b"",
        Some(&token),
    )
    .body_str()
    .to_string();
    let _ = std::fs::remove_dir_all(&dir);
    (dashboard, trace)
}

#[test]
fn portal_dashboard_and_trace_are_deterministic_across_worker_counts() {
    for seed in [7, 42] {
        let (dash_ref, trace_ref) = run_portal_observability(seed, 1);
        // The dashboard windows real data and carries the alert table.
        assert!(dash_ref.contains("\"queue_depth\""), "{dash_ref}");
        assert!(dash_ref.contains("\"alerts\""), "{dash_ref}");
        assert!(dash_ref.contains("\"p99\""), "{dash_ref}");
        // The trace is one connected tree spanning every layer: HTTP
        // entry, scheduler lifecycle, cluster allocation, VM execution,
        // checker analysis, and WAL appends.
        for layer in [
            "http.request",
            "job.submitted",
            "cluster.alloc",
            "exec.run",
            "checker.analyze",
            "wal.append",
        ] {
            assert!(
                trace_ref.contains(layer),
                "missing {layer} in:\n{trace_ref}"
            );
        }
        // Same seed, same bytes — re-run at the same and other widths.
        for workers in [1usize, 2, 4] {
            let (dash, trace) = run_portal_observability(seed, workers);
            assert_eq!(
                dash, dash_ref,
                "seed {seed}: dashboard diverged at {workers} checker threads"
            );
            assert_eq!(
                trace, trace_ref,
                "seed {seed}: trace tree diverged at {workers} checker threads"
            );
        }
    }
}

/// One raw keep-alive-free HTTP exchange against a live socket; returns
/// the response body.
fn http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: &str,
) -> String {
    let cookie = token
        .map(|t| format!("Cookie: sid={t}\r\n"))
        .unwrap_or_default();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{cookie}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let resp = httpd::test_support::raw_request(addr, &raw);
    resp.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

/// The tick-domain slice of an exposition: every family except the
/// wall-clock ones. Front-end (`ccp_httpd_*`) gauges and counters track
/// socket lifetimes and reactor wakeups, `*_us` histograms bucket real
/// durations, and `ccp_slow_ops_total` trips on a wall-time threshold —
/// all legitimately run-dependent. Everything else is a pure function of
/// the request sequence.
fn tick_domain_subset(exposition: &str) -> String {
    exposition
        .lines()
        .filter(|line| {
            let name = match line
                .strip_prefix("# HELP ")
                .or_else(|| line.strip_prefix("# TYPE "))
            {
                Some(rest) => rest.split_whitespace().next().unwrap_or(""),
                None => line.split(['{', ' ']).next().unwrap_or(""),
            };
            !(name.starts_with("ccp_httpd_")
                || name.contains("_us")
                || name == "ccp_slow_ops_total")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Replay a fixed student session over a real socket — login, edit,
/// compile, submit, tick, poll, stdout tail — and return the tick-domain
/// slice of the final `/api/metrics` scrape.
fn run_session_over_front_end(seed: u64) -> String {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        seed,
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let handle = webportal::serve_with_config(
        Arc::clone(&app),
        "127.0.0.1:0",
        httpd::ServerConfig::default(),
    )
    .expect("spawn portal front end");
    let addr = handle.addr();

    let login = http(
        addr,
        "POST",
        "/api/login",
        None,
        r#"{"user":"admin","password":"super-secret9"}"#,
    );
    let token = login
        .split("\"token\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    http(
        addr,
        "POST",
        "/api/file?path=det.mini",
        Some(&token),
        "fn main() { println(\"det\"); }",
    );
    let compiled = http(addr, "POST", "/api/compile?path=det.mini", Some(&token), "");
    let artifact = compiled
        .split("\"artifact\":\"")
        .nth(1)
        .unwrap()
        .split('"')
        .next()
        .unwrap()
        .to_string();
    let submitted = http(
        addr,
        "POST",
        "/api/jobs",
        Some(&token),
        &format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":2}}"#),
    );
    let job = submitted
        .split("\"job\":")
        .nth(1)
        .unwrap()
        .split(['}', ','])
        .next()
        .unwrap()
        .trim()
        .to_string();
    for _ in 0..5 {
        http(addr, "POST", "/api/tick", Some(&token), "");
    }
    http(addr, "GET", "/api/jobs", Some(&token), "");
    http(
        addr,
        "GET",
        &format!("/api/jobs/{job}/stdout?from=0"),
        Some(&token),
        "",
    );
    let metrics = http(addr, "GET", "/api/metrics", None, "");
    handle.shutdown();
    tick_domain_subset(&metrics)
}

#[test]
fn same_sequence_over_front_end_renders_identical_portal_metrics() {
    for seed in [7, 42] {
        let a = run_session_over_front_end(seed);
        let b = run_session_over_front_end(seed);
        assert!(
            a.contains("ccp_sched_jobs_submitted_total 1"),
            "session metrics missing the submitted job:\n{a}"
        );
        assert_eq!(
            a, b,
            "seed {seed}: tick-domain metrics diverged between identical \
             sessions served over the front end"
        );
    }
}

#[test]
fn chaos_metrics_exposition_is_complete_and_consistent() {
    let text = run_chaos_metrics(42);
    // Every scheduler and cluster family the run exercises is present.
    for family in [
        "ccp_sched_jobs_submitted_total 60",
        "ccp_sched_queue_depth 0",
        "ccp_sched_job_wait_ticks_bucket",
        "ccp_sched_job_run_ticks_sum",
        "ccp_cluster_allocations_total",
        "ccp_cluster_cores_busy 0",
        "ccp_cluster_nodes{state=\"up\"}",
        "ccp_cluster_alloc_cores_bucket",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    // Terminal-state counters sum to the workload size: every job ended
    // exactly one way, in metrics as in job records.
    let value_of = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 2)
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let terminal = value_of("ccp_sched_jobs_completed_total")
        + value_of("ccp_sched_jobs_timed_out_total")
        + value_of("ccp_sched_jobs_node_lost_total")
        + value_of("ccp_sched_jobs_cancelled_total");
    assert_eq!(
        terminal, 60,
        "terminal-state counters disagree with workload size:\n{text}"
    );
    // The node-state gauge partitions the cluster: states sum to 8 nodes
    // whatever mix of up/down the fault plan left behind.
    let nodes = value_of("ccp_cluster_nodes{state=\"up\"}")
        + value_of("ccp_cluster_nodes{state=\"draining\"}")
        + value_of("ccp_cluster_nodes{state=\"down\"}");
    assert_eq!(
        nodes, 8,
        "node-state gauge does not partition the cluster:\n{text}"
    );
}
