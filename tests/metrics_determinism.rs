//! Telemetry determinism: the metrics a chaos run leaves behind are a pure
//! function of the seed. Two runs with the same seed must render
//! byte-identical `/api/metrics` output — counters, gauges, histogram
//! buckets and all. Scheduler and cluster metrics use logical ticks only,
//! so nothing wall-clock can leak in.

use cluster::{Cluster, ClusterSpec, FaultPlan};
use obs::Obs;
use sched::{RetryPolicy, SchedPolicyKind, Scheduler, WorkloadSpec};
use std::sync::Arc;

const MAX_TICKS: u64 = 3_000;

/// Replay the seeded 60-job chaos workload (same shape as
/// `chaos_recovery.rs`) with telemetry attached; return the rendered
/// Prometheus exposition.
fn run_chaos_metrics(seed: u64) -> String {
    let cluster = Cluster::new(ClusterSpec::small(2, 4));
    let nodes = cluster.slave_ids();
    let plan = FaultPlan::random_outages(&nodes, 10, 250, 40, seed);
    let obs = Arc::new(Obs::new());
    let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo)
        .with_obs(Arc::clone(&obs))
        .with_retry(RetryPolicy::default())
        .with_retry_seed(seed)
        .with_fault_plan(plan);

    let workload = WorkloadSpec {
        jobs: 60,
        core_choices: vec![1, 2, 4, 8],
        runtime_range: (5, 25),
        mean_interarrival: 2.0,
        users: 4,
        ..WorkloadSpec::default()
    };
    let arrivals = workload.generate(seed);

    let mut next = 0usize;
    for _ in 0..MAX_TICKS {
        let now = sched.now();
        while next < arrivals.len() && arrivals[next].at_tick <= now + 1 {
            let mut spec = arrivals[next].spec.clone();
            if next.is_multiple_of(3) {
                spec = spec.with_timeout(400);
            }
            sched.submit(spec).expect("workload jobs fit the cluster");
            next += 1;
        }
        sched.tick();
        if next >= arrivals.len() && sched.jobs().all(|j| j.state.is_terminal()) {
            break;
        }
    }
    sched.publish_gauges();
    obs.metrics.render()
}

#[test]
fn same_seed_chaos_runs_render_identical_metrics() {
    for seed in [11, 42, 1337] {
        let a = run_chaos_metrics(seed);
        let b = run_chaos_metrics(seed);
        assert_eq!(
            a, b,
            "seed {seed}: metrics exposition diverged between identical runs"
        );
    }
}

/// Regenerates the headline-metrics table in EXPERIMENTS.md:
/// `cargo test --test metrics_determinism -- --ignored --nocapture`
#[test]
#[ignore]
fn print_chaos_metrics() {
    for seed in [11, 42, 1337] {
        println!("==== seed {seed} ====");
        let text = run_chaos_metrics(seed);
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        {
            println!("{line}");
        }
    }
}

#[test]
fn chaos_metrics_exposition_is_complete_and_consistent() {
    let text = run_chaos_metrics(42);
    // Every scheduler and cluster family the run exercises is present.
    for family in [
        "ccp_sched_jobs_submitted_total 60",
        "ccp_sched_queue_depth 0",
        "ccp_sched_job_wait_ticks_bucket",
        "ccp_sched_job_run_ticks_sum",
        "ccp_cluster_allocations_total",
        "ccp_cluster_cores_busy 0",
        "ccp_cluster_nodes{state=\"up\"}",
        "ccp_cluster_alloc_cores_bucket",
    ] {
        assert!(text.contains(family), "missing {family:?} in:\n{text}");
    }
    // Terminal-state counters sum to the workload size: every job ended
    // exactly one way, in metrics as in job records.
    let value_of = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 2)
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let terminal = value_of("ccp_sched_jobs_completed_total")
        + value_of("ccp_sched_jobs_timed_out_total")
        + value_of("ccp_sched_jobs_node_lost_total")
        + value_of("ccp_sched_jobs_cancelled_total");
    assert_eq!(
        terminal, 60,
        "terminal-state counters disagree with workload size:\n{text}"
    );
    // The node-state gauge partitions the cluster: states sum to 8 nodes
    // whatever mix of up/down the fault plan left behind.
    let nodes = value_of("ccp_cluster_nodes{state=\"up\"}")
        + value_of("ccp_cluster_nodes{state=\"draining\"}")
        + value_of("ccp_cluster_nodes{state=\"down\"}");
    assert_eq!(
        nodes, 8,
        "node-state gauge does not partition the cluster:\n{text}"
    );
}
