//! VM snapshot/restore contract: restoring a snapshot and re-executing the
//! same thread choices must be indistinguishable — in events, canonical
//! state, and instruction counts — from the first execution of that suffix,
//! and from a fresh VM replaying the whole prefix. This is what lets the
//! checker's DFS backtrack by restore instead of re-running from the root.
//!
//! (The proptest twin in `tests/property_tests.rs` samples the same
//! invariant over random split points and schedules; this plain version
//! sweeps a fixed grid so the contract stays exercised even where proptest
//! is unavailable.)

use minilang::{SchedPolicy, Vm, VmConfig};

/// A program touching every snapshot-relevant substrate: array identity
/// (aliased through a global and a channel), mutex/semaphore/channel state,
/// RNG draws, sleeps, and stdout.
fn rich_source() -> &'static str {
    r#"
        var shared = [0, 0, 0];
        var m;
        var sem;
        var c;
        fn worker(k) {
            var local = [k, k * 2];
            sem_wait(sem);
            lock(m);
            shared[k] = shared[k] + local[0] + rand_int(0, 3);
            unlock(m);
            sem_post(sem);
            sleep(k + 1);
            send(c, local);
        }
        fn main() {
            m = mutex();
            sem = semaphore(1);
            c = channel(2);
            var t0 = spawn worker(0);
            var t1 = spawn worker(1);
            var a = recv(c);
            var b = recv(c);
            shared[2] = a[1] + b[1];
            join(t0);
            join(t1);
            println(shared[0], shared[1], shared[2]);
            return shared[2];
        }
    "#
}

fn fresh_vm(seed: u64) -> Vm {
    let prog = minilang::compile(rich_source()).expect("rich source compiles");
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed,
            quantum: 1,
            max_instructions: 200_000,
            policy: SchedPolicy::RoundRobin,
        },
    );
    vm.set_recording(true);
    vm
}

/// Step up to `steps` visible slices, choosing among enabled threads with
/// `pick`. Records each chosen tid and every event (debug-formatted, so
/// this needs nothing beyond `Debug` from `VmEvent`).
fn drive(
    vm: &mut Vm,
    steps: usize,
    mut pick: impl FnMut(usize, usize) -> usize,
    tids: &mut Vec<usize>,
    events: &mut Vec<String>,
) {
    for s in 0..steps {
        if vm.all_finished() {
            break;
        }
        let en = vm.enabled_threads();
        if en.is_empty() {
            if !vm.advance_clock() {
                break;
            }
            continue;
        }
        let tid = en[pick(s, en.len()) % en.len()];
        if vm.step_thread(tid, 1).is_err() {
            break;
        }
        tids.push(tid);
        events.extend(vm.drain_events().iter().map(|e| format!("{e:?}")));
    }
}

/// Replay an exact tid sequence (each must still be enabled — divergence
/// here is itself a restore bug and fails loudly).
fn replay(vm: &mut Vm, tids: &[usize], events: &mut Vec<String>) {
    for &tid in tids {
        while !vm.is_enabled(tid) {
            assert!(
                vm.advance_clock(),
                "replayed thread {tid} not enabled and clock stuck"
            );
        }
        vm.step_thread(tid, 1).expect("replayed step succeeds");
        events.extend(vm.drain_events().iter().map(|e| format!("{e:?}")));
    }
}

/// The roundtrip at one (seed, prefix, suffix, pick) point.
fn assert_roundtrip(seed: u64, prefix: usize, suffix: usize, pick: usize) {
    let ctx = format!("seed {seed}, prefix {prefix}, suffix {suffix}, pick {pick}");

    // Prefix on a fresh VM, then snapshot.
    let mut vm = fresh_vm(seed);
    let mut prefix_tids = Vec::new();
    let mut prefix_events = Vec::new();
    drive(
        &mut vm,
        prefix,
        |s, _| pick.wrapping_add(s),
        &mut prefix_tids,
        &mut prefix_events,
    );
    let snap = vm.snapshot();
    let hash_at_snap = vm.state_hash();
    let executed_at_snap = vm.executed();

    // First continuation.
    let mut first_tids = Vec::new();
    let mut first_events = Vec::new();
    drive(
        &mut vm,
        suffix,
        |s, _| pick.wrapping_add(s).wrapping_mul(7),
        &mut first_tids,
        &mut first_events,
    );
    let first_hash = vm.state_hash();
    let first_executed = vm.executed();

    // Restore must rewind exactly to the snapshot point...
    vm.restore(&snap);
    assert_eq!(vm.state_hash(), hash_at_snap, "restore state ({ctx})");
    assert_eq!(vm.executed(), executed_at_snap, "restore executed ({ctx})");

    // ...and re-stepping the same choices must reproduce the suffix.
    let mut second_events = Vec::new();
    replay(&mut vm, &first_tids, &mut second_events);
    assert_eq!(second_events, first_events, "restored event trace ({ctx})");
    assert_eq!(vm.state_hash(), first_hash, "restored final state ({ctx})");
    assert_eq!(vm.executed(), first_executed, "restored executed ({ctx})");

    // A fresh VM replaying prefix + suffix from scratch agrees too.
    let mut fresh = fresh_vm(seed);
    let mut fresh_events = Vec::new();
    replay(&mut fresh, &prefix_tids, &mut fresh_events);
    assert_eq!(
        fresh.state_hash(),
        hash_at_snap,
        "fresh prefix state ({ctx})"
    );
    fresh_events.clear();
    replay(&mut fresh, &first_tids, &mut fresh_events);
    assert_eq!(fresh_events, first_events, "fresh suffix events ({ctx})");
    assert_eq!(fresh.state_hash(), first_hash, "fresh final state ({ctx})");
}

#[test]
fn snapshot_restore_roundtrip_grid() {
    for seed in [0u64, 3, 11] {
        for prefix in [1usize, 5, 17, 40] {
            for suffix in [1usize, 9, 30] {
                for pick in [0usize, 2, 5] {
                    assert_roundtrip(seed, prefix, suffix, pick);
                }
            }
        }
    }
}

#[test]
fn snapshot_is_restorable_many_times() {
    // The DFS restores one snapshot once per sibling; each restore must
    // land on the same state no matter what ran in between.
    let mut vm = fresh_vm(1);
    let mut tids = Vec::new();
    let mut events = Vec::new();
    drive(&mut vm, 10, |s, _| s, &mut tids, &mut events);
    let snap = vm.snapshot();
    let base = vm.state_hash();
    for variant in 0..6usize {
        let mut t = Vec::new();
        let mut e = Vec::new();
        drive(
            &mut vm,
            25,
            |s, _| s.wrapping_mul(variant + 2),
            &mut t,
            &mut e,
        );
        vm.restore(&snap);
        assert_eq!(vm.state_hash(), base, "restore #{variant}");
    }
}
