//! Contention and revocation under the fine-grained portal lock: many
//! concurrent sessions mixing heavy operations (compile, analyze) with
//! light ones (polling, ticking) over real sockets, on BOTH front-end
//! engines — plus a session logged out while its analysis is in flight.
//!
//! What the global-mutex design could hide and this suite pins down:
//!
//! * no deadlock: every client finishes its script within the watchdog;
//! * no lost updates: every job the class submitted reaches a terminal
//!   state and stays attributed to its submitter;
//! * no torn state: a logout racing a two-phase heavy operation either
//!   lets the result land (logout after commit) or drops it with a 401
//!   (logout before commit) — never a panic, never a corrupted portal.

use ccp_core::{Portal, PortalConfig};
use cluster::ClusterSpec;
use httpd::json::Json;
use httpd::{Engine, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;
use webportal::app::serve_with_config;
use webportal::App;

const STUDENTS: usize = 4;
const ROUNDS: usize = 6;
/// Whole-test watchdog: generous for slow CI, far below a hang.
const WATCHDOG: Duration = Duration::from_secs(120);

/// A small racy-but-terminating program: enough interleavings that
/// `/api/analyze` does real exploration, cheap enough to stay fast.
const SOURCE: &str = r#"
var total = 0;
fn bump(n) {
    for (var i = 0; i < n; i = i + 1) {
        atomic_add(total, 1);
    }
}
fn main() {
    var a = spawn bump(2);
    var b = spawn bump(2);
    join(a);
    join(b);
    println("total = ", total);
    return total;
}
"#;

// ---- a minimal blocking keep-alive HTTP client -------------------------

struct Client {
    stream: TcpStream,
    addr: SocketAddr,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect portal");
        stream.set_nodelay(true).unwrap();
        Client { stream, addr }
    }

    /// One request/response exchange; reconnects once on a dropped socket
    /// (keep-alive limits are server policy, not a test failure).
    fn call(&mut self, method: &str, path: &str, token: Option<&str>, body: &[u8]) -> (u16, Json) {
        match self.try_call(method, path, token, body) {
            Ok(r) => r,
            Err(_) => {
                self.stream = TcpStream::connect(self.addr).expect("reconnect portal");
                self.stream.set_nodelay(true).unwrap();
                self.try_call(method, path, token, body)
                    .expect("retried call")
            }
        }
    }

    fn try_call(
        &mut self,
        method: &str,
        path: &str,
        token: Option<&str>,
        body: &[u8],
    ) -> std::io::Result<(u16, Json)> {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: portal\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n",
            body.len()
        );
        if let Some(t) = token {
            head.push_str(&format!("Cookie: sid={t}\r\n"));
        }
        head.push_str("\r\n");
        let mut req = head.into_bytes();
        req.extend_from_slice(body);
        self.stream.write_all(&req)?;

        let mut buf = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(done) = parse_response(&buf) {
                return Ok(done);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn parse_response(buf: &[u8]) -> Option<(u16, Json)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.get(9..12)?.parse().ok()?;
    let mut len = 0usize;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().ok()?;
            }
        }
    }
    if buf.len() < head_end + 4 + len {
        return None;
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..head_end + 4 + len]);
    Some((status, Json::parse(&body).unwrap_or(Json::Null)))
}

// ---- setup --------------------------------------------------------------

fn serve(engine: Engine) -> (httpd::ServerHandle, String) {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let handle = serve_with_config(
        Arc::clone(&app),
        "127.0.0.1:0",
        ServerConfig {
            engine,
            workers: 8,
            max_inflight: 1024,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("spawn portal server");
    let mut admin = Client::connect(handle.addr());
    let (status, body) = admin.call(
        "POST",
        "/api/login",
        None,
        br#"{"user":"admin","password":"super-secret9"}"#,
    );
    assert_eq!(status, 200, "{body:?}");
    let token = body.get("token").unwrap().as_str().unwrap().to_string();
    (handle, token)
}

fn login(c: &mut Client, user: &str, password: &str) -> String {
    let (status, body) = c.call(
        "POST",
        "/api/login",
        None,
        format!(r#"{{"user":"{user}","password":"{password}"}}"#).as_bytes(),
    );
    assert_eq!(status, 200, "login {user}: {body:?}");
    body.get("token").unwrap().as_str().unwrap().to_string()
}

// ---- the stress test ----------------------------------------------------

/// One student's semester in miniature; returns the job ids it submitted.
/// Panics (failing the test) on any 5xx or any unexpected status.
fn student_script(addr: SocketAddr, name: &str, password: &str) -> Vec<u64> {
    let mut c = Client::connect(addr);
    let token = login(&mut c, name, password);
    let mut jobs = Vec::new();
    for round in 0..ROUNDS {
        let path = format!("/api/file?path={name}_r{round}.mini");
        let (status, body) = c.call("POST", &path, Some(&token), SOURCE.as_bytes());
        assert_eq!(status, 201, "write {name} r{round}: {body:?}");
        let path = format!("/api/compile?path={name}_r{round}.mini");
        let (status, body) = c.call("POST", &path, Some(&token), b"");
        assert_eq!(status, 200, "compile {name} r{round}: {body:?}");
        let artifact = body.get("artifact").unwrap().as_str().unwrap().to_string();

        // Heavy: explore a slice of the schedule tree.
        let path = format!("/api/analyze?artifact={artifact}&budget=24");
        let (status, body) = c.call("POST", &path, Some(&token), b"");
        assert_eq!(status, 200, "analyze {name} r{round}: {body:?}");

        // Submit to the distributor and pump it once.
        let body_json = format!(r#"{{"artifact":"{artifact}","cores":1,"estimated_ticks":2}}"#);
        let (status, body) = c.call("POST", "/api/jobs", Some(&token), body_json.as_bytes());
        assert_eq!(status, 201, "submit {name} r{round}: {body:?}");
        jobs.push(body.get("job").unwrap().as_num().unwrap() as u64);
        let (status, _) = c.call("POST", "/api/tick", Some(&token), b"");
        assert_eq!(status, 200, "tick {name} r{round}");

        // Light: poll like a dashboard would.
        for route in ["/api/jobs", "/api/whoami", "/api/dashboard", "/api/status"] {
            let (status, _) = c.call("GET", route, Some(&token), b"");
            assert_eq!(status, 200, "poll {route} as {name}");
        }
    }
    jobs
}

fn stress_engine(engine: Engine) {
    let (handle, admin_token) = serve(engine);
    let addr = handle.addr();
    let mut admin = Client::connect(addr);
    for s in 0..STUDENTS {
        let body = format!(r#"{{"name":"stress{s}","password":"password99","role":"student"}}"#);
        let (status, resp) = admin.call(
            "POST",
            "/api/admin/users",
            Some(&admin_token),
            body.as_bytes(),
        );
        assert_eq!(status, 201, "create stress{s}: {resp:?}");
    }

    let mut submitted: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STUDENTS)
            .map(|s| scope.spawn(move || student_script(addr, &format!("stress{s}"), "password99")))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("student thread"))
            .collect()
    });
    submitted.sort_unstable();
    submitted.dedup();
    assert_eq!(
        submitted.len(),
        STUDENTS * ROUNDS,
        "every submission got a distinct job id"
    );

    // Drain the distributor: every submitted job must reach a terminal
    // state within a bounded number of ticks.
    for _ in 0..200 {
        let (status, _) = admin.call("POST", "/api/tick", Some(&admin_token), b"");
        assert_eq!(status, 200);
        let (status, jobs) = admin.call("GET", "/api/jobs", Some(&admin_token), b"");
        assert_eq!(status, 200);
        let pending = count_nonterminal(&jobs);
        if pending == 0 {
            break;
        }
    }
    let (status, jobs) = admin.call("GET", "/api/jobs", Some(&admin_token), b"");
    assert_eq!(status, 200);
    assert_eq!(count_nonterminal(&jobs), 0, "all jobs terminal: {jobs:?}");
    let seen = jobs.as_arr().map(|a| a.len()).unwrap_or(0);
    assert!(
        seen >= STUDENTS * ROUNDS,
        "no lost jobs: saw {seen}, submitted {}",
        STUDENTS * ROUNDS
    );
    handle.shutdown();
}

fn count_nonterminal(jobs: &Json) -> usize {
    jobs.as_arr()
        .map(|arr| {
            arr.iter()
                .filter(|j| {
                    let label = j.get("state").and_then(Json::as_str).unwrap_or("");
                    label.starts_with("pending")
                        || label.starts_with("running")
                        || label.starts_with("requeued")
                })
                .count()
        })
        .unwrap_or(0)
}

/// Wrap an engine run in a watchdog so a deadlock fails fast instead of
/// hanging the suite.
fn with_watchdog(name: &'static str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = mpsc::channel();
    let t = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
        panic!("{name}: deadlock or stall — watchdog fired after {WATCHDOG:?}")
    });
    t.join().expect("watchdogged test body");
}

#[test]
fn concurrent_class_survives_on_the_reactor_engine() {
    with_watchdog("reactor stress", || stress_engine(Engine::Reactor));
}

#[test]
fn concurrent_class_survives_on_the_thread_engine() {
    with_watchdog("thread stress", || stress_engine(Engine::Threads));
}

/// A session revoked while its analysis is in flight: the result is
/// dropped with a 401 and the portal stays fully functional.
#[test]
fn logout_mid_analysis_drops_the_result_not_the_portal() {
    with_watchdog("mid-flight logout", || {
        let (handle, admin_token) = serve(Engine::Reactor);
        let addr = handle.addr();
        let mut admin = Client::connect(addr);
        let (status, _) = admin.call(
            "POST",
            "/api/admin/users",
            Some(&admin_token),
            br#"{"name":"leaver","password":"password99","role":"student"}"#,
        );
        assert_eq!(status, 201);

        let mut c = Client::connect(addr);
        let token = login(&mut c, "leaver", "password99");
        let (status, body) = c.call(
            "POST",
            "/api/file?path=leave.mini",
            Some(&token),
            SOURCE.as_bytes(),
        );
        assert_eq!(status, 201, "{body:?}");
        let (status, body) = c.call("POST", "/api/compile?path=leave.mini", Some(&token), b"");
        assert_eq!(status, 200, "{body:?}");
        let artifact = body.get("artifact").unwrap().as_str().unwrap().to_string();

        // Fire a long analysis on one connection, log the session out from
        // another while it runs. The race is inherent: if the logout lands
        // first the commit must be refused (401); if the analysis wins the
        // result is delivered (200). Both are correct — anything else
        // (5xx, hang, poisoned state) is the bug this test exists to catch.
        let analyze_path = format!("/api/analyze?artifact={artifact}&budget=512");
        let token_for_analyze = token.clone();
        let analyzer = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            c.call("POST", &analyze_path, Some(&token_for_analyze), b"")
        });
        std::thread::sleep(Duration::from_millis(100));
        let (status, _) = c.call("POST", "/api/logout", Some(&token), b"");
        assert_eq!(status, 200, "logout");
        let (status, body) = analyzer.join().expect("analyze thread");
        assert!(
            status == 401 || status == 200,
            "mid-flight logout must yield 401 (dropped) or 200 (won the race), got {status}: {body:?}"
        );

        // The revoked token is dead for light routes too...
        let (status, _) = c.call("GET", "/api/jobs", Some(&token), b"");
        assert_eq!(status, 401, "revoked token stays revoked");
        // ...and the portal is unharmed: fresh login, compile, analyze.
        let token = login(&mut c, "leaver", "password99");
        let (status, body) = c.call("POST", "/api/compile?path=leave.mini", Some(&token), b"");
        assert_eq!(
            status, 200,
            "portal still compiles after the race: {body:?}"
        );
        let (status, body) = c.call(
            "POST",
            &format!(
                "/api/analyze?artifact={}&budget=16",
                body.get("artifact").unwrap().as_str().unwrap()
            ),
            Some(&token),
            b"",
        );
        assert_eq!(
            status, 200,
            "portal still analyzes after the race: {body:?}"
        );
        handle.shutdown();
    });
}
