#!/usr/bin/env bash
# Crash-recovery smoke: boot a durable portal on a tempdir WAL, write a
# marker file and submit a cluster job over HTTP, kill -9 the server (no
# clean shutdown, no final flush), restart it on the same data dir, and
# verify over HTTP that
#   1. the restarted portal reports durable=true with no WAL error,
#   2. /api/health carries recovery reports with vfs AND sched records,
#   3. the marker file written before the crash reads back byte-identical,
#   4. the submitted job is still known to the recovered distributor.
#
# Usage: check_recovery.sh [port]    (default 8143)
set -euo pipefail

port="${1:-8143}"
base="http://127.0.0.1:$port"
data="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ]; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$data"
}
trap cleanup EXIT

# Run the example binary directly (not through `cargo run`) so kill -9
# hits the server itself rather than a cargo wrapper that would orphan it.
cargo build --release --example portal_server
server=target/release/examples/portal_server

wait_up() {
    for _ in $(seq 1 60); do
        if curl -sf "$base/api/health" >/dev/null 2>&1; then
            return 0
        fi
        sleep 1
    done
    echo "FAIL: portal did not come up on :$port" >&2
    exit 1
}

login() {
    curl -sf -X POST "$base/api/login" \
        --data-binary '{"user":"admin","password":"change-me-please"}' \
        | sed -nE 's/.*"token":"([^"]+)".*/\1/p'
}

# ---- first life: write a marker the scripted demo workload never touches ---
CCP_DATA_DIR="$data" "$server" "$port" &
server_pid=$!
wait_up
tok="$(login)"
if [ -z "$tok" ]; then
    echo "FAIL: could not log in before the crash" >&2
    exit 1
fi
marker="survived-the-crash-$$"
printf '%s' "$marker" \
    | curl -sf -X POST "$base/api/file?path=marker.txt" \
        -H "Cookie: sid=$tok" --data-binary @- >/dev/null

# Exercise the sched log too: compile and submit a real cluster job.
printf 'fn main() { println(7); }' \
    | curl -sf -X POST "$base/api/file?path=smoke.mini" \
        -H "Cookie: sid=$tok" --data-binary @- >/dev/null
art="$(curl -sf -X POST "$base/api/compile?path=smoke.mini" \
    -H "Cookie: sid=$tok" | sed -nE 's/.*"artifact":"([^"]+)".*/\1/p')"
job="$(curl -sf -X POST "$base/api/jobs" -H "Cookie: sid=$tok" \
    --data-binary '{"artifact":"'"$art"'","cores":1,"estimated_ticks":50}' \
    | sed -nE 's/.*"job":([0-9]+).*/\1/p')"
if [ -z "$job" ]; then
    echo "FAIL: could not submit a job before the crash" >&2
    exit 1
fi
curl -sf -X POST "$base/api/tick" -H "Cookie: sid=$tok" >/dev/null

# ---- crash: SIGKILL, so nothing gets a chance to flush or shut down ------
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# ---- second life: same data dir; recovery must replay the log ------------
CCP_DATA_DIR="$data" "$server" "$port" &
server_pid=$!
wait_up

health="$(curl -sf "$base/api/health")"
if ! printf '%s' "$health" | grep -q '"durable":true'; then
    echo "FAIL: restarted portal is not durable: $health" >&2
    exit 1
fi
if ! printf '%s' "$health" | grep -q '"wal_error":null'; then
    echo "FAIL: restarted portal reports a WAL error: $health" >&2
    exit 1
fi
# Keys inside each recovery object render alphabetically, so
# records_replayed precedes stream within the same {...}.
replayed="$(printf '%s' "$health" \
    | sed -nE 's/.*"records_replayed":([0-9]+)[^}]*"stream":"vfs".*/\1/p')"
if [ -z "$replayed" ] || [ "$replayed" -eq 0 ]; then
    echo "FAIL: no vfs records replayed after restart: $health" >&2
    exit 1
fi
sched_replayed="$(printf '%s' "$health" \
    | sed -nE 's/.*"records_replayed":([0-9]+)[^}]*"stream":"sched".*/\1/p')"
if [ -z "$sched_replayed" ] || [ "$sched_replayed" -eq 0 ]; then
    echo "FAIL: no sched records replayed after restart: $health" >&2
    exit 1
fi

tok="$(login)"
job_state="$(curl -sf "$base/api/jobs/$job" -H "Cookie: sid=$tok" \
    | sed -nE 's/.*"state":"([^"]+)".*/\1/p')"
if [ -z "$job_state" ]; then
    echo "FAIL: job $job vanished across the crash" >&2
    exit 1
fi
got="$(curl -sf "$base/api/file?path=marker.txt" -H "Cookie: sid=$tok")"
if [ "$got" != "$marker" ]; then
    echo "FAIL: marker file did not survive the crash" >&2
    echo "  wrote: $marker" >&2
    echo "  read:  $got" >&2
    exit 1
fi

echo "OK: killed -9 and recovered; $replayed vfs + $sched_replayed sched records replayed, marker intact, job $job is '$job_state'"
