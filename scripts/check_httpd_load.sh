#!/usr/bin/env bash
# Front-end load smoke: replay the closed-loop semester workload (login,
# edit, compile, submit, poll /api/jobs) against the reactor engine at
# class scale and the thread-per-connection baseline, then assert
#
#   * the reactor run is clean — zero error responses, zero forced
#     reconnects, every session sustained on one keep-alive socket;
#   * the equal-memory capacity ratio (2 MiB stack per thread-engine
#     connection vs worker stacks + 48 KiB buffers per reactor
#     connection) clears the 10x acceptance floor;
#   * the reactor's p99 stays inside a generous smoke budget, so a
#     pathological stall fails loudly instead of shipping.
#
# Usage: check_httpd_load.sh [output.json]    (default BENCH_httpd.json
# is NOT overwritten here — pass a path to capture the datapoint)
set -euo pipefail

out="${1:-}"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
cargo run --release -p ccp-bench --example httpd_load 2>&1 | tee "$log"

line="$(grep -E '^BENCH_HTTPD_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$line" ]; then
    echo "FAIL: httpd_load example did not print a BENCH_HTTPD_JSON line" >&2
    exit 1
fi
json="${line#BENCH_HTTPD_JSON }"
if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
fi

supported="$(printf '%s' "$json" | sed -nE 's/.*"reactor_supported":(true|false).*/\1/p')"
if [ "$supported" != "true" ]; then
    echo "note: no epoll on this platform; thread fallback smoke only"
    exit 0
fi

reactor="$(printf '%s' "$json" | sed -nE 's/.*"reactor":\{([^}]*)\}.*/\1/p')"
field() { printf '%s' "$reactor" | sed -nE "s/.*\"$1\":([0-9.]+).*/\1/p"; }
connections="$(field connections)"
sustained="$(field sustained)"
errors="$(field errors)"
reconnects="$(field reconnects)"
p99="$(field p99_ms)"
capacity="$(printf '%s' "$json" | sed -nE 's/.*"capacity_ratio":([0-9.]+).*/\1/p')"

status=0
if [ "$errors" != "0" ]; then
    echo "FAIL: reactor run returned $errors error responses" >&2
    status=1
fi
if [ "$reconnects" != "0" ]; then
    echo "FAIL: reactor dropped keep-alive sessions ($reconnects reconnects)" >&2
    status=1
fi
if [ "$sustained" != "$connections" ]; then
    echo "FAIL: only $sustained of $connections sessions sustained" >&2
    status=1
fi
awk -v c="$capacity" 'BEGIN {
    if (c + 0 < 10.0) { print "FAIL: capacity ratio " c "x below the 10x floor" > "/dev/stderr"; exit 1 }
}' || status=1
# Smoke budget, not a latency SLO: the workload is closed-loop on shared
# CI cores, so only a wild outlier (seconds) should trip this.
awk -v p="$p99" 'BEGIN {
    if (p + 0 > 5000.0) { print "FAIL: reactor p99 " p "ms beyond the 5s smoke budget" > "/dev/stderr"; exit 1 }
}' || status=1
[ "$status" -eq 0 ] || exit "$status"

echo "OK: $sustained/$connections sessions sustained, capacity ${capacity}x, p99 ${p99}ms"
