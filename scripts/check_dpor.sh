#!/usr/bin/env bash
# Partial-order-reduction smoke: run the DPOR bench comparison and assert
# the reduction actually pays (>=2x fewer schedules than the unreduced
# sleep-set DFS on every deep-DFS archetype, verdicts agreeing and both
# engines completing), then boot the portal and verify a live /api/analyze
# of a clean submission reports exhaustive_within_bound:true — the
# CHESS-style certificate the grader's verdicts lean on.
#
# Usage: check_dpor.sh [port]    (default 8147)
set -euo pipefail

port="${1:-8147}"
base="http://127.0.0.1:$port"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ]; then
        kill "$server_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

# ---- 1. the reduction table ------------------------------------------------

log="$(mktemp)"
cargo run --release -p ccp-bench --example dpor 2>&1 | tee "$log"
line="$(grep -E '^BENCH_DPOR_JSON \{' "$log" | tail -n 1 || true)"
rm -f "$log"
if [ -z "$line" ]; then
    echo "FAIL: dpor example did not print a BENCH_DPOR_JSON line" >&2
    exit 1
fi
json="${line#BENCH_DPOR_JSON }"

all_sound="$(printf '%s' "$json" | sed -nE 's/.*"all_sound":(true|false).*/\1/p')"
if [ "$all_sound" != "true" ]; then
    echo "FAIL: DPOR soundness bits not all true: $json" >&2
    exit 1
fi
# Every archetype's ratio, not just the minimum: the reduction claim is
# per-workload, and a single archetype regressing to ~1x is a real loss
# even if the minimum elsewhere stays high.
ratios="$(printf '%s' "$json" | grep -oE '"reduction":[0-9.]+' | cut -d: -f2)"
if [ -z "$ratios" ]; then
    echo "FAIL: no per-archetype reduction ratios in: $json" >&2
    exit 1
fi
for r in $ratios; do
    awk -v r="$r" 'BEGIN {
        if (r + 0 < 2.0) { print "FAIL: reduction ratio " r "x below 2.0x" > "/dev/stderr"; exit 1 }
    }'
done
echo "OK: every archetype reduced >=2x (ratios: $(echo "$ratios" | tr '\n' ' '))"

# ---- 2. the live certificate -----------------------------------------------

cargo build --release --example portal_server
target/release/examples/portal_server "$port" &
server_pid=$!

for _ in $(seq 1 60); do
    curl -sf "$base/api/health" >/dev/null 2>&1 && break
    sleep 1
done
if ! curl -sf "$base/api/health" >/dev/null 2>&1; then
    echo "FAIL: portal did not come up on :$port" >&2
    exit 1
fi

tok="$(curl -sf -X POST "$base/api/login" \
    --data-binary '{"user":"admin","password":"change-me-please"}' \
    | sed -nE 's/.*"token":"([^"]+)".*/\1/p')"
if [ -z "$tok" ]; then
    echo "FAIL: login returned no token" >&2
    exit 1
fi

# A clean locked counter: small enough that the default analyze budget
# exhausts its (reduced) schedule space, so the certificate must be true.
printf 'var n = 0;\nvar m;\nfn w() { lock(m); n = n + 1; unlock(m); }\nfn main() { m = mutex(); var a = spawn w(); var b = spawn w(); join(a); join(b); return n; }\n' \
    | curl -sf -X POST "$base/api/file?path=locked.mini" \
        -H "Cookie: sid=$tok" --data-binary @- >/dev/null

art="$(curl -sf -X POST "$base/api/compile?path=locked.mini" \
    -H "Cookie: sid=$tok" | sed -nE 's/.*"artifact":"([^"]+)".*/\1/p')"
if [ -z "$art" ]; then
    echo "FAIL: compile returned no artifact" >&2
    exit 1
fi

body="$(curl -sf -X POST "$base/api/analyze?artifact=$art" -H "Cookie: sid=$tok")"
printf '%s' "$body" | bash "$(dirname "$0")/check_analyze.sh" clean >/dev/null

exhaustive="$(printf '%s' "$body" | sed -nE 's/.*"exhaustive_within_bound":(true|false).*/\1/p')"
if [ "$exhaustive" != "true" ]; then
    echo "FAIL: live analyze did not certify exhaustive_within_bound: $body" >&2
    exit 1
fi

# The reduction counters must be live on the portal's registry: the
# analysis above earned backtrack points, and the families are registered
# eagerly so a scrape always carries them.
metrics="$(curl -sf "$base/api/metrics")"
for family in \
    ccp_checker_dpor_backtracks_total \
    ccp_checker_dpor_pruned_siblings_total \
    ccp_checker_dpor_bound_pruned_total; do
    if ! printf '%s\n' "$metrics" | grep -qE "^# TYPE $family counter\$"; then
        echo "FAIL: /api/metrics is missing $family" >&2
        exit 1
    fi
done

echo "OK: live /api/analyze certified exhaustive_within_bound=true and the dpor metric families are exposed"
