#!/usr/bin/env bash
# Smoke-run the checker_parallel bench and capture its machine-readable
# summaries: BENCH_checker.json (pool speedup + cache hit rate),
# BENCH_vm.json (VM fast path: snapshot vs stateless schedules/sec,
# steps/sec, snapshot hit ratio), BENCH_obs.json (telemetry overhead on
# the 4-worker hot path), BENCH_dpor.json (partial-order-reduction
# ratios), BENCH_httpd.json (front-end capacity: reactor vs
# thread-per-connection) and BENCH_portal_lock.json (light-route latency
# under heavy contention: global portal mutex vs fine-grained locking),
# so CI archives all six datapoints per commit.
#
# Usage: bench_smoke.sh [output.json] [vm_output.json] [obs_output.json] [dpor_output.json] [httpd_output.json] [portal_lock_output.json]
#        (defaults: BENCH_checker.json, BENCH_vm.json, BENCH_obs.json, BENCH_dpor.json, BENCH_httpd.json, BENCH_portal_lock.json)
#
# The bench prints exactly one line of each form
#   BENCH_JSON {"bench":"checker_parallel",...}
#   BENCH_VM_JSON {"bench":"vm_fastpath",...}
#   BENCH_OBS_JSON {"bench":"obs_overhead",...}
#   BENCH_DPOR_JSON {"bench":"dpor",...}
#   BENCH_HTTPD_JSON {"bench":"httpd_load",...}
#   BENCH_PORTAL_LOCK_JSON {"bench":"portal_lock",...}
# on stderr; everything after the prefix is already valid JSON.
set -euo pipefail

out="${1:-BENCH_checker.json}"
vm_out="${2:-BENCH_vm.json}"
obs_out="${3:-BENCH_obs.json}"
dpor_out="${4:-BENCH_dpor.json}"
httpd_out="${5:-BENCH_httpd.json}"
lock_out="${6:-BENCH_portal_lock.json}"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

# Capture the checked-in baselines before this run overwrites them, so the
# fresh datapoint can be diffed against the committed trajectory below.
base_speedup=""
base_hit=""
base_vm=""
if [ -f "$out" ]; then
    base_speedup="$(sed -nE 's/.*"speedup_4w":([0-9.]+).*/\1/p' "$out")"
    base_hit="$(sed -nE 's/.*"cache_hit_rate":([0-9.]+).*/\1/p' "$out")"
fi
if [ -f "$vm_out" ]; then
    base_vm="$(sed -nE 's/.*"min_speedup":([0-9.]+).*/\1/p' "$vm_out")"
fi
base_overhead=""
if [ -f "$obs_out" ]; then
    base_overhead="$(sed -nE 's/.*"overhead_pct":(-?[0-9.]+).*/\1/p' "$obs_out")"
fi
base_reduction=""
if [ -f "$dpor_out" ]; then
    base_reduction="$(sed -nE 's/.*"min_reduction":([0-9.]+).*/\1/p' "$dpor_out")"
fi
base_capacity=""
if [ -f "$httpd_out" ]; then
    base_capacity="$(sed -nE 's/.*"capacity_ratio":([0-9.]+).*/\1/p' "$httpd_out")"
fi
base_improvement=""
if [ -f "$lock_out" ]; then
    base_improvement="$(sed -nE 's/.*"light_p99_improvement":([0-9.]+).*/\1/p' "$lock_out")"
fi

# --test with a fast profile: we want the printed summary, not tight CIs.
cargo bench -p ccp-bench --bench checker_parallel -- --test 2>&1 | tee "$log"

line="$(grep -E '^BENCH_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$line" ]; then
    echo "FAIL: bench did not print a BENCH_JSON line" >&2
    exit 1
fi
printf '%s\n' "${line#BENCH_JSON }" > "$out"

vm_line="$(grep -E '^BENCH_VM_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$vm_line" ]; then
    echo "FAIL: bench did not print a BENCH_VM_JSON line" >&2
    exit 1
fi
printf '%s\n' "${vm_line#BENCH_VM_JSON }" > "$vm_out"

obs_line="$(grep -E '^BENCH_OBS_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$obs_line" ]; then
    echo "FAIL: bench did not print a BENCH_OBS_JSON line" >&2
    exit 1
fi
printf '%s\n' "${obs_line#BENCH_OBS_JSON }" > "$obs_out"

dpor_line="$(grep -E '^BENCH_DPOR_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$dpor_line" ]; then
    echo "FAIL: bench did not print a BENCH_DPOR_JSON line" >&2
    exit 1
fi
printf '%s\n' "${dpor_line#BENCH_DPOR_JSON }" > "$dpor_out"

httpd_line="$(grep -E '^BENCH_HTTPD_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$httpd_line" ]; then
    echo "FAIL: bench did not print a BENCH_HTTPD_JSON line" >&2
    exit 1
fi
printf '%s\n' "${httpd_line#BENCH_HTTPD_JSON }" > "$httpd_out"

lock_line="$(grep -E '^BENCH_PORTAL_LOCK_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$lock_line" ]; then
    echo "FAIL: bench did not print a BENCH_PORTAL_LOCK_JSON line" >&2
    exit 1
fi
printf '%s\n' "${lock_line#BENCH_PORTAL_LOCK_JSON }" > "$lock_out"

# The snapshot engine's win is algorithmic (it removes prefix re-execution,
# not wall-clock parallelism), so the floor holds on any core count.
vm_speedup="$(sed -nE 's/.*"min_speedup":([0-9.]+).*/\1/p' "$vm_out")"
if [ -z "$vm_speedup" ]; then
    echo "FAIL: $vm_out is missing min_speedup" >&2
    exit 1
fi
awk -v s="$vm_speedup" 'BEGIN {
    if (s + 0 < 2.0) { print "FAIL: snapshot min speedup " s " below 2.0x" > "/dev/stderr"; exit 1 }
}'

# The reduction ratio is a schedule count, not a timing: deterministic on
# any machine. Floor it at 2x and require the soundness bits (verdicts
# agree, both engines complete, bounded run certifies its bound).
reduction="$(sed -nE 's/.*"min_reduction":([0-9.]+).*/\1/p' "$dpor_out")"
all_sound="$(sed -nE 's/.*"all_sound":(true|false).*/\1/p' "$dpor_out")"
if [ -z "$reduction" ] || [ -z "$all_sound" ]; then
    echo "FAIL: $dpor_out is missing min_reduction or all_sound" >&2
    exit 1
fi
if [ "$all_sound" != "true" ]; then
    echo "FAIL: DPOR soundness bits not all true in $dpor_out" >&2
    exit 1
fi
awk -v r="$reduction" 'BEGIN {
    if (r + 0 < 2.0) { print "FAIL: DPOR min reduction " r "x below 2.0x" > "/dev/stderr"; exit 1 }
}'

# Front-end capacity: the reactor must hold >=10x the sessions a
# thread-per-connection engine could at equal memory, with a clean run
# (zero error responses). The ratio is computed from the measured
# sustained concurrency and a fixed memory model (2 MiB stack/thread vs
# 48 KiB buffers/connection), so it is stable across runners. Platforms
# without epoll report reactor_supported:false and skip the gate.
httpd_supported="$(sed -nE 's/.*"reactor_supported":(true|false).*/\1/p' "$httpd_out")"
capacity="$(sed -nE 's/.*"capacity_ratio":([0-9.]+).*/\1/p' "$httpd_out")"
httpd_errors="$(sed -nE 's/.*"reactor":\{[^}]*"errors":([0-9]+).*/\1/p' "$httpd_out")"
if [ -z "$httpd_supported" ] || [ -z "$capacity" ] || [ -z "$httpd_errors" ]; then
    echo "FAIL: $httpd_out is missing reactor_supported, capacity_ratio or errors" >&2
    exit 1
fi
if [ "$httpd_supported" = "true" ]; then
    if [ "$httpd_errors" != "0" ]; then
        echo "FAIL: reactor load run had $httpd_errors error responses" >&2
        exit 1
    fi
    awk -v c="$capacity" 'BEGIN {
        if (c + 0 < 10.0) { print "FAIL: front-end capacity ratio " c "x below 10x" > "/dev/stderr"; exit 1 }
    }'
else
    echo "note: no epoll on this platform; skipping the front-end capacity gate"
fi

# Lock contention: breaking the global portal mutex must actually pay.
# Light-route p99 under concurrent heavy analyses improves >=5x over the
# global-lock baseline with zero error responses; the latency ratio is
# lock queueing, not raw speed, so it is stable across runners.
lock_errors="$(sed -nE 's/.*"light_p99_improvement":[0-9.]+,"errors":([0-9]+).*/\1/p' "$lock_out")"
improvement="$(sed -nE 's/.*"light_p99_improvement":([0-9.]+).*/\1/p' "$lock_out")"
if [ -z "$lock_errors" ] || [ -z "$improvement" ]; then
    echo "FAIL: $lock_out is missing light_p99_improvement or errors" >&2
    exit 1
fi
if [ "$lock_errors" != "0" ]; then
    echo "FAIL: contention run had $lock_errors error responses" >&2
    exit 1
fi
awk -v i="$improvement" 'BEGIN {
    if (i + 0 < 5.0) { print "FAIL: light-route p99 improvement " i "x below the 5x floor" > "/dev/stderr"; exit 1 }
}'

# Sanity: the acceptance floors (4-worker speedup >= 2x, cache hit rate
# >= 0.9) travel with the artifact; fail loudly if the datapoint regressed.
speedup="$(sed -nE 's/.*"speedup_4w":([0-9.]+).*/\1/p' "$out")"
hit_rate="$(sed -nE 's/.*"cache_hit_rate":([0-9.]+).*/\1/p' "$out")"
if [ -z "$speedup" ] || [ -z "$hit_rate" ]; then
    echo "FAIL: $out is missing speedup_4w or cache_hit_rate" >&2
    exit 1
fi
awk -v h="$hit_rate" 'BEGIN {
    if (h + 0 < 0.9) { print "FAIL: cache hit rate " h " below 0.9" > "/dev/stderr"; exit 1 }
}'
# The speedup floor only holds where 4 workers can actually run in
# parallel; on fewer cores the pool degrades gracefully and we just report.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -ge 4 ]; then
    awk -v s="$speedup" 'BEGIN {
        if (s + 0 < 2.0) { print "FAIL: 4-worker speedup " s " below 2.0x" > "/dev/stderr"; exit 1 }
    }'
else
    echo "note: only $cores core(s); skipping the 2x speedup assertion"
fi
# Telemetry must stay out of the hot path's way: the acceptance budget is
# <5% throughput overhead (negative overhead is run-to-run noise).
overhead="$(sed -nE 's/.*"overhead_pct":(-?[0-9.]+).*/\1/p' "$obs_out")"
if [ -z "$overhead" ]; then
    echo "FAIL: $obs_out is missing overhead_pct" >&2
    exit 1
fi
awk -v o="$overhead" 'BEGIN {
    if (o + 0 >= 5.0) { print "FAIL: telemetry overhead " o "% at or above the 5% budget" > "/dev/stderr"; exit 1 }
}'

# Diff the fresh run against the checked-in baselines. Only the
# machine-independent ratios are compared (raw schedules/sec depend on the
# runner); slack absorbs CI noise without letting a real regression slide.
if [ -n "$base_vm" ]; then
    awk -v s="$vm_speedup" -v b="$base_vm" 'BEGIN {
        if (s + 0 < b * 0.75) { print "FAIL: vm min_speedup " s " regressed >25% below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_hit" ]; then
    awk -v h="$hit_rate" -v b="$base_hit" 'BEGIN {
        if (h + 0 < b - 0.05) { print "FAIL: cache_hit_rate " h " fell >0.05 below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_speedup" ] && [ "$cores" -ge 4 ]; then
    awk -v s="$speedup" -v b="$base_speedup" 'BEGIN {
        if (s + 0 < b * 0.75) { print "FAIL: speedup_4w " s " regressed >25% below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_overhead" ]; then
    # Absolute-points tolerance: the metric is already a ratio, and single
    # digit swings are bench noise on shared runners.
    awk -v o="$overhead" -v b="$base_overhead" 'BEGIN {
        if (o + 0 > b + 4.0) { print "FAIL: telemetry overhead " o "% rose >4 points above baseline " b "%" > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_reduction" ]; then
    # Schedule counts are deterministic, so any drop below the committed
    # baseline is a real reduction regression, not noise.
    awk -v r="$reduction" -v b="$base_reduction" 'BEGIN {
        if (r + 0 < b - 0.01) { print "FAIL: DPOR min_reduction " r " fell below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_capacity" ] && [ "$httpd_supported" = "true" ]; then
    # The ratio only moves when sustained concurrency or the worker count
    # changes; 25% slack absorbs a session or two lost to runner hiccups.
    awk -v c="$capacity" -v b="$base_capacity" 'BEGIN {
        if (c + 0 < b * 0.75) { print "FAIL: front-end capacity_ratio " c " regressed >25% below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_improvement" ]; then
    # Queueing ratios wobble with runner load; halving is a real regression.
    awk -v i="$improvement" -v b="$base_improvement" 'BEGIN {
        if (i + 0 < b * 0.5) { print "FAIL: light_p99_improvement " i " regressed >50% below baseline " b > "/dev/stderr"; exit 1 }
    }'
fi
if [ -n "$base_vm$base_hit$base_speedup$base_overhead$base_reduction$base_capacity$base_improvement" ]; then
    echo "baseline diff OK (speedup_4w ${base_speedup:-n/a} -> ${speedup}, cache_hit_rate ${base_hit:-n/a} -> ${hit_rate}, vm_min_speedup ${base_vm:-n/a} -> ${vm_speedup}, obs_overhead ${base_overhead:-n/a}% -> ${overhead}%, dpor_min_reduction ${base_reduction:-n/a} -> ${reduction}, httpd_capacity ${base_capacity:-n/a} -> ${capacity}, lock_p99_improvement ${base_improvement:-n/a} -> ${improvement})"
else
    echo "note: no checked-in baseline found; skipping the regression diff"
fi
echo "OK: speedup_4w=${speedup}x, cache_hit_rate=${hit_rate}, vm_snapshot_min_speedup=${vm_speedup}x, obs_overhead=${overhead}%, dpor_min_reduction=${reduction}x, httpd_capacity_ratio=${capacity}x, lock_p99_improvement=${improvement}x (cores=$cores)"
echo "wrote $out, $vm_out, $obs_out, $dpor_out, $httpd_out and $lock_out"
