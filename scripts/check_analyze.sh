#!/usr/bin/env bash
# Validate a /api/analyze response: a known verdict class, sane exploration
# counters, and a non-empty repro schedule whenever the verdict is a
# failure. An expected verdict class can be asserted as the first argument.
#
# Usage: check_analyze.sh [expected-verdict] [file]
#        (reads stdin when no file is given)
set -euo pipefail

expected="${1:-}"
input="$(cat "${2:-/dev/stdin}")"

if [ -z "$input" ]; then
    echo "FAIL: analyze body is empty" >&2
    exit 1
fi

verdict="$(printf '%s' "$input" | sed -nE 's/.*"verdict":"([a-z_]+)".*/\1/p')"
schedules="$(printf '%s' "$input" | sed -nE 's/.*"schedules":([0-9]+).*/\1/p')"
steps="$(printf '%s' "$input" | sed -nE 's/.*"steps":([0-9]+).*/\1/p')"
repro="$(printf '%s' "$input" | sed -nE 's/.*"repro":\[([0-9, ]*)\].*/\1/p')"

case "$verdict" in
    clean|race|deadlock|livelock|runtime_error) ;;
    "")
        echo "FAIL: no verdict field in response: $input" >&2
        exit 1
        ;;
    *)
        echo "FAIL: unknown verdict class '$verdict'" >&2
        exit 1
        ;;
esac

if [ -n "$expected" ] && [ "$verdict" != "$expected" ]; then
    echo "FAIL: verdict '$verdict', expected '$expected'" >&2
    exit 1
fi

if [ -z "$schedules" ] || [ "$schedules" -lt 1 ]; then
    echo "FAIL: schedules explored must be >= 1 (got '${schedules:-none}')" >&2
    exit 1
fi
if [ -z "$steps" ] || [ "$steps" -lt 1 ]; then
    echo "FAIL: steps explored must be >= 1 (got '${steps:-none}')" >&2
    exit 1
fi

if [ "$verdict" != "clean" ] && [ -z "$repro" ]; then
    echo "FAIL: failure verdict '$verdict' carries no repro schedule" >&2
    exit 1
fi
if [ "$verdict" = "clean" ] && [ -n "$repro" ]; then
    echo "FAIL: clean verdict should not carry a repro schedule" >&2
    exit 1
fi

echo "OK: verdict=$verdict schedules=$schedules steps=$steps repro=[${repro}]"
