#!/usr/bin/env bash
# Validate a /api/metrics scrape: non-empty, Prometheus-text-shaped, and
# carrying at least one counter, gauge and histogram from each instrumented
# layer (httpd, sched, cluster).
#
# Usage: check_metrics.sh [file]    (reads stdin when no file is given)
set -euo pipefail

input="$(cat "${1:-/dev/stdin}")"

if [ -z "$input" ]; then
    echo "FAIL: metrics body is empty" >&2
    exit 1
fi

# Every line must be a comment or a `name{labels} value` sample.
bad_lines="$(printf '%s\n' "$input" \
    | grep -vE '^#' \
    | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$' || true)"
if [ -n "$bad_lines" ]; then
    echo "FAIL: malformed exposition lines:" >&2
    printf '%s\n' "$bad_lines" >&2
    exit 1
fi

# Comment lines must be HELP or TYPE records.
bad_comments="$(printf '%s\n' "$input" \
    | grep -E '^#' \
    | grep -vE '^# (HELP|TYPE) ccp_[a-z_]+ ' || true)"
if [ -n "$bad_comments" ]; then
    echo "FAIL: malformed comment lines:" >&2
    printf '%s\n' "$bad_comments" >&2
    exit 1
fi

# Each layer must expose all three metric kinds.
status=0
for layer in httpd sched cluster; do
    for kind in counter gauge histogram; do
        if ! printf '%s\n' "$input" | grep -qE "^# TYPE ccp_${layer}_[a-z_]+ ${kind}\$"; then
            echo "FAIL: no ${kind} from the ${layer} layer" >&2
            status=1
        fi
    done
done
[ "$status" -eq 0 ] || exit "$status"

# The parallel execution engine, compile cache, WAL and the reactor front
# end register their families eagerly, so a fresh scrape must already carry
# every one of them (the wal families appear even when the portal boots
# without a data dir; the httpd reactor families appear even before the
# first connection parks).
for family in \
    "ccp_httpd_open_connections gauge" \
    "ccp_httpd_keepalive_reuses_total counter" \
    "ccp_httpd_reactor_wakeups_total counter" \
    "ccp_httpd_tasks_parked gauge" \
    "ccp_pool_workers gauge" \
    "ccp_pool_tasks_total counter" \
    "ccp_pool_steals_total counter" \
    "ccp_pool_busy_us histogram" \
    "ccp_pool_idle_us histogram" \
    "ccp_vm_steps_total counter" \
    "ccp_vm_replay_steps_saved_total counter" \
    "ccp_checker_snapshots_total counter" \
    "ccp_checker_state_cache_hits_total counter" \
    "ccp_checker_state_cache_prunes_total counter" \
    "ccp_checker_dpor_backtracks_total counter" \
    "ccp_checker_dpor_pruned_siblings_total counter" \
    "ccp_checker_dpor_bound_pruned_total counter" \
    "ccp_compile_cache_hits_total counter" \
    "ccp_compile_cache_misses_total counter" \
    "ccp_compile_cache_evictions_total counter" \
    "ccp_compile_cache_entries gauge" \
    "ccp_wal_appends_total counter" \
    "ccp_wal_bytes_total counter" \
    "ccp_wal_fsyncs_total counter" \
    "ccp_wal_snapshots_total counter" \
    "ccp_wal_recoveries_total counter" \
    "ccp_wal_recovery_replay_us histogram" \
    "ccp_lock_wait_us histogram" \
    "ccp_slow_ops_total counter" \
    "ccp_slo_evaluations_total counter" \
    "ccp_slo_alerts_firing gauge" \
    "ccp_slo_transitions_total counter"; do
    if ! printf '%s\n' "$input" | grep -qF "# TYPE ${family}"; then
        echo "FAIL: missing family: ${family}" >&2
        status=1
    fi
done
[ "$status" -eq 0 ] || exit "$status"

# The contention profiler registers every site eagerly, so a fresh scrape
# must already carry the portal-lock series the contention gate reads —
# a renamed or dropped site would silently blind scripts/check_contention.sh.
for site in "portal.lock" "vfs.lock" "sched.tick" "wal.commit"; do
    if ! printf '%s\n' "$input" | grep -qF "ccp_lock_wait_us_count{site=\"${site}\"}"; then
        echo "FAIL: missing profiler series: ccp_lock_wait_us{site=\"${site}\"}" >&2
        status=1
    fi
done
[ "$status" -eq 0 ] || exit "$status"

samples="$(printf '%s\n' "$input" | grep -cvE '^#')"
families="$(printf '%s\n' "$input" | grep -cE '^# TYPE ')"
echo "OK: $families families, $samples samples, all layers covered"
