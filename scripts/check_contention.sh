#!/usr/bin/env bash
# Portal lock contention smoke: run the mixed heavy/light workload (a few
# students looping POST /api/analyze while others poll jobs/whoami/
# dashboard) over real sockets against both lock designs, then assert
#
#   * both runs are clean — zero error responses;
#   * breaking the global lock actually bought the scaling the design
#     doc claims: light-route p99 under concurrent analyses improves at
#     least 5x over the global-mutex baseline;
#   * the fine-grained design's own lock waits stay short — the
#     ccp_lock_wait_us{site="portal.lock"} p99 from the portal's registry
#     is at most 5ms, i.e. nobody queues behind a heavy operation.
#
# Usage: check_contention.sh [output.json]    (default
# BENCH_portal_lock.json is NOT overwritten here — pass a path to
# capture the datapoint)
set -euo pipefail

out="${1:-}"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
cargo run --release -p ccp-bench --example portal_lock 2>&1 | tee "$log"

line="$(grep -E '^BENCH_PORTAL_LOCK_JSON \{' "$log" | tail -n 1 || true)"
if [ -z "$line" ]; then
    echo "FAIL: portal_lock example did not print a BENCH_PORTAL_LOCK_JSON line" >&2
    exit 1
fi
json="${line#BENCH_PORTAL_LOCK_JSON }"
if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
fi

errors="$(printf '%s' "$json" | sed -nE 's/.*"light_p99_improvement":[0-9.]+,"errors":([0-9]+).*/\1/p')"
improvement="$(printf '%s' "$json" | sed -nE 's/.*"light_p99_improvement":([0-9.]+).*/\1/p')"
fine="$(printf '%s' "$json" | sed -nE 's/.*"fine":\{([^}]*)\}.*/\1/p')"
fine_lock_p99="$(printf '%s' "$fine" | sed -nE 's/.*"lock_wait_p99_us":([0-9.]+).*/\1/p')"
if [ -z "$errors" ] || [ -z "$improvement" ] || [ -z "$fine_lock_p99" ]; then
    echo "FAIL: BENCH_PORTAL_LOCK_JSON is missing errors, light_p99_improvement or lock_wait_p99_us" >&2
    exit 1
fi

status=0
if [ "$errors" != "0" ]; then
    echo "FAIL: contention run returned $errors error responses" >&2
    status=1
fi
awk -v i="$improvement" 'BEGIN {
    if (i + 0 < 5.0) { print "FAIL: light-route p99 improvement " i "x below the 5x floor" > "/dev/stderr"; exit 1 }
}' || status=1
# The histogram reports bucket upper edges; 5000us is the first edge that
# could only be reached by genuinely queueing behind heavy work.
awk -v p="$fine_lock_p99" 'BEGIN {
    if (p + 0 > 5000.0) { print "FAIL: fine-grained portal.lock wait p99 " p "us beyond the 5ms budget" > "/dev/stderr"; exit 1 }
}' || status=1
[ "$status" -eq 0 ] || exit "$status"

echo "OK: light-route p99 ${improvement}x better without the global lock, fine portal.lock p99 <= ${fine_lock_p99}us, 0 errors"
