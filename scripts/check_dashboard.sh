#!/usr/bin/env bash
# Dashboard + SLO smoke: boot the portal, verify /api/dashboard serves the
# windowed panels and the alert table, then induce a real queue-depth SLO
# breach over HTTP — flood the distributor with wide jobs, tick until the
# multi-window burn rate fires — and finally drain the backlog and verify
# the alert clears instead of latching.
#
# Usage: check_dashboard.sh [port]    (default 8145)
set -euo pipefail

port="${1:-8145}"
base="http://127.0.0.1:$port"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ]; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

cargo build --release --example portal_server
target/release/examples/portal_server "$port" &
server_pid=$!

for _ in $(seq 1 60); do
    if curl -sf "$base/api/health" >/dev/null 2>&1; then
        break
    fi
    sleep 1
done

tok="$(curl -sf -X POST "$base/api/login" \
    --data-binary '{"user":"admin","password":"change-me-please"}' \
    | sed -nE 's/.*"token":"([^"]+)".*/\1/p')"
if [ -z "$tok" ]; then
    echo "FAIL: could not log in" >&2
    exit 1
fi

# ---- quiet baseline: every panel present, every objective quiet ----------
dash="$(curl -sf "$base/api/dashboard")"
for key in '"queue_depth"' '"submitted"' '"wait_ticks"' '"p99"' '"alerts"'; do
    if ! printf '%s' "$dash" | grep -qF "$key"; then
        echo "FAIL: dashboard missing $key: $dash" >&2
        exit 1
    fi
done
# Objects render keys alphabetically: firing, since, slo, transitions.
for slo in queue-depth job-loss wait-p99; do
    if ! printf '%s' "$dash" | grep -qF "\"firing\":false,\"since\":null,\"slo\":\"$slo\""; then
        echo "FAIL: objective $slo missing or already firing: $dash" >&2
        exit 1
    fi
done

# ---- induce a breach: 60 jobs x 64 cores against 192 cluster cores -------
# Only three fit at once, so the ready queue holds far more than the
# 32-job objective while the burn-rate windows fill.
printf 'fn main() { return 7; }' \
    | curl -sf -X POST "$base/api/file?path=flood.mini" \
        -H "Cookie: sid=$tok" --data-binary @- >/dev/null
art="$(curl -sf -X POST "$base/api/compile?path=flood.mini" \
    -H "Cookie: sid=$tok" | sed -nE 's/.*"artifact":"([^"]+)".*/\1/p')"
if [ -z "$art" ]; then
    echo "FAIL: flood program did not compile" >&2
    exit 1
fi
for _ in $(seq 1 60); do
    curl -sf -X POST "$base/api/jobs" -H "Cookie: sid=$tok" \
        --data-binary '{"artifact":"'"$art"'","cores":64,"estimated_ticks":4}' \
        >/dev/null
done

fired=""
for i in $(seq 1 60); do
    curl -sf -X POST "$base/api/tick" -H "Cookie: sid=$tok" >/dev/null
    dash="$(curl -sf "$base/api/dashboard")"
    if printf '%s' "$dash" | grep -qE '"firing":true,"since":[0-9]+,"slo":"queue-depth"'; then
        fired="tick $i"
        break
    fi
done
if [ -z "$fired" ]; then
    echo "FAIL: queue-depth SLO never fired under a 60-job flood: $dash" >&2
    exit 1
fi
# The firing alert is mirrored into /api/health for probes.
if ! curl -sf "$base/api/health" \
    | grep -qE '"firing":true,"since":[0-9]+,"slo":"queue-depth"'; then
    echo "FAIL: firing alert not visible in /api/health" >&2
    exit 1
fi

# ---- drain and verify the alert clears (burn rate, not a latch) ----------
cleared=""
for _ in $(seq 1 300); do
    curl -sf -X POST "$base/api/tick" -H "Cookie: sid=$tok" >/dev/null
    dash="$(curl -sf "$base/api/dashboard")"
    if printf '%s' "$dash" | grep -qE '"firing":false,"since":[0-9]+,"slo":"queue-depth"'; then
        cleared=yes
        break
    fi
done
if [ -z "$cleared" ]; then
    echo "FAIL: queue-depth SLO still firing after drain: $dash" >&2
    exit 1
fi
transitions="$(printf '%s' "$dash" \
    | sed -nE 's/.*"firing":false,"since":[0-9]+,"slo":"queue-depth","transitions":([0-9]+).*/\1/p')"
if [ -z "$transitions" ] || [ "$transitions" -lt 2 ]; then
    echo "FAIL: expected >=2 transitions (fire + clear), got '${transitions:-none}': $dash" >&2
    exit 1
fi

echo "OK: dashboard served, queue-depth SLO fired ($fired) and cleared after drain ($transitions transitions)"
