//! The UMA/NUMA memory-access cost model — Lab 3's substrate.
//!
//! Lab 3 has students "use Pthread and MPI to simulate and evaluate the
//! access times to local shared memory and the access times to remote
//! memory": UMA among threads on one multi-core processor, NUMA when a
//! process reads data on a remote processor (§III.B). This module assigns a
//! [`MemoryDomain`] to every access and costs it:
//!
//! * `LocalCache`   — hit in the accessing core's cache;
//! * `LocalDram`    — same node, uniform access (the UMA case);
//! * `RemoteSocket` — another socket on the same node (on-node NUMA);
//! * `RemoteNode`   — another cluster node, paid through the network
//!   (message-passing NUMA, the case Lab 3 measures with MPI).

use crate::cache::{AccessKind, CacheSystem, CoherenceProtocol};
use simnet::{Network, NetworkError, NodeId, SimDuration};
use std::fmt;

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryDomain {
    /// The accessing core's own cache.
    LocalCache,
    /// DRAM attached to the accessing socket (UMA).
    LocalDram,
    /// DRAM attached to a different socket on the same node.
    RemoteSocket,
    /// Memory on a different cluster node, reached via the interconnect.
    RemoteNode,
}

impl fmt::Display for MemoryDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemoryDomain::LocalCache => "local-cache",
            MemoryDomain::LocalDram => "local-dram (UMA)",
            MemoryDomain::RemoteSocket => "remote-socket (NUMA)",
            MemoryDomain::RemoteNode => "remote-node (NUMA/MPI)",
        };
        f.write_str(s)
    }
}

/// Nanosecond costs per domain (excluding the network part of RemoteNode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaCostModel {
    /// Cache hit.
    pub cache_ns: u64,
    /// Local DRAM access.
    pub dram_ns: u64,
    /// Cross-socket access on one node.
    pub remote_socket_ns: u64,
    /// Software overhead of a remote (MPI) access on top of network time.
    pub remote_sw_overhead_ns: u64,
}

impl Default for NumaCostModel {
    fn default() -> Self {
        // Commodity 2010s numbers: ~1ns L1, ~80ns DRAM, ~130ns remote socket.
        NumaCostModel {
            cache_ns: 1,
            dram_ns: 80,
            remote_socket_ns: 130,
            remote_sw_overhead_ns: 2_000,
        }
    }
}

/// One costed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessReport {
    /// Where it was satisfied.
    pub domain: MemoryDomain,
    /// Total simulated time.
    pub time: SimDuration,
}

/// A node-local memory system: `sockets` sockets of `cores_per_socket`
/// cores, one coherent cache system per node, plus remote-node access via
/// a network reference.
#[derive(Debug)]
pub struct MemorySystem {
    sockets: usize,
    cores_per_socket: usize,
    /// Address space split: addresses are owned round-robin by socket
    /// (`(addr / interleave) % sockets`).
    interleave: u64,
    cost: NumaCostModel,
    caches: CacheSystem,
}

impl MemorySystem {
    /// A memory system with `sockets` x `cores_per_socket` cores and
    /// 4 KiB socket interleaving.
    pub fn new(sockets: usize, cores_per_socket: usize) -> MemorySystem {
        assert!(
            sockets >= 1 && cores_per_socket >= 1,
            "need at least one core"
        );
        MemorySystem {
            sockets,
            cores_per_socket,
            interleave: 4096,
            cost: NumaCostModel::default(),
            caches: CacheSystem::new(sockets * cores_per_socket, 64, CoherenceProtocol::Mesi),
        }
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: NumaCostModel) -> MemorySystem {
        self.cost = cost;
        self
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Which socket owns `addr`.
    pub fn home_socket(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.sockets as u64) as usize
    }

    /// Which socket a core sits on.
    pub fn socket_of_core(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// The coherent cache system (for inspecting coherence stats).
    pub fn caches(&self) -> &CacheSystem {
        &self.caches
    }

    /// Access local (on-node) memory from `core`; returns domain and time.
    ///
    /// A cache hit is `LocalCache` regardless of the line's home socket;
    /// misses pay DRAM or remote-socket cost depending on the home.
    pub fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> AccessReport {
        assert!(core < self.cores(), "core {core} out of range");
        let was_hit_state = self.caches.line_state(core, addr);
        let hit = match (kind, was_hit_state) {
            (AccessKind::Read, s) => s != crate::cache::LineState::Invalid,
            (AccessKind::Write, crate::cache::LineState::Modified)
            | (AccessKind::Write, crate::cache::LineState::Exclusive) => true,
            (AccessKind::Write, _) => false,
        };
        self.caches.access(core, addr, kind);
        if hit {
            return AccessReport {
                domain: MemoryDomain::LocalCache,
                time: SimDuration::from_nanos(self.cost.cache_ns),
            };
        }
        let home = self.home_socket(addr);
        if home == self.socket_of_core(core) {
            AccessReport {
                domain: MemoryDomain::LocalDram,
                time: SimDuration::from_nanos(self.cost.dram_ns),
            }
        } else {
            AccessReport {
                domain: MemoryDomain::RemoteSocket,
                time: SimDuration::from_nanos(self.cost.remote_socket_ns),
            }
        }
    }

    /// Access memory living on a *different cluster node*: the MPI-style
    /// NUMA case. Pays request+response network messages plus software
    /// overhead; `bytes` is the payload pulled or pushed.
    pub fn access_remote_node(
        &self,
        net: &Network,
        from: NodeId,
        owner: NodeId,
        bytes: u64,
        kind: AccessKind,
    ) -> Result<AccessReport, NetworkError> {
        // Request carries the address (small); response carries data for
        // reads. Writes push data out and get a small ack back.
        let (req_bytes, resp_bytes) = match kind {
            AccessKind::Read => (64, bytes.max(1)),
            AccessKind::Write => (bytes.max(1), 64),
        };
        let req = net.message_cost(from, owner, req_bytes)?;
        let resp = net.message_cost(owner, from, resp_bytes)?;
        let time =
            req.total + resp.total + SimDuration::from_nanos(self.cost.remote_sw_overhead_ns);
        Ok(AccessReport {
            domain: MemoryDomain::RemoteNode,
            time,
        })
    }

    /// Convenience: sweep `n` sequential word accesses from `core` starting
    /// at `base`, returning mean nanoseconds per access. Used by Lab 3 and
    /// the `uma_numa` bench.
    pub fn sweep(
        &mut self,
        core: usize,
        base: u64,
        n: usize,
        stride: u64,
        kind: AccessKind,
    ) -> f64 {
        let mut total = 0u64;
        for i in 0..n {
            let r = self.access(core, base + i as u64 * stride, kind);
            total += r.time.nanos();
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{LinkProfile, Topology};

    #[test]
    fn cache_hit_after_first_touch() {
        let mut m = MemorySystem::new(1, 2);
        let first = m.access(0, 0x0, AccessKind::Read);
        let second = m.access(0, 0x8, AccessKind::Read); // same 64B line
        assert_eq!(first.domain, MemoryDomain::LocalDram);
        assert_eq!(second.domain, MemoryDomain::LocalCache);
        assert!(second.time < first.time);
    }

    #[test]
    fn remote_socket_costs_more_than_local() {
        let mut m = MemorySystem::new(2, 2);
        // Address homed on socket 1, accessed from core 0 (socket 0).
        let addr_remote = 4096;
        let addr_local = 0;
        assert_eq!(m.home_socket(addr_remote), 1);
        assert_eq!(m.home_socket(addr_local), 0);
        let remote = m.access(0, addr_remote, AccessKind::Read);
        let local = m.access(0, addr_local, AccessKind::Read);
        assert_eq!(remote.domain, MemoryDomain::RemoteSocket);
        assert_eq!(local.domain, MemoryDomain::LocalDram);
        assert!(remote.time > local.time);
    }

    #[test]
    fn write_to_shared_line_is_not_a_hit() {
        let mut m = MemorySystem::new(1, 2);
        m.access(0, 0, AccessKind::Read);
        m.access(1, 0, AccessKind::Read); // both Shared now
        let w = m.access(0, 0, AccessKind::Write); // upgrade: pays DRAM-class cost
        assert_ne!(w.domain, MemoryDomain::LocalCache);
    }

    #[test]
    fn remote_node_dwarfs_local() {
        let m = MemorySystem::new(1, 2);
        let net = Network::new(
            Topology::segmented_cluster(2, 2),
            LinkProfile::gigabit_ethernet(),
        );
        let a = net.topology().segment_slave(0, 0).unwrap();
        let b = net.topology().segment_slave(1, 0).unwrap();
        let r = m
            .access_remote_node(&net, a, b, 4096, AccessKind::Read)
            .unwrap();
        assert_eq!(r.domain, MemoryDomain::RemoteNode);
        // Four hops of 50µs latency each way: far above the 80ns DRAM cost.
        assert!(r.time.nanos() > 100_000);
    }

    #[test]
    fn remote_write_costs_similar_shape() {
        let m = MemorySystem::new(1, 1);
        let net = Network::new(Topology::ring(4), LinkProfile::new(1_000, 1 << 30));
        let rd = m
            .access_remote_node(&net, 0, 2, 1 << 20, AccessKind::Read)
            .unwrap();
        let wr = m
            .access_remote_node(&net, 0, 2, 1 << 20, AccessKind::Write)
            .unwrap();
        // Read pulls the megabyte back, write pushes it out: equal payloads.
        assert_eq!(rd.time, wr.time);
    }

    #[test]
    fn sweep_mean_reflects_caching() {
        let mut m = MemorySystem::new(1, 1);
        // 64 accesses with stride 8 touch 8 lines: 8 misses + 56 hits.
        let mean = m.sweep(0, 0, 64, 8, AccessKind::Read);
        let expect = (8.0 * 80.0 + 56.0 * 1.0) / 64.0;
        assert!((mean - expect).abs() < 1e-9, "mean {mean} vs {expect}");
    }

    #[test]
    fn sweep_empty_is_zero() {
        let mut m = MemorySystem::new(1, 1);
        assert_eq!(m.sweep(0, 0, 0, 8, AccessKind::Read), 0.0);
    }
}
