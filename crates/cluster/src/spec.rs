//! Cluster specifications: what hardware exists before we turn it on.
//!
//! The paper's cluster "has four segments, composed of different types of
//! computers acquired in different times" (§I), with "duo-core and quad-core
//! machines and a GPU machine" (§III.B). [`ClusterSpec::uhd`] reproduces
//! that: four heterogeneous segments, one of which hosts the accelerator.

use simnet::{LinkProfile, Network, Topology};

/// The broad class of a node, which fixes its default core count and clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// A dual-core compute node (the older segments).
    DuoCore,
    /// A quad-core compute node (the newer segments).
    QuadCore,
    /// The SIMD accelerator ("GPU machine").
    Accelerator,
    /// A segment master or the grid head node: schedulable for service work
    /// only, not for compute jobs.
    Master,
}

impl NodeClass {
    /// Default number of schedulable cores for the class.
    pub fn default_cores(self) -> u32 {
        match self {
            NodeClass::DuoCore => 2,
            NodeClass::QuadCore => 4,
            NodeClass::Accelerator => 4,
            NodeClass::Master => 0,
        }
    }

    /// Nominal clock in MHz, used by the compute cost model.
    pub fn clock_mhz(self) -> u32 {
        match self {
            NodeClass::DuoCore => 2_000,
            NodeClass::QuadCore => 2_600,
            NodeClass::Accelerator => 1_200,
            NodeClass::Master => 2_000,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NodeClass::DuoCore => "duo-core",
            NodeClass::QuadCore => "quad-core",
            NodeClass::Accelerator => "accelerator",
            NodeClass::Master => "master",
        }
    }
}

/// Specification of one physical node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Node class (duo/quad/accelerator/master).
    pub class: NodeClass,
    /// Schedulable cores.
    pub cores: u32,
    /// Main memory in MiB.
    pub memory_mib: u64,
}

impl NodeSpec {
    /// A node of `class` with its class defaults.
    pub fn of_class(class: NodeClass) -> NodeSpec {
        let memory_mib = match class {
            NodeClass::DuoCore => 2_048,
            NodeClass::QuadCore => 8_192,
            NodeClass::Accelerator => 4_096,
            NodeClass::Master => 16_384,
        };
        NodeSpec {
            class,
            cores: class.default_cores(),
            memory_mib,
        }
    }
}

/// Specification of one segment: a master plus its slave nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Human-readable segment name ("segment-0", ...).
    pub name: String,
    /// Slave node specs, in slot order.
    pub slaves: Vec<NodeSpec>,
}

impl SegmentSpec {
    /// A homogeneous segment of `n` slaves of `class`.
    pub fn homogeneous(name: impl Into<String>, class: NodeClass, n: usize) -> SegmentSpec {
        SegmentSpec {
            name: name.into(),
            slaves: vec![NodeSpec::of_class(class); n],
        }
    }
}

/// Specification of the whole cluster (grid head implied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Cluster display name.
    pub name: String,
    /// The segments, in id order.
    pub segments: Vec<SegmentSpec>,
    /// Link profile within a segment (slave <-> master).
    pub intra_segment_link: LinkProfile,
    /// Link profile between segment masters and the grid head.
    pub uplink: LinkProfile,
}

impl ClusterSpec {
    /// The UHD cluster from the paper: four 16-slave segments (two duo-core,
    /// two quad-core), with one accelerator replacing the last slave of the
    /// final segment. 69 nodes total.
    pub fn uhd() -> ClusterSpec {
        let mut segments = vec![
            SegmentSpec::homogeneous("segment-0", NodeClass::DuoCore, 16),
            SegmentSpec::homogeneous("segment-1", NodeClass::DuoCore, 16),
            SegmentSpec::homogeneous("segment-2", NodeClass::QuadCore, 16),
            SegmentSpec::homogeneous("segment-3", NodeClass::QuadCore, 16),
        ];
        let last = segments[3].slaves.len() - 1;
        segments[3].slaves[last] = NodeSpec::of_class(NodeClass::Accelerator);
        ClusterSpec {
            name: "uhd-grid".to_string(),
            segments,
            intra_segment_link: LinkProfile::backplane(),
            uplink: LinkProfile::campus_uplink(),
        }
    }

    /// A small homogeneous cluster for tests: `segments` x `slaves` quad-cores.
    pub fn small(segments: usize, slaves: usize) -> ClusterSpec {
        ClusterSpec {
            name: "test-cluster".to_string(),
            segments: (0..segments)
                .map(|i| {
                    SegmentSpec::homogeneous(format!("segment-{i}"), NodeClass::QuadCore, slaves)
                })
                .collect(),
            intra_segment_link: LinkProfile::backplane(),
            uplink: LinkProfile::campus_uplink(),
        }
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Maximum slave count across segments (the topology is built with this
    /// uniform width; missing slots are marked permanently down).
    pub fn max_slaves(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.slaves.len())
            .max()
            .unwrap_or(0)
    }

    /// Total slave nodes.
    pub fn total_slaves(&self) -> usize {
        self.segments.iter().map(|s| s.slaves.len()).sum()
    }

    /// Total schedulable cores across all slaves.
    pub fn total_cores(&self) -> u32 {
        self.segments
            .iter()
            .flat_map(|s| &s.slaves)
            .map(|n| n.cores)
            .sum()
    }

    /// Build the simnet [`Network`] matching this spec, with tiered link
    /// profiles (intra-segment vs uplink).
    pub fn build_network(&self) -> Network {
        let topo =
            Topology::segmented_cluster(self.segment_count().max(1), self.max_slaves().max(1));
        let mut net = Network::new(topo, self.intra_segment_link);
        let masters: Vec<usize> = net.topology().neighbors(0);
        for m in masters {
            net.set_link_profile(0, m, self.uplink);
            net.set_link_profile(m, 0, self.uplink);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uhd_matches_paper_shape() {
        let s = ClusterSpec::uhd();
        assert_eq!(s.segment_count(), 4);
        assert_eq!(s.total_slaves(), 64);
        // 2 segments x 16 x 2 cores + 1 segment x 16 x 4 + (15 x 4 + 4 accel)
        assert_eq!(s.total_cores(), 64 + 64 + 64);
        let accel: Vec<_> = s
            .segments
            .iter()
            .flat_map(|seg| &seg.slaves)
            .filter(|n| n.class == NodeClass::Accelerator)
            .collect();
        assert_eq!(accel.len(), 1);
    }

    #[test]
    fn network_layout_matches_spec() {
        let s = ClusterSpec::uhd();
        let net = s.build_network();
        assert_eq!(net.topology().len(), 69);
        assert!(net.is_cluster_fabric());
    }

    #[test]
    fn class_defaults() {
        assert_eq!(NodeClass::DuoCore.default_cores(), 2);
        assert_eq!(NodeClass::QuadCore.default_cores(), 4);
        assert_eq!(NodeClass::Master.default_cores(), 0);
        assert_eq!(NodeSpec::of_class(NodeClass::QuadCore).memory_mib, 8_192);
    }

    #[test]
    fn small_cluster_helper() {
        let s = ClusterSpec::small(2, 3);
        assert_eq!(s.total_slaves(), 6);
        assert_eq!(s.total_cores(), 24);
        assert_eq!(s.build_network().topology().len(), 1 + 2 * 4);
    }
}
