//! # cluster — the simulated compute cluster
//!
//! A software model of the hardware the paper's portal fronts: four segments
//! of sixteen slave nodes each plus segment masters and a grid head node,
//! with "duo-core and quad-core machines and a GPU machine" (§III.B).
//!
//! The crate provides:
//!
//! * [`spec`] — node/segment/cluster specifications and the UHD default;
//! * [`machine`] — the live cluster: node state, core allocation, utilization;
//! * [`cache`] — a MESI (and write-through, for ablation) cache-coherence
//!   simulator with invalidation/traffic counters (Lab 2's substrate);
//! * [`memory`] — the UMA/NUMA memory-access cost model (Lab 3's substrate);
//! * [`accel`] — a SIMD accelerator ("GPU machine") kernel cost model;
//! * [`faults`] — failure injection for scheduler robustness tests.
//!
//! ```
//! use cluster::prelude::*;
//!
//! let spec = ClusterSpec::uhd();
//! let mut cluster = Cluster::new(spec);
//! assert_eq!(cluster.total_nodes(), 69);     // 1 head + 4*(1+16)
//! assert!(cluster.total_cores() > 0);
//! let alloc = cluster.allocate_cores(8).unwrap();
//! cluster.release(&alloc);
//! ```

pub mod accel;
pub mod cache;
pub mod faults;
pub mod machine;
pub mod memory;
pub mod spec;

/// Common re-exports.
pub mod prelude {
    pub use crate::accel::{Accelerator, KernelProfile};
    pub use crate::cache::{AccessKind, CacheSystem, CoherenceProtocol, CoherenceStats, LineState};
    pub use crate::faults::{FaultEvent, FaultPlan, FaultedCluster};
    pub use crate::machine::{Allocation, Cluster, ClusterError, NodeHealth, SlaveId};
    pub use crate::memory::{MemoryDomain, MemorySystem, NumaCostModel};
    pub use crate::spec::{ClusterSpec, NodeClass, NodeSpec, SegmentSpec};
}

pub use prelude::*;
