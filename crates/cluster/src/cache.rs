//! Cache-coherence simulation: MESI and write-through protocols.
//!
//! Lab 2 ("Spin Lock and Cache Coherence") has students "simulate cache
//! invalidation and updating using TAS Lock" — each thread holds a local
//! copy of a shared variable and the lock protocol forces invalidations.
//! This module is the underlying machine: per-core caches tracked at line
//! granularity, a snooping bus, and full MESI state transitions with
//! counters for every coherence event, plus a write-through protocol for the
//! ablation bench.
//!
//! The model is trace-driven: callers replay a sequence of
//! `(core, address, read/write)` accesses and inspect latency and traffic.

use std::collections::HashMap;
use std::fmt;

/// Coherence state of one cache line (MESI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Dirty and exclusive to one cache.
    Modified,
    /// Clean and exclusive to one cache.
    Exclusive,
    /// Clean, possibly in several caches.
    Shared,
    /// Not present / invalidated.
    Invalid,
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            LineState::Modified => 'M',
            LineState::Exclusive => 'E',
            LineState::Shared => 'S',
            LineState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (includes the write half of an atomic RMW).
    Write,
}

/// Which protocol the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceProtocol {
    /// Full MESI invalidation protocol.
    Mesi,
    /// Write-through/no-allocate-on-write: every store goes to memory and
    /// invalidates remote copies; reads allocate Shared. Used as the
    /// ablation baseline the MESI design is compared against.
    WriteThrough,
}

/// Aggregate coherence event counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Loads that hit in the local cache.
    pub read_hits: u64,
    /// Loads that missed.
    pub read_misses: u64,
    /// Stores that hit a writable (M/E) line.
    pub write_hits: u64,
    /// Stores that missed or needed an upgrade.
    pub write_misses: u64,
    /// Remote lines invalidated by our stores.
    pub invalidations: u64,
    /// Dirty lines written back to memory (eviction or remote read of M).
    pub writebacks: u64,
    /// Lines supplied cache-to-cache instead of from memory.
    pub interventions: u64,
    /// Bus transactions issued (BusRd + BusRdX + BusUpgr + write-throughs).
    pub bus_transactions: u64,
}

impl CoherenceStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Hit rate over all accesses (1.0 for an empty trace).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            return 1.0;
        }
        (self.read_hits + self.write_hits) as f64 / total as f64
    }
}

/// Access latencies in cycles, tunable per machine class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLatency {
    /// Local cache hit.
    pub hit_cycles: u64,
    /// Cache-to-cache transfer.
    pub intervention_cycles: u64,
    /// Memory access (miss satisfied from DRAM).
    pub memory_cycles: u64,
}

impl Default for CacheLatency {
    fn default() -> Self {
        // Typical 2010s commodity numbers: L1 ~2 cycles, snoop ~40, DRAM ~200.
        CacheLatency {
            hit_cycles: 2,
            intervention_cycles: 40,
            memory_cycles: 200,
        }
    }
}

/// A multi-core cache system with a snooping bus.
///
/// ```
/// use cluster::cache::{AccessKind, CacheSystem, CoherenceProtocol};
///
/// let mut sys = CacheSystem::new(4, 64, CoherenceProtocol::Mesi);
/// sys.access(0, 0x1000, AccessKind::Write); // core 0 owns the line (M)
/// sys.access(1, 0x1000, AccessKind::Read);  // core 1 pulls it Shared
/// sys.access(0, 0x1000, AccessKind::Write); // invalidates core 1's copy
/// assert_eq!(sys.stats().invalidations, 1);
/// ```
#[derive(Debug)]
pub struct CacheSystem {
    cores: usize,
    line_size: u64,
    protocol: CoherenceProtocol,
    latency: CacheLatency,
    /// line address -> per-core state (absent entries are Invalid).
    lines: HashMap<u64, Vec<LineState>>,
    stats: CoherenceStats,
    metrics: Option<CacheMetrics>,
}

/// Registry counters mirroring [`CoherenceStats`], labeled by segment.
#[derive(Debug, Clone)]
struct CacheMetrics {
    read_hits: obs::Counter,
    read_misses: obs::Counter,
    write_hits: obs::Counter,
    write_misses: obs::Counter,
    invalidations: obs::Counter,
    writebacks: obs::Counter,
    interventions: obs::Counter,
    bus_transactions: obs::Counter,
}

impl CacheMetrics {
    fn new(o: &obs::Obs, segment: &str) -> CacheMetrics {
        let m = &o.metrics;
        m.describe(
            "ccp_cluster_cache_hits_total",
            "cache hits by access kind and segment",
        );
        m.describe(
            "ccp_cluster_cache_misses_total",
            "cache misses by access kind and segment",
        );
        m.describe(
            "ccp_cluster_cache_invalidations_total",
            "coherence invalidations by segment",
        );
        m.describe(
            "ccp_cluster_cache_writebacks_total",
            "dirty-line writebacks by segment",
        );
        m.describe(
            "ccp_cluster_cache_interventions_total",
            "cache-to-cache transfers by segment",
        );
        m.describe(
            "ccp_cluster_cache_bus_transactions_total",
            "snoop bus transactions by segment",
        );
        let s = segment;
        CacheMetrics {
            read_hits: m.counter(
                "ccp_cluster_cache_hits_total",
                &[("kind", "read"), ("segment", s)],
            ),
            read_misses: m.counter(
                "ccp_cluster_cache_misses_total",
                &[("kind", "read"), ("segment", s)],
            ),
            write_hits: m.counter(
                "ccp_cluster_cache_hits_total",
                &[("kind", "write"), ("segment", s)],
            ),
            write_misses: m.counter(
                "ccp_cluster_cache_misses_total",
                &[("kind", "write"), ("segment", s)],
            ),
            invalidations: m.counter("ccp_cluster_cache_invalidations_total", &[("segment", s)]),
            writebacks: m.counter("ccp_cluster_cache_writebacks_total", &[("segment", s)]),
            interventions: m.counter("ccp_cluster_cache_interventions_total", &[("segment", s)]),
            bus_transactions: m.counter(
                "ccp_cluster_cache_bus_transactions_total",
                &[("segment", s)],
            ),
        }
    }

    /// Forward the stat movement from one access onto the registry.
    fn apply_delta(&self, before: &CoherenceStats, after: &CoherenceStats) {
        self.read_hits.add(after.read_hits - before.read_hits);
        self.read_misses.add(after.read_misses - before.read_misses);
        self.write_hits.add(after.write_hits - before.write_hits);
        self.write_misses
            .add(after.write_misses - before.write_misses);
        self.invalidations
            .add(after.invalidations - before.invalidations);
        self.writebacks.add(after.writebacks - before.writebacks);
        self.interventions
            .add(after.interventions - before.interventions);
        self.bus_transactions
            .add(after.bus_transactions - before.bus_transactions);
    }
}

impl CacheSystem {
    /// A system of `cores` caches with `line_size`-byte lines (power of two).
    pub fn new(cores: usize, line_size: u64, protocol: CoherenceProtocol) -> CacheSystem {
        assert!(cores >= 1, "need at least one core");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheSystem {
            cores,
            line_size,
            protocol,
            latency: CacheLatency::default(),
            lines: HashMap::new(),
            stats: CoherenceStats::default(),
            metrics: None,
        }
    }

    /// Override the latency model.
    pub fn with_latency(mut self, latency: CacheLatency) -> CacheSystem {
        self.latency = latency;
        self
    }

    /// Mirror this system's coherence stats into a metrics registry, labeled
    /// with `segment` (e.g. `"0"`, or a lab name for standalone systems).
    pub fn attach_obs(&mut self, obs: &obs::Obs, segment: &str) {
        self.metrics = Some(CacheMetrics::new(obs, segment));
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Reset statistics, keeping cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CoherenceStats::default();
    }

    /// Current state of `addr`'s line in `core`'s cache.
    pub fn line_state(&self, core: usize, addr: u64) -> LineState {
        let line = addr & !(self.line_size - 1);
        self.lines
            .get(&line)
            .map(|v| v[core])
            .unwrap_or(LineState::Invalid)
    }

    /// Perform one access, returning its latency in cycles.
    ///
    /// Panics if `core` is out of range (programming error, not input error).
    pub fn access(&mut self, core: usize, addr: u64, kind: AccessKind) -> u64 {
        assert!(core < self.cores, "core {core} out of range");
        let line = addr & !(self.line_size - 1);
        let states = self
            .lines
            .entry(line)
            .or_insert_with(|| vec![LineState::Invalid; self.cores]);
        let before = self.metrics.as_ref().map(|_| self.stats.clone());
        let latency = match self.protocol {
            CoherenceProtocol::Mesi => {
                Self::access_mesi(states, core, kind, &mut self.stats, self.latency)
            }
            CoherenceProtocol::WriteThrough => {
                Self::access_wt(states, core, kind, &mut self.stats, self.latency)
            }
        };
        if let (Some(m), Some(before)) = (&self.metrics, before) {
            m.apply_delta(&before, &self.stats);
        }
        latency
    }

    fn access_mesi(
        states: &mut [LineState],
        core: usize,
        kind: AccessKind,
        stats: &mut CoherenceStats,
        lat: CacheLatency,
    ) -> u64 {
        let mine = states[core];
        match (kind, mine) {
            (AccessKind::Read, LineState::Modified)
            | (AccessKind::Read, LineState::Exclusive)
            | (AccessKind::Read, LineState::Shared) => {
                stats.read_hits += 1;
                lat.hit_cycles
            }
            (AccessKind::Read, LineState::Invalid) => {
                stats.read_misses += 1;
                stats.bus_transactions += 1; // BusRd
                let mut supplied_by_cache = false;
                for (i, s) in states.iter_mut().enumerate() {
                    if i == core {
                        continue;
                    }
                    match *s {
                        LineState::Modified => {
                            // Owner writes back and downgrades to Shared.
                            stats.writebacks += 1;
                            stats.interventions += 1;
                            *s = LineState::Shared;
                            supplied_by_cache = true;
                        }
                        LineState::Exclusive => {
                            stats.interventions += 1;
                            *s = LineState::Shared;
                            supplied_by_cache = true;
                        }
                        LineState::Shared => supplied_by_cache = true,
                        LineState::Invalid => {}
                    }
                }
                let anyone_else = states
                    .iter()
                    .enumerate()
                    .any(|(i, s)| i != core && *s != LineState::Invalid);
                states[core] = if anyone_else {
                    LineState::Shared
                } else {
                    LineState::Exclusive
                };
                if supplied_by_cache {
                    lat.intervention_cycles
                } else {
                    lat.memory_cycles
                }
            }
            (AccessKind::Write, LineState::Modified) => {
                stats.write_hits += 1;
                lat.hit_cycles
            }
            (AccessKind::Write, LineState::Exclusive) => {
                // Silent upgrade E -> M, no bus traffic.
                stats.write_hits += 1;
                states[core] = LineState::Modified;
                lat.hit_cycles
            }
            (AccessKind::Write, LineState::Shared) => {
                // BusUpgr: invalidate all other copies.
                stats.write_misses += 1;
                stats.bus_transactions += 1;
                for (i, s) in states.iter_mut().enumerate() {
                    if i != core && *s != LineState::Invalid {
                        *s = LineState::Invalid;
                        stats.invalidations += 1;
                    }
                }
                states[core] = LineState::Modified;
                lat.hit_cycles
            }
            (AccessKind::Write, LineState::Invalid) => {
                // BusRdX: fetch with intent to modify, invalidating everywhere.
                stats.write_misses += 1;
                stats.bus_transactions += 1;
                let mut supplied_by_cache = false;
                for (i, s) in states.iter_mut().enumerate() {
                    if i == core {
                        continue;
                    }
                    match *s {
                        LineState::Modified => {
                            stats.writebacks += 1;
                            stats.interventions += 1;
                            supplied_by_cache = true;
                            *s = LineState::Invalid;
                            stats.invalidations += 1;
                        }
                        LineState::Exclusive | LineState::Shared => {
                            if *s == LineState::Exclusive {
                                stats.interventions += 1;
                                supplied_by_cache = true;
                            }
                            *s = LineState::Invalid;
                            stats.invalidations += 1;
                        }
                        LineState::Invalid => {}
                    }
                }
                states[core] = LineState::Modified;
                if supplied_by_cache {
                    lat.intervention_cycles
                } else {
                    lat.memory_cycles
                }
            }
        }
    }

    fn access_wt(
        states: &mut [LineState],
        core: usize,
        kind: AccessKind,
        stats: &mut CoherenceStats,
        lat: CacheLatency,
    ) -> u64 {
        match kind {
            AccessKind::Read => {
                if states[core] != LineState::Invalid {
                    stats.read_hits += 1;
                    lat.hit_cycles
                } else {
                    stats.read_misses += 1;
                    stats.bus_transactions += 1;
                    states[core] = LineState::Shared;
                    lat.memory_cycles
                }
            }
            AccessKind::Write => {
                // Every store goes to memory and invalidates remote copies.
                stats.bus_transactions += 1;
                if states[core] != LineState::Invalid {
                    stats.write_hits += 1;
                } else {
                    stats.write_misses += 1;
                }
                for (i, s) in states.iter_mut().enumerate() {
                    if i != core && *s != LineState::Invalid {
                        *s = LineState::Invalid;
                        stats.invalidations += 1;
                    }
                }
                states[core] = LineState::Shared; // written through, stays clean
                lat.memory_cycles
            }
        }
    }

    /// Run a trace of `(core, addr, kind)` accesses, returning total cycles.
    pub fn run_trace<I>(&mut self, trace: I) -> u64
    where
        I: IntoIterator<Item = (usize, u64, AccessKind)>,
    {
        trace
            .into_iter()
            .map(|(c, a, k)| self.access(c, a, k))
            .sum()
    }

    /// MESI invariant: a Modified or Exclusive line has no other valid copy.
    /// Exposed for property tests.
    pub fn check_invariants(&self) -> bool {
        self.lines.values().all(|states| {
            let exclusive_like = states
                .iter()
                .filter(|s| matches!(s, LineState::Modified | LineState::Exclusive))
                .count();
            let valid = states.iter().filter(|s| **s != LineState::Invalid).count();
            exclusive_like == 0 || (exclusive_like == 1 && valid == 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        let lat = sys.access(0, 0x40, AccessKind::Read);
        assert_eq!(sys.line_state(0, 0x40), LineState::Exclusive);
        assert_eq!(lat, CacheLatency::default().memory_cycles);
        assert!(sys.check_invariants());
    }

    #[test]
    fn second_reader_shares() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0, AccessKind::Read);
        let lat = sys.access(1, 0, AccessKind::Read);
        assert_eq!(sys.line_state(0, 0), LineState::Shared);
        assert_eq!(sys.line_state(1, 0), LineState::Shared);
        // Supplied cache-to-cache from the Exclusive owner.
        assert_eq!(lat, CacheLatency::default().intervention_cycles);
        assert_eq!(sys.stats().interventions, 1);
    }

    #[test]
    fn write_to_shared_invalidates() {
        let mut sys = CacheSystem::new(4, 64, CoherenceProtocol::Mesi);
        for c in 0..4 {
            sys.access(c, 0, AccessKind::Read);
        }
        sys.access(2, 0, AccessKind::Write);
        assert_eq!(sys.line_state(2, 0), LineState::Modified);
        for c in [0usize, 1, 3] {
            assert_eq!(sys.line_state(c, 0), LineState::Invalid);
        }
        assert_eq!(sys.stats().invalidations, 3);
        assert!(sys.check_invariants());
    }

    #[test]
    fn silent_e_to_m_upgrade() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0, AccessKind::Read); // E
        let bus_before = sys.stats().bus_transactions;
        sys.access(0, 0, AccessKind::Write); // E -> M silently
        assert_eq!(sys.line_state(0, 0), LineState::Modified);
        assert_eq!(sys.stats().bus_transactions, bus_before);
    }

    #[test]
    fn remote_read_of_modified_forces_writeback() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0, AccessKind::Write); // M in core 0
        sys.access(1, 0, AccessKind::Read);
        assert_eq!(sys.stats().writebacks, 1);
        assert_eq!(sys.line_state(0, 0), LineState::Shared);
        assert_eq!(sys.line_state(1, 0), LineState::Shared);
    }

    #[test]
    fn remote_write_of_modified_invalidates_owner() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0, AccessKind::Write);
        sys.access(1, 0, AccessKind::Write);
        assert_eq!(sys.line_state(0, 0), LineState::Invalid);
        assert_eq!(sys.line_state(1, 0), LineState::Modified);
        assert_eq!(sys.stats().invalidations, 1);
        assert_eq!(sys.stats().writebacks, 1);
    }

    #[test]
    fn same_line_aliasing() {
        let mut sys = CacheSystem::new(1, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0x100, AccessKind::Read);
        // 0x13F is in the same 64-byte line as 0x100.
        let lat = sys.access(0, 0x13F, AccessKind::Read);
        assert_eq!(lat, CacheLatency::default().hit_cycles);
        assert_eq!(sys.stats().read_hits, 1);
    }

    #[test]
    fn ping_pong_writes_generate_traffic() {
        // The Lab 2 pathology: two cores alternately writing one flag.
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        for i in 0..100 {
            sys.access(i % 2, 0, AccessKind::Write);
        }
        // Every write after the first misses and invalidates the other copy.
        assert_eq!(sys.stats().invalidations, 99);
        assert!(sys.stats().hit_rate() < 0.05);
    }

    #[test]
    fn write_through_generates_more_bus_traffic() {
        let trace: Vec<(usize, u64, AccessKind)> = (0..1000)
            .map(|i| {
                (
                    i % 4,
                    (i as u64 % 8) * 64,
                    if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                )
            })
            .collect();
        let mut mesi = CacheSystem::new(4, 64, CoherenceProtocol::Mesi);
        let mut wt = CacheSystem::new(4, 64, CoherenceProtocol::WriteThrough);
        mesi.run_trace(trace.clone());
        wt.run_trace(trace);
        assert!(
            wt.stats().bus_transactions > mesi.stats().bus_transactions,
            "write-through {} <= MESI {}",
            wt.stats().bus_transactions,
            mesi.stats().bus_transactions
        );
    }

    #[test]
    fn stats_reset_preserves_contents() {
        let mut sys = CacheSystem::new(2, 64, CoherenceProtocol::Mesi);
        sys.access(0, 0, AccessKind::Write);
        sys.reset_stats();
        assert_eq!(sys.stats().accesses(), 0);
        assert_eq!(sys.line_state(0, 0), LineState::Modified);
    }

    #[test]
    fn hit_rate_empty_trace() {
        let sys = CacheSystem::new(1, 64, CoherenceProtocol::Mesi);
        assert_eq!(sys.stats().hit_rate(), 1.0);
    }

    #[test]
    fn obs_mirrors_coherence_stats() {
        let obs = obs::Obs::new();
        let mut sys = CacheSystem::new(4, 64, CoherenceProtocol::Mesi);
        sys.attach_obs(&obs, "2");
        for c in 0..4 {
            sys.access(c, 0, AccessKind::Read);
        }
        sys.access(2, 0, AccessKind::Write);
        let seg = ("segment", "2");
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_cache_invalidations_total", &[seg])
                .get(),
            sys.stats().invalidations
        );
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_cache_hits_total", &[("kind", "read"), seg])
                .get(),
            sys.stats().read_hits
        );
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_cache_misses_total", &[("kind", "read"), seg])
                .get(),
            sys.stats().read_misses
        );
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_cache_bus_transactions_total", &[seg])
                .get(),
            sys.stats().bus_transactions
        );
    }
}
