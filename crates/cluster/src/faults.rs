//! Failure injection: scripted node outages for scheduler robustness tests.
//!
//! A [`FaultPlan`] is a deterministic script of health transitions indexed
//! by a logical tick; [`FaultedCluster`] wraps a [`Cluster`] and applies due
//! transitions as the driver advances time. Used by `sched` tests and the
//! failure-injection integration tests.

use crate::machine::{Cluster, ClusterError, NodeHealth, SlaveId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Logical tick at which the transition applies.
    pub at_tick: u64,
    /// Node affected.
    pub node: SlaveId,
    /// New health.
    pub health: NodeHealth,
}

/// A deterministic script of node-health transitions.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add one transition; events may be added in any order.
    pub fn push(&mut self, at_tick: u64, node: SlaveId, health: NodeHealth) -> &mut Self {
        self.events.push(FaultEvent {
            at_tick,
            node,
            health,
        });
        self
    }

    /// A random crash/recover plan: each selected node goes Down at a random
    /// tick in `[0, horizon)` and comes back `outage` ticks later.
    /// Deterministic per seed. The `count` victims are sampled *without*
    /// replacement (partial Fisher-Yates), so a plan for `count` outages
    /// always hits `count` distinct nodes — sampling with replacement could
    /// silently script fewer, weaker failures than requested.
    pub fn random_outages(
        nodes: &[SlaveId],
        count: usize,
        horizon: u64,
        outage: u64,
        seed: u64,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::default();
        let mut pool: Vec<SlaveId> = nodes.to_vec();
        for picked in 0..count.min(pool.len()) {
            let swap_with = rng.gen_range(picked..pool.len());
            pool.swap(picked, swap_with);
            let node = pool[picked];
            let down_at = rng.gen_range(0..horizon.max(1));
            plan.push(down_at, node, NodeHealth::Down);
            plan.push(down_at + outage, node, NodeHealth::Up);
        }
        plan
    }

    /// Scripted events, in insertion order (not sorted by tick).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A cluster plus a fault script and a logical clock.
#[derive(Debug)]
pub struct FaultedCluster {
    cluster: Cluster,
    plan: Vec<FaultEvent>,
    tick: u64,
    applied: usize,
}

impl FaultedCluster {
    /// Wrap `cluster` with `plan`; the script is sorted by tick (stable, so
    /// same-tick events apply in insertion order).
    pub fn new(cluster: Cluster, plan: FaultPlan) -> FaultedCluster {
        let mut events = plan.events;
        events.sort_by_key(|e| e.at_tick);
        FaultedCluster {
            cluster,
            plan: events,
            tick: 0,
            applied: 0,
        }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access (allocation/release still goes through the cluster).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advance the logical clock to `tick`, applying all due transitions.
    /// Returns the transitions applied. Ticks never move backwards.
    pub fn advance_to(&mut self, tick: u64) -> Result<Vec<FaultEvent>, ClusterError> {
        if tick > self.tick {
            self.tick = tick;
        }
        let mut fired = Vec::new();
        while self.applied < self.plan.len() && self.plan[self.applied].at_tick <= self.tick {
            let ev = self.plan[self.applied];
            self.cluster.set_health(ev.node, ev.health)?;
            fired.push(ev);
            self.applied += 1;
        }
        Ok(fired)
    }

    /// Remaining scripted events.
    pub fn pending(&self) -> usize {
        self.plan.len() - self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    #[test]
    fn plan_applies_in_tick_order() {
        let c = Cluster::new(ClusterSpec::small(1, 2));
        let ids = c.slave_ids();
        let mut plan = FaultPlan::none();
        plan.push(10, ids[0], NodeHealth::Down);
        plan.push(5, ids[1], NodeHealth::Draining);
        plan.push(20, ids[0], NodeHealth::Up);
        let mut fc = FaultedCluster::new(c, plan);

        let fired = fc.advance_to(5).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fc.cluster().health(ids[1]).unwrap(), NodeHealth::Draining);

        let fired = fc.advance_to(15).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fc.cluster().health(ids[0]).unwrap(), NodeHealth::Down);
        assert_eq!(fc.pending(), 1);

        fc.advance_to(100).unwrap();
        assert_eq!(fc.cluster().health(ids[0]).unwrap(), NodeHealth::Up);
        assert_eq!(fc.pending(), 0);
    }

    #[test]
    fn clock_does_not_rewind() {
        let c = Cluster::new(ClusterSpec::small(1, 1));
        let mut fc = FaultedCluster::new(c, FaultPlan::none());
        fc.advance_to(50).unwrap();
        fc.advance_to(10).unwrap();
        assert_eq!(fc.tick(), 50);
    }

    #[test]
    fn random_plan_is_deterministic() {
        let c = Cluster::new(ClusterSpec::small(2, 4));
        let ids = c.slave_ids();
        let a = FaultPlan::random_outages(&ids, 3, 100, 10, 42);
        let b = FaultPlan::random_outages(&ids, 3, 100, 10, 42);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), 6); // down + up per outage
        let c2 = FaultPlan::random_outages(&ids, 3, 100, 10, 43);
        // Different seed gives a (very likely) different script; compare via
        // the events' ticks.
        let ticks = |p: &FaultPlan| p.events.iter().map(|e| e.at_tick).collect::<Vec<_>>();
        assert_eq!(ticks(&a), ticks(&b));
        assert_ne!(ticks(&a), ticks(&c2));
    }

    #[test]
    fn random_plan_hits_distinct_nodes() {
        let c = Cluster::new(ClusterSpec::small(2, 4));
        let ids = c.slave_ids();
        for seed in 0..32 {
            let p = FaultPlan::random_outages(&ids, 5, 100, 10, seed);
            let mut downed: Vec<SlaveId> = p
                .events()
                .iter()
                .filter(|e| e.health == NodeHealth::Down)
                .map(|e| e.node)
                .collect();
            downed.sort();
            downed.dedup();
            assert_eq!(downed.len(), 5, "seed {seed} reused a node");
        }
        // Asking for more outages than nodes exist clamps to the node count.
        let p = FaultPlan::random_outages(&ids, 100, 100, 10, 7);
        assert_eq!(p.len(), ids.len() * 2);
    }

    #[test]
    fn capacity_drops_during_outage() {
        let c = Cluster::new(ClusterSpec::small(1, 2));
        let ids = c.slave_ids();
        let mut plan = FaultPlan::none();
        plan.push(1, ids[0], NodeHealth::Down);
        let mut fc = FaultedCluster::new(c, plan);
        let before = fc.cluster().total_cores();
        fc.advance_to(1).unwrap();
        assert_eq!(fc.cluster().total_cores(), before - 4);
    }
}
