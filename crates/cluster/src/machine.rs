//! The live cluster: node health, core allocation, utilization accounting.
//!
//! This is the resource layer the job distributor (`sched`) allocates from.
//! Identity scheme: every slave node has a [`SlaveId`] `(segment, slot)`;
//! mapping to network node ids goes through the spec-built topology.

use crate::spec::{ClusterSpec, NodeClass, NodeSpec};
use obs::Obs;
use simnet::{Network, NodeId};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A slave node's identity: segment index and slot within the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlaveId {
    /// Segment index (0-based).
    pub segment: usize,
    /// Slot within the segment (0-based).
    pub slot: usize,
}

impl fmt::Display for SlaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}n{}", self.segment, self.slot)
    }
}

/// Health of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Accepting work.
    Up,
    /// Finishing current work; no new allocations.
    Draining,
    /// Offline.
    Down,
}

/// Errors from cluster resource operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Requested more cores than the cluster can ever provide.
    RequestExceedsCapacity {
        /// Cores requested.
        requested: u32,
        /// Total schedulable cores when every node is up.
        capacity: u32,
    },
    /// Not enough free cores right now.
    InsufficientFreeCores {
        /// Cores requested.
        requested: u32,
        /// Cores currently free on Up nodes.
        free: u32,
    },
    /// Unknown slave id.
    NoSuchNode(SlaveId),
    /// Releasing cores that were not allocated (double release or corruption).
    BadRelease(SlaveId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::RequestExceedsCapacity {
                requested,
                capacity,
            } => {
                write!(
                    f,
                    "requested {requested} cores exceeds cluster capacity {capacity}"
                )
            }
            ClusterError::InsufficientFreeCores { requested, free } => {
                write!(f, "requested {requested} cores but only {free} free")
            }
            ClusterError::NoSuchNode(id) => write!(f, "no such node {id}"),
            ClusterError::BadRelease(id) => write!(f, "bad release on node {id}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A set of cores granted to one job: node -> cores taken on that node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Cores held, per slave node.
    pub cores: BTreeMap<SlaveId, u32>,
}

impl Allocation {
    /// Total cores in the allocation.
    pub fn total_cores(&self) -> u32 {
        self.cores.values().sum()
    }

    /// Number of distinct nodes involved.
    pub fn node_count(&self) -> usize {
        self.cores.len()
    }

    /// Number of distinct segments involved.
    pub fn segment_count(&self) -> usize {
        let mut segs: Vec<usize> = self.cores.keys().map(|s| s.segment).collect();
        segs.sort_unstable();
        segs.dedup();
        segs.len()
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    spec: NodeSpec,
    health: NodeHealth,
    busy_cores: u32,
}

/// Cached metric handles, created once when an [`Obs`] is attached.
#[derive(Debug, Clone)]
struct ClusterMetrics {
    allocations: obs::Counter,
    alloc_fail_capacity: obs::Counter,
    alloc_fail_busy: obs::Counter,
    releases: obs::Counter,
    alloc_cores: obs::Histogram,
    cores_busy: obs::Gauge,
    cores_total: obs::Gauge,
    nodes_up: obs::Gauge,
    nodes_draining: obs::Gauge,
    nodes_down: obs::Gauge,
    health_to_up: obs::Counter,
    health_to_draining: obs::Counter,
    health_to_down: obs::Counter,
}

impl ClusterMetrics {
    fn new(o: &Obs) -> ClusterMetrics {
        let m = &o.metrics;
        m.describe(
            "ccp_cluster_allocations_total",
            "successful core allocations",
        );
        m.describe(
            "ccp_cluster_alloc_failures_total",
            "rejected core allocations by reason",
        );
        m.describe(
            "ccp_cluster_alloc_cores",
            "cores granted per successful allocation",
        );
        m.describe("ccp_cluster_cores_busy", "cores currently allocated");
        m.describe("ccp_cluster_cores_total", "schedulable cores on Up nodes");
        m.describe("ccp_cluster_nodes", "slave nodes by health state");
        m.describe(
            "ccp_cluster_health_transitions_total",
            "node health transitions by target state",
        );
        ClusterMetrics {
            allocations: m.counter("ccp_cluster_allocations_total", &[]),
            alloc_fail_capacity: m.counter(
                "ccp_cluster_alloc_failures_total",
                &[("reason", "capacity")],
            ),
            alloc_fail_busy: m.counter("ccp_cluster_alloc_failures_total", &[("reason", "busy")]),
            releases: m.counter("ccp_cluster_releases_total", &[]),
            alloc_cores: m.histogram("ccp_cluster_alloc_cores", &[], obs::SMALL_COUNT_BOUNDS),
            cores_busy: m.gauge("ccp_cluster_cores_busy", &[]),
            cores_total: m.gauge("ccp_cluster_cores_total", &[]),
            nodes_up: m.gauge("ccp_cluster_nodes", &[("state", "up")]),
            nodes_draining: m.gauge("ccp_cluster_nodes", &[("state", "draining")]),
            nodes_down: m.gauge("ccp_cluster_nodes", &[("state", "down")]),
            health_to_up: m.counter("ccp_cluster_health_transitions_total", &[("to", "up")]),
            health_to_draining: m.counter(
                "ccp_cluster_health_transitions_total",
                &[("to", "draining")],
            ),
            health_to_down: m.counter("ccp_cluster_health_transitions_total", &[("to", "down")]),
        }
    }
}

/// The live cluster: spec + network + per-node state.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    network: Network,
    nodes: BTreeMap<SlaveId, NodeState>,
    metrics: Option<ClusterMetrics>,
}

impl Cluster {
    /// Boot a cluster from its spec; all nodes start Up.
    pub fn new(spec: ClusterSpec) -> Cluster {
        let network = spec.build_network();
        let mut nodes = BTreeMap::new();
        for (si, seg) in spec.segments.iter().enumerate() {
            for (ni, ns) in seg.slaves.iter().enumerate() {
                nodes.insert(
                    SlaveId {
                        segment: si,
                        slot: ni,
                    },
                    NodeState {
                        spec: ns.clone(),
                        health: NodeHealth::Up,
                        busy_cores: 0,
                    },
                );
            }
        }
        Cluster {
            spec,
            network,
            nodes,
            metrics: None,
        }
    }

    /// Attach a telemetry domain: registers the `ccp_cluster_*` families and
    /// seeds the node/core gauges from current state. Idempotent per `Obs`.
    pub fn set_obs(&mut self, obs: &Arc<Obs>) {
        self.metrics = Some(ClusterMetrics::new(obs));
        self.publish_gauges();
    }

    /// Refresh the node-health and core gauges from the authoritative node
    /// map, so the exposition can never disagree with `/api/health`.
    pub fn publish_gauges(&self) {
        let Some(m) = &self.metrics else { return };
        let count = |h: NodeHealth| self.nodes.values().filter(|n| n.health == h).count() as i64;
        m.nodes_up.set(count(NodeHealth::Up));
        m.nodes_draining.set(count(NodeHealth::Draining));
        m.nodes_down.set(count(NodeHealth::Down));
        m.cores_total.set(self.total_cores() as i64);
        m.cores_busy
            .set(self.nodes.values().map(|n| n.busy_cores as i64).sum());
    }

    /// The originating spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The interconnect model (mutable for traffic accounting).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The interconnect model.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Total nodes in the fabric (head + masters + slaves).
    pub fn total_nodes(&self) -> usize {
        self.network.topology().len()
    }

    /// Total schedulable cores on Up slaves.
    pub fn total_cores(&self) -> u32 {
        self.nodes
            .values()
            .filter(|n| n.health == NodeHealth::Up)
            .map(|n| n.spec.cores)
            .sum()
    }

    /// Cores currently free on Up slaves.
    pub fn free_cores(&self) -> u32 {
        self.nodes
            .values()
            .filter(|n| n.health == NodeHealth::Up)
            .map(|n| n.spec.cores - n.busy_cores)
            .sum()
    }

    /// Fraction of Up capacity in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.total_cores();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.free_cores() as f64 / total as f64
    }

    /// All slave ids in deterministic (segment, slot) order.
    pub fn slave_ids(&self) -> Vec<SlaveId> {
        self.nodes.keys().copied().collect()
    }

    /// Health of a node.
    pub fn health(&self, id: SlaveId) -> Result<NodeHealth, ClusterError> {
        self.nodes
            .get(&id)
            .map(|n| n.health)
            .ok_or(ClusterError::NoSuchNode(id))
    }

    /// Set a node's health. Allocations on the node are unaffected (the
    /// scheduler decides whether to migrate).
    pub fn set_health(&mut self, id: SlaveId, health: NodeHealth) -> Result<(), ClusterError> {
        let n = self
            .nodes
            .get_mut(&id)
            .ok_or(ClusterError::NoSuchNode(id))?;
        let changed = n.health != health;
        n.health = health;
        if changed {
            if let Some(m) = &self.metrics {
                match health {
                    NodeHealth::Up => m.health_to_up.inc(),
                    NodeHealth::Draining => m.health_to_draining.inc(),
                    NodeHealth::Down => m.health_to_down.inc(),
                }
            }
            self.publish_gauges();
        }
        Ok(())
    }

    /// The node's spec.
    pub fn node_spec(&self, id: SlaveId) -> Result<&NodeSpec, ClusterError> {
        self.nodes
            .get(&id)
            .map(|n| &n.spec)
            .ok_or(ClusterError::NoSuchNode(id))
    }

    /// Free cores on one node (0 if not Up).
    pub fn node_free_cores(&self, id: SlaveId) -> Result<u32, ClusterError> {
        let n = self.nodes.get(&id).ok_or(ClusterError::NoSuchNode(id))?;
        Ok(if n.health == NodeHealth::Up {
            n.spec.cores - n.busy_cores
        } else {
            0
        })
    }

    /// Map a slave id to its network node id.
    pub fn network_id(&self, id: SlaveId) -> Result<NodeId, ClusterError> {
        self.network
            .topology()
            .segment_slave(id.segment, id.slot)
            .ok_or(ClusterError::NoSuchNode(id))
    }

    /// Greedily allocate `cores` packing nodes in (segment, slot) order,
    /// preferring to fill a node completely before spilling (minimizes the
    /// segment spread of parallel jobs, i.e. prefers UMA over NUMA traffic).
    pub fn allocate_cores(&mut self, cores: u32) -> Result<Allocation, ClusterError> {
        self.allocate_cores_filtered(cores, |_, _| true)
    }

    /// Like [`Cluster::allocate_cores`] but restricted to nodes for which
    /// `pred(id, spec)` holds (e.g. only accelerator nodes, only quad-cores).
    pub fn allocate_cores_filtered<F>(
        &mut self,
        cores: u32,
        pred: F,
    ) -> Result<Allocation, ClusterError>
    where
        F: Fn(SlaveId, &NodeSpec) -> bool,
    {
        if cores == 0 {
            return Ok(Allocation {
                cores: BTreeMap::new(),
            });
        }
        let capacity: u32 = self
            .nodes
            .iter()
            .filter(|(id, n)| pred(**id, &n.spec))
            .map(|(_, n)| n.spec.cores)
            .sum();
        if cores > capacity {
            if let Some(m) = &self.metrics {
                m.alloc_fail_capacity.inc();
            }
            return Err(ClusterError::RequestExceedsCapacity {
                requested: cores,
                capacity,
            });
        }
        let free: u32 = self
            .nodes
            .iter()
            .filter(|(id, n)| n.health == NodeHealth::Up && pred(**id, &n.spec))
            .map(|(_, n)| n.spec.cores - n.busy_cores)
            .sum();
        if cores > free {
            if let Some(m) = &self.metrics {
                m.alloc_fail_busy.inc();
            }
            return Err(ClusterError::InsufficientFreeCores {
                requested: cores,
                free,
            });
        }
        let mut remaining = cores;
        let mut grant = BTreeMap::new();
        for (id, n) in self.nodes.iter_mut() {
            if remaining == 0 {
                break;
            }
            if n.health != NodeHealth::Up || !pred(*id, &n.spec) {
                continue;
            }
            let avail = n.spec.cores - n.busy_cores;
            if avail == 0 {
                continue;
            }
            let take = avail.min(remaining);
            n.busy_cores += take;
            grant.insert(*id, take);
            remaining -= take;
        }
        debug_assert_eq!(remaining, 0, "free-core accounting out of sync");
        if let Some(m) = &self.metrics {
            m.allocations.inc();
            m.alloc_cores.record(cores as u64);
            m.cores_busy.add(cores as i64);
        }
        Ok(Allocation { cores: grant })
    }

    /// Return an allocation's cores to the pool.
    pub fn release(&mut self, alloc: &Allocation) -> u32 {
        let mut released = 0;
        for (&id, &take) in &alloc.cores {
            if let Some(n) = self.nodes.get_mut(&id) {
                let give_back = take.min(n.busy_cores);
                n.busy_cores -= give_back;
                released += give_back;
            }
        }
        if let Some(m) = &self.metrics {
            if released > 0 {
                m.releases.inc();
            }
            m.cores_busy.sub(released as i64);
        }
        released
    }

    /// Re-mark an allocation's cores as busy — the inverse of
    /// [`Cluster::release`], used when rebuilding scheduler state during
    /// crash recovery. Per-node takes are capped at remaining capacity so a
    /// stale allocation cannot push `busy_cores` past the node's core count.
    pub fn occupy(&mut self, alloc: &Allocation) -> u32 {
        let mut occupied = 0;
        for (&id, &take) in &alloc.cores {
            if let Some(n) = self.nodes.get_mut(&id) {
                let grab = take.min(n.spec.cores - n.busy_cores);
                n.busy_cores += grab;
                occupied += grab;
            }
        }
        if let Some(m) = &self.metrics {
            m.cores_busy.add(occupied as i64);
        }
        occupied
    }

    /// Find the accelerator node, if the spec includes one.
    pub fn accelerator_node(&self) -> Option<SlaveId> {
        self.nodes
            .iter()
            .find(|(_, n)| n.spec.class == NodeClass::Accelerator)
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    #[test]
    fn boot_counts() {
        let c = Cluster::new(ClusterSpec::uhd());
        assert_eq!(c.total_nodes(), 69);
        assert_eq!(c.total_cores(), 192);
        assert_eq!(c.free_cores(), 192);
        assert_eq!(c.utilization(), 0.0);
        assert!(c.accelerator_node().is_some());
    }

    #[test]
    fn allocate_packs_nodes() {
        let mut c = Cluster::new(ClusterSpec::small(2, 2)); // 4 quad nodes
        let a = c.allocate_cores(6).unwrap();
        assert_eq!(a.total_cores(), 6);
        // Packed: first node full (4), second partial (2).
        assert_eq!(a.node_count(), 2);
        assert_eq!(a.segment_count(), 1);
        assert_eq!(c.free_cores(), 10);
        c.release(&a);
        assert_eq!(c.free_cores(), 16);
    }

    #[test]
    fn allocate_spills_across_segments() {
        let mut c = Cluster::new(ClusterSpec::small(2, 1)); // 2 nodes, 4 cores each
        let a = c.allocate_cores(8).unwrap();
        assert_eq!(a.segment_count(), 2);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut c = Cluster::new(ClusterSpec::small(1, 1));
        assert!(matches!(
            c.allocate_cores(100),
            Err(ClusterError::RequestExceedsCapacity { capacity: 4, .. })
        ));
    }

    #[test]
    fn busy_cluster_reports_insufficient() {
        let mut c = Cluster::new(ClusterSpec::small(1, 1));
        let _a = c.allocate_cores(3).unwrap();
        assert!(matches!(
            c.allocate_cores(2),
            Err(ClusterError::InsufficientFreeCores { free: 1, .. })
        ));
    }

    #[test]
    fn down_nodes_excluded() {
        let mut c = Cluster::new(ClusterSpec::small(1, 2));
        let ids = c.slave_ids();
        c.set_health(ids[0], NodeHealth::Down).unwrap();
        assert_eq!(c.total_cores(), 4);
        let a = c.allocate_cores(4).unwrap();
        assert!(a.cores.keys().all(|id| *id == ids[1]));
    }

    #[test]
    fn draining_refuses_new_work() {
        let mut c = Cluster::new(ClusterSpec::small(1, 1));
        let id = c.slave_ids()[0];
        c.set_health(id, NodeHealth::Draining).unwrap();
        assert!(c.allocate_cores(1).is_err());
    }

    #[test]
    fn release_is_idempotent_cap() {
        let mut c = Cluster::new(ClusterSpec::small(1, 1));
        let a = c.allocate_cores(2).unwrap();
        assert_eq!(c.release(&a), 2);
        // Second release finds nothing busy to give back.
        assert_eq!(c.release(&a), 0);
        assert_eq!(c.free_cores(), 4);
    }

    #[test]
    fn occupy_restores_released_allocation() {
        let mut c = Cluster::new(ClusterSpec::small(2, 1));
        let a = c.allocate_cores(8).unwrap();
        assert_eq!(c.free_cores(), 0);
        c.release(&a);
        assert_eq!(c.occupy(&a), 8);
        assert_eq!(c.free_cores(), 0);
        // Re-occupying caps at node capacity rather than over-counting.
        assert_eq!(c.occupy(&a), 0);
        assert_eq!(c.free_cores(), 0);
    }

    #[test]
    fn filtered_allocation_targets_class() {
        let mut c = Cluster::new(ClusterSpec::uhd());
        let a = c
            .allocate_cores_filtered(4, |_, spec| spec.class == NodeClass::Accelerator)
            .unwrap();
        assert_eq!(a.node_count(), 1);
        let id = *a.cores.keys().next().unwrap();
        assert_eq!(c.node_spec(id).unwrap().class, NodeClass::Accelerator);
    }

    #[test]
    fn network_id_roundtrip() {
        let c = Cluster::new(ClusterSpec::uhd());
        let id = SlaveId {
            segment: 2,
            slot: 5,
        };
        let nid = c.network_id(id).unwrap();
        assert_eq!(c.network().topology().segment_of(nid), Some(2));
    }

    #[test]
    fn utilization_moves() {
        let mut c = Cluster::new(ClusterSpec::small(1, 2));
        let _a = c.allocate_cores(4).unwrap();
        assert!((c.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn obs_tracks_allocations_and_health() {
        let obs = Arc::new(Obs::new());
        let mut c = Cluster::new(ClusterSpec::small(1, 2)); // 2 nodes, 8 cores
        c.set_obs(&obs);
        assert_eq!(
            obs.metrics
                .gauge("ccp_cluster_nodes", &[("state", "up")])
                .get(),
            2
        );
        assert_eq!(obs.metrics.gauge("ccp_cluster_cores_total", &[]).get(), 8);

        let a = c.allocate_cores(6).unwrap();
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_allocations_total", &[])
                .get(),
            1
        );
        assert_eq!(obs.metrics.gauge("ccp_cluster_cores_busy", &[]).get(), 6);
        assert!(c.allocate_cores(3).is_err());
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_alloc_failures_total", &[("reason", "busy")])
                .get(),
            1
        );
        c.release(&a);
        assert_eq!(obs.metrics.gauge("ccp_cluster_cores_busy", &[]).get(), 0);

        let id = c.slave_ids()[0];
        c.set_health(id, NodeHealth::Down).unwrap();
        assert_eq!(
            obs.metrics
                .gauge("ccp_cluster_nodes", &[("state", "up")])
                .get(),
            1
        );
        assert_eq!(
            obs.metrics
                .gauge("ccp_cluster_nodes", &[("state", "down")])
                .get(),
            1
        );
        assert_eq!(obs.metrics.gauge("ccp_cluster_cores_total", &[]).get(), 4);
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_health_transitions_total", &[("to", "down")])
                .get(),
            1
        );
        // Re-setting the same health is not a transition.
        c.set_health(id, NodeHealth::Down).unwrap();
        assert_eq!(
            obs.metrics
                .counter("ccp_cluster_health_transitions_total", &[("to", "down")])
                .get(),
            1
        );
    }

    #[test]
    fn zero_core_request_is_empty() {
        let mut c = Cluster::new(ClusterSpec::small(1, 1));
        let a = c.allocate_cores(0).unwrap();
        assert_eq!(a.total_cores(), 0);
        assert_eq!(a.node_count(), 0);
    }
}
