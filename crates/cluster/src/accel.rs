//! The accelerator ("GPU machine") cost model.
//!
//! The lab platform includes "a GPU machine" (§III.B). We model it as a
//! wide-SIMD offload device: kernels pay a fixed launch overhead plus
//! transfer time for their working set, then execute at `lanes`-way
//! parallelism. Good enough to let coursework compare CPU vs accelerator
//! execution of data-parallel loops, which is all the curriculum needs.

use simnet::SimDuration;

/// Static description of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelProfile {
    /// Number of independent work items.
    pub work_items: u64,
    /// Arithmetic operations per item.
    pub ops_per_item: u64,
    /// Bytes copied host->device before launch.
    pub bytes_in: u64,
    /// Bytes copied device->host after completion.
    pub bytes_out: u64,
}

/// The accelerator device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accelerator {
    /// SIMD lanes executing in lockstep.
    pub lanes: u32,
    /// Device clock in MHz.
    pub clock_mhz: u32,
    /// Fixed kernel-launch overhead in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Host<->device copy bandwidth, bytes/second.
    pub copy_bytes_per_sec: u64,
}

impl Default for Accelerator {
    fn default() -> Self {
        // A period-appropriate small GPU: 128 lanes at 1.2 GHz, PCIe-2-ish copies.
        Accelerator {
            lanes: 128,
            clock_mhz: 1_200,
            launch_overhead_ns: 10_000,
            copy_bytes_per_sec: 3_000_000_000,
        }
    }
}

impl Accelerator {
    /// Time to execute `k` end to end (copy in, compute, copy out).
    pub fn kernel_time(&self, k: &KernelProfile) -> SimDuration {
        let copy = |bytes: u64| -> u64 {
            (bytes as u128 * 1_000_000_000u128)
                .div_ceil(self.copy_bytes_per_sec as u128)
                .min(u64::MAX as u128) as u64
        };
        // Waves of `lanes` items; each wave runs ops_per_item cycles.
        let waves = k
            .work_items
            .div_ceil(self.lanes as u64)
            .max(if k.work_items == 0 { 0 } else { 1 });
        let cycles = waves.saturating_mul(k.ops_per_item);
        let compute_ns = (cycles as u128 * 1_000u128).div_ceil(self.clock_mhz as u128) as u64;
        SimDuration::from_nanos(
            self.launch_overhead_ns
                .saturating_add(copy(k.bytes_in))
                .saturating_add(compute_ns)
                .saturating_add(copy(k.bytes_out)),
        )
    }

    /// Time for a scalar CPU at `cpu_mhz` to do the same work (no copies).
    pub fn cpu_time(k: &KernelProfile, cpu_mhz: u32) -> SimDuration {
        let cycles = k.work_items.saturating_mul(k.ops_per_item);
        let ns = (cycles as u128 * 1_000u128).div_ceil(cpu_mhz.max(1) as u128) as u64;
        SimDuration::from_nanos(ns)
    }

    /// Speedup of the accelerator over a scalar CPU for kernel `k`
    /// (values < 1 mean the offload does not pay off).
    pub fn speedup_vs_cpu(&self, k: &KernelProfile, cpu_mhz: u32) -> f64 {
        let dev = self.kernel_time(k).nanos().max(1) as f64;
        let cpu = Self::cpu_time(k, cpu_mhz).nanos() as f64;
        cpu / dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_kernel() -> KernelProfile {
        KernelProfile {
            work_items: 1 << 20,
            ops_per_item: 100,
            bytes_in: 4 << 20,
            bytes_out: 4 << 20,
        }
    }

    #[test]
    fn big_kernels_beat_cpu() {
        let acc = Accelerator::default();
        let s = acc.speedup_vs_cpu(&big_kernel(), 2_600);
        assert!(s > 10.0, "expected large speedup, got {s}");
    }

    #[test]
    fn tiny_kernels_lose_to_overhead() {
        let acc = Accelerator::default();
        let k = KernelProfile {
            work_items: 64,
            ops_per_item: 4,
            bytes_in: 256,
            bytes_out: 256,
        };
        let s = acc.speedup_vs_cpu(&k, 2_600);
        assert!(s < 1.0, "tiny kernel should not pay off, got speedup {s}");
    }

    #[test]
    fn zero_item_kernel_costs_only_overhead_and_copies() {
        let acc = Accelerator::default();
        let k = KernelProfile {
            work_items: 0,
            ops_per_item: 100,
            bytes_in: 0,
            bytes_out: 0,
        };
        assert_eq!(acc.kernel_time(&k).nanos(), acc.launch_overhead_ns);
    }

    #[test]
    fn compute_scales_with_waves() {
        let acc = Accelerator {
            lanes: 4,
            clock_mhz: 1_000,
            launch_overhead_ns: 0,
            copy_bytes_per_sec: 1 << 40,
        };
        let k1 = KernelProfile {
            work_items: 4,
            ops_per_item: 1_000,
            bytes_in: 0,
            bytes_out: 0,
        };
        let k2 = KernelProfile {
            work_items: 8,
            ops_per_item: 1_000,
            bytes_in: 0,
            bytes_out: 0,
        };
        let t1 = acc.kernel_time(&k1).nanos();
        let t2 = acc.kernel_time(&k2).nanos();
        assert_eq!(t2, 2 * t1);
    }

    #[test]
    fn crossover_exists() {
        // Sweep work size: somewhere the accelerator starts winning.
        let acc = Accelerator::default();
        let mut last = 0.0;
        let mut crossed = false;
        for shift in 4..22 {
            let k = KernelProfile {
                work_items: 1 << shift,
                ops_per_item: 64,
                bytes_in: 1 << shift,
                bytes_out: 0,
            };
            let s = acc.speedup_vs_cpu(&k, 2_600);
            if last < 1.0 && s >= 1.0 {
                crossed = true;
            }
            last = s;
        }
        assert!(crossed, "no CPU/accelerator crossover found");
    }
}
