//! A corpus of small concurrency archetypes with known verdicts, sized so
//! unreduced DFS can exhaust their schedule spaces. They serve three
//! masters: the golden-verdict suite (each program's class is pinned), the
//! DPOR differential harness (reduced and unreduced exploration must agree
//! on every one), and the reduction benchmarks (schedule counts with and
//! without DPOR are compared on them).
//!
//! The order-dependent ones are chosen to *defeat naive reduction*: each
//! hides its violation behind one specific ordering of dependent
//! operations, so any reducer that wrongly commutes a dependent pair —
//! lock/lock, notify/wait, send/send — silently loses the bug. The
//! differential harness exists to catch exactly that.

/// Two threads incrementing a shared counter under a mutex, two increments
/// each — clean, with a branchy enough tree (lock-acquisition orders) that
/// reduction has something to prune.
pub fn mini_locked_counter() -> &'static str {
    r#"
        var count = 0;
        var m;
        fn bump() {
            for (var i = 0; i < 2; i = i + 1) {
                lock(m);
                count = count + 1;
                unlock(m);
            }
        }
        fn main() {
            m = mutex();
            var a = spawn bump();
            var b = spawn bump();
            join(a);
            join(b);
            return count;
        }
    "#
}

/// The same counter without the mutex — a data race on `count`.
pub fn mini_racy_counter() -> &'static str {
    r#"
        var count = 0;
        fn bump() {
            count = count + 1;
        }
        fn main() {
            var a = spawn bump();
            var b = spawn bump();
            join(a);
            join(b);
            return count;
        }
    "#
}

/// Classic lock-order inversion: thread 1 takes `a` then `b`, thread 2
/// takes `b` then `a` — deadlock only when both first acquisitions land
/// before either second one.
pub fn lock_inversion() -> &'static str {
    r#"
        var a;
        var b;
        fn one() {
            lock(a);
            lock(b);
            unlock(b);
            unlock(a);
        }
        fn two() {
            lock(b);
            lock(a);
            unlock(a);
            unlock(b);
        }
        fn main() {
            a = mutex();
            b = mutex();
            var t1 = spawn one();
            var t2 = spawn two();
            join(t1);
            join(t2);
        }
    "#
}

/// Racy-then-synchronized writes: both threads touch `x` without the lock
/// *around* a properly locked section. Whether the unlocked writes are
/// happens-ordered depends on which thread goes through the mutex first —
/// thread 1 first: `x = 1` releases through `m` into thread 2's `x = 2`,
/// no race; thread 2 first: nothing orders the pair, race. A reducer that
/// commutes the lock acquisitions sees only the clean ordering.
pub fn racy_then_synced() -> &'static str {
    r#"
        var x = 0;
        var y = 0;
        var m;
        fn one() {
            x = 1;
            lock(m);
            y = y + 1;
            unlock(m);
        }
        fn two() {
            lock(m);
            y = y + 1;
            unlock(m);
            x = 2;
        }
        fn main() {
            m = mutex();
            var t1 = spawn one();
            var t2 = spawn two();
            join(t1);
            join(t2);
        }
    "#
}

/// Condition-variable lost wakeup: the notifier fires exactly once, so the
/// notify/wait *order* decides the outcome — waiter parks first: woken,
/// clean; notify first: the wakeup is lost and the waiter parks forever
/// (deadlock). Notify and wait on the same condvar are dependent; a
/// reducer that commutes them only ever sees the clean ordering.
pub fn lost_wakeup() -> &'static str {
    r#"
        var m;
        var cv;
        fn waiter() {
            lock(m);
            cond_wait(cv, m);
            unlock(m);
        }
        fn notifier() {
            cond_notify(cv);
        }
        fn main() {
            m = mutex();
            cv = condvar();
            var a = spawn waiter();
            var b = spawn notifier();
            join(a);
            join(b);
        }
    "#
}

/// Channel-drain race: two producers race their sends into a capacity-1
/// channel and the consumer keeps draining only when producer 1's value
/// arrived first. Producer 2 first: the consumer stops, the channel stays
/// full, and producer 1's second send blocks forever — a deadlock
/// reachable only under one send order. The sends target the same channel
/// and are dependent; commuting them hides the losing order.
pub fn channel_drain_race() -> &'static str {
    r#"
        var c;
        fn one() {
            send(c, 1);
            send(c, 1);
        }
        fn two() {
            send(c, 2);
        }
        fn main() {
            c = channel(1);
            var t1 = spawn one();
            var t2 = spawn two();
            var v = recv(c);
            if (v == 1) {
                var w = recv(c);
                var u = recv(c);
            }
            join(t1);
            join(t2);
        }
    "#
}

/// Producer/consumer over a capacity-1 channel with a post-handoff
/// unsynchronized write — clean (the channel's happens-before edges order
/// everything), but full of dependent send/recv pairs for reduction to
/// reason about.
pub fn mini_channel_pipeline() -> &'static str {
    r#"
        var done = 0;
        var c;
        fn producer() {
            send(c, 10);
            send(c, 20);
        }
        fn main() {
            c = channel(1);
            var p = spawn producer();
            var a = recv(c);
            var b = recv(c);
            join(p);
            done = a + b;
            return done;
        }
    "#
}

/// Two workers ping-ponging a semaphore — clean, semaphore-heavy so the
/// differential corpus covers `sem_wait`/`sem_post` dependence.
pub fn mini_semaphore_pingpong() -> &'static str {
    r#"
        var turns = 0;
        var s;
        var t;
        fn ping() {
            for (var i = 0; i < 2; i = i + 1) {
                sem_wait(s);
                turns = turns + 1;
                sem_post(t);
            }
        }
        fn pong() {
            for (var i = 0; i < 2; i = i + 1) {
                sem_wait(t);
                turns = turns + 1;
                sem_post(s);
            }
        }
        fn main() {
            s = semaphore(1);
            t = semaphore(0);
            var a = spawn ping();
            var b = spawn pong();
            join(a);
            join(b);
            return turns;
        }
    "#
}

/// `mini_locked_counter` scaled to `iters` locked increments per thread —
/// clean, with a schedule space that grows fast in `iters`, for reduction
/// benchmarks that want a deeper tree than the minis offer.
pub fn scaled_locked_counter(iters: usize) -> String {
    format!(
        r#"
        var count = 0;
        var m;
        fn bump() {{
            for (var i = 0; i < {iters}; i = i + 1) {{
                lock(m);
                count = count + 1;
                unlock(m);
            }}
        }}
        fn main() {{
            m = mutex();
            var a = spawn bump();
            var b = spawn bump();
            join(a);
            join(b);
            return count;
        }}
        "#
    )
}

/// `mini_semaphore_pingpong` scaled to `iters` turns per thread — clean,
/// semaphore-ordered, so almost the entire unreduced tree is redundant
/// interleaving of independent ops.
pub fn scaled_semaphore_pingpong(iters: usize) -> String {
    format!(
        r#"
        var turns = 0;
        var s;
        var t;
        fn ping() {{
            for (var i = 0; i < {iters}; i = i + 1) {{
                sem_wait(s);
                turns = turns + 1;
                sem_post(t);
            }}
        }}
        fn pong() {{
            for (var i = 0; i < {iters}; i = i + 1) {{
                sem_wait(t);
                turns = turns + 1;
                sem_post(s);
            }}
        }}
        fn main() {{
            s = semaphore(1);
            t = semaphore(0);
            var a = spawn ping();
            var b = spawn pong();
            join(a);
            join(b);
            return turns;
        }}
        "#
    )
}

/// The whole corpus with its expected verdict classes (`"clean"`,
/// `"race"`, `"deadlock"`), for harnesses that sweep it.
pub fn corpus() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("mini_locked_counter", mini_locked_counter(), "clean"),
        ("mini_racy_counter", mini_racy_counter(), "race"),
        ("lock_inversion", lock_inversion(), "deadlock"),
        ("racy_then_synced", racy_then_synced(), "race"),
        ("lost_wakeup", lost_wakeup(), "deadlock"),
        ("channel_drain_race", channel_drain_race(), "deadlock"),
        ("mini_channel_pipeline", mini_channel_pipeline(), "clean"),
        (
            "mini_semaphore_pingpong",
            mini_semaphore_pingpong(),
            "clean",
        ),
    ]
}
