//! FastTrack-style vector-clock data-race detection.
//!
//! The detector consumes the VM's [`VmEvent`] stream and maintains:
//! per-thread vector clocks, a clock per synchronization object (mutex,
//! semaphore, condition variable, per-message channel FIFO), a clock per
//! *atomically accessed* location (so `tas`/`atomic_add` pairs are
//! happens-before ordered and never reported), and per-location last-write
//! / read-set epochs. A plain access that is not happens-after a
//! conflicting prior access is a data race.

use minilang::{MemLoc, VmEvent};
use std::collections::{HashMap, VecDeque};

/// A grow-on-demand vector clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// Component `i` (0 if never set).
    pub fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    /// Set component `i`.
    pub fn set(&mut self, i: usize, v: u64) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Increment component `i`.
    pub fn incr(&mut self, i: usize) {
        let v = self.get(i);
        self.set(i, v + 1);
    }
}

/// How a racing access touched the location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

impl std::fmt::Display for AccessKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// A detected data race: two accesses to `loc`, unordered by
/// happens-before, at least one of them a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The racing location.
    pub loc: MemLoc,
    /// Earlier access (thread, kind).
    pub first: (usize, AccessKind),
    /// Later access (thread, kind) — the one that tripped the detector.
    pub second: (usize, AccessKind),
}

/// The happens-before engine.
#[derive(Debug, Clone, Default)]
pub struct RaceDetector {
    clocks: Vec<VectorClock>,
    inited: Vec<bool>,
    mutex_vc: HashMap<usize, VectorClock>,
    sem_vc: HashMap<usize, VectorClock>,
    cond_vc: HashMap<usize, VectorClock>,
    chan_vc: HashMap<usize, VecDeque<VectorClock>>,
    atomic_vc: HashMap<MemLoc, VectorClock>,
    last_write: HashMap<MemLoc, (usize, u64, AccessKind)>,
    reads: HashMap<MemLoc, HashMap<usize, u64>>,
}

impl RaceDetector {
    /// Fresh detector.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// FNV-1a digest of the happens-before state, folded into the
    /// checker's canonical state hash. Map entries are hashed individually
    /// and combined commutatively (wrapping add), so `HashMap` iteration
    /// order cannot leak into the result; vector clocks are trimmed of
    /// trailing zeros first (a clock and its zero-padded twin are the same
    /// clock).
    pub(crate) fn digest(&self) -> u64 {
        fn clock(h: &mut Fnv, vc: &VectorClock) {
            let trimmed = vc.0.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1);
            h.u64(trimmed as u64);
            for &v in &vc.0[..trimmed] {
                h.u64(v);
            }
        }
        fn loc(h: &mut Fnv, l: &MemLoc) {
            match l {
                MemLoc::Global(i) => {
                    h.u64(1);
                    h.u64(*i as u64);
                }
                MemLoc::Elem(a, i) => {
                    h.u64(2);
                    h.u64(*a as u64);
                    h.u64(*i as u64);
                }
                MemLoc::ArrayStruct(a) => {
                    h.u64(3);
                    h.u64(*a as u64);
                }
            }
        }
        let mut h = Fnv::new();
        h.u64(self.clocks.len() as u64);
        for (i, c) in self.clocks.iter().enumerate() {
            h.u64(self.inited[i] as u64);
            clock(&mut h, c);
        }
        let mut acc = 0u64;
        for (k, v) in &self.mutex_vc {
            let mut e = Fnv::new();
            e.u64(1);
            e.u64(*k as u64);
            clock(&mut e, v);
            acc = acc.wrapping_add(e.0);
        }
        for (k, v) in &self.sem_vc {
            let mut e = Fnv::new();
            e.u64(2);
            e.u64(*k as u64);
            clock(&mut e, v);
            acc = acc.wrapping_add(e.0);
        }
        for (k, v) in &self.cond_vc {
            let mut e = Fnv::new();
            e.u64(3);
            e.u64(*k as u64);
            clock(&mut e, v);
            acc = acc.wrapping_add(e.0);
        }
        for (k, q) in &self.chan_vc {
            let mut e = Fnv::new();
            e.u64(4);
            e.u64(*k as u64);
            e.u64(q.len() as u64);
            for v in q {
                clock(&mut e, v);
            }
            acc = acc.wrapping_add(e.0);
        }
        for (k, v) in &self.atomic_vc {
            let mut e = Fnv::new();
            e.u64(5);
            loc(&mut e, k);
            clock(&mut e, v);
            acc = acc.wrapping_add(e.0);
        }
        for (k, &(t, c, kind)) in &self.last_write {
            let mut e = Fnv::new();
            e.u64(6);
            loc(&mut e, k);
            e.u64(t as u64);
            e.u64(c);
            e.u64(match kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
                AccessKind::Atomic => 2,
            });
            acc = acc.wrapping_add(e.0);
        }
        for (k, readers) in &self.reads {
            let mut inner = 0u64;
            for (&t, &epoch) in readers {
                let mut e = Fnv::new();
                e.u64(t as u64);
                e.u64(epoch);
                inner = inner.wrapping_add(e.0);
            }
            let mut e = Fnv::new();
            e.u64(7);
            loc(&mut e, k);
            e.u64(readers.len() as u64);
            e.u64(inner);
            acc = acc.wrapping_add(e.0);
        }
        h.u64(acc);
        h.0
    }

    /// Thread `t`'s current epoch: its own clock component, as the next
    /// event it emits will be stamped. A step by `t` at epoch `e`
    /// happens-before a later point of thread `p` iff `p`'s clock has
    /// component `[t] >= e` — releases publish the epoch *before*
    /// incrementing, so every step up to the release is covered by the
    /// published value. The DPOR layer (`explore`) reads this to decide
    /// whether an executed step can still be reordered after a pending op.
    pub(crate) fn epoch(&self, t: usize) -> u64 {
        self.clocks.get(t).map(|c| c.get(t)).unwrap_or(0).max(1)
    }

    /// Component `q` of thread `p`'s current clock (0 when `p` has no
    /// clock yet): everything of `q` up to this value happens-before
    /// `p`'s next step.
    pub(crate) fn clock_component(&self, p: usize, q: usize) -> u64 {
        self.clocks.get(p).map(|c| c.get(q)).unwrap_or(0)
    }

    /// Make sure thread `t` has a clock with its own component at >= 1
    /// (so its first epoch is distinguishable from "never happened").
    fn touch(&mut self, t: usize) {
        if self.clocks.len() <= t {
            self.clocks.resize(t + 1, VectorClock::default());
            self.inited.resize(t + 1, false);
        }
        if !self.inited[t] {
            self.inited[t] = true;
            if self.clocks[t].get(t) == 0 {
                self.clocks[t].set(t, 1);
            }
        }
    }

    fn check_write_epoch(&self, t: usize, loc: MemLoc, second: AccessKind) -> Option<Race> {
        let &(wt, wc, wk) = self.last_write.get(&loc)?;
        if wt != t && self.clocks[t].get(wt) < wc {
            return Some(Race {
                loc,
                first: (wt, wk),
                second: (t, second),
            });
        }
        None
    }

    fn check_read_set(&self, t: usize, loc: MemLoc, second: AccessKind) -> Option<Race> {
        let rs = self.reads.get(&loc)?;
        for (&rt, &rc) in rs {
            if rt != t && self.clocks[t].get(rt) < rc {
                return Some(Race {
                    loc,
                    first: (rt, AccessKind::Read),
                    second: (t, second),
                });
            }
        }
        None
    }

    /// Feed one event; returns the first race found, if any.
    pub fn observe(&mut self, ev: &VmEvent) -> Option<Race> {
        match *ev {
            VmEvent::Read { tid, loc } => {
                self.touch(tid);
                if let Some(race) = self.check_write_epoch(tid, loc, AccessKind::Read) {
                    return Some(race);
                }
                let epoch = self.clocks[tid].get(tid);
                self.reads.entry(loc).or_default().insert(tid, epoch);
            }
            VmEvent::Write { tid, loc } => {
                self.touch(tid);
                if let Some(race) = self.check_write_epoch(tid, loc, AccessKind::Write) {
                    return Some(race);
                }
                if let Some(race) = self.check_read_set(tid, loc, AccessKind::Write) {
                    return Some(race);
                }
                let epoch = self.clocks[tid].get(tid);
                self.last_write.insert(loc, (tid, epoch, AccessKind::Write));
                // Every prior read happens-before this write now; later
                // conflicts are caught against the write epoch.
                self.reads.remove(&loc);
            }
            VmEvent::AtomicRw { tid, loc } => {
                self.touch(tid);
                // Acquire the location's release clock first so
                // atomic/atomic pairs are ordered and never flagged.
                if let Some(vc) = self.atomic_vc.get(&loc) {
                    self.clocks[tid].join(&vc.clone());
                }
                if let Some(race) = self.check_write_epoch(tid, loc, AccessKind::Atomic) {
                    return Some(race);
                }
                if let Some(race) = self.check_read_set(tid, loc, AccessKind::Atomic) {
                    return Some(race);
                }
                let epoch = self.clocks[tid].get(tid);
                self.last_write
                    .insert(loc, (tid, epoch, AccessKind::Atomic));
                self.reads.remove(&loc);
                let snapshot = self.clocks[tid].clone();
                self.atomic_vc.entry(loc).or_default().join(&snapshot);
                self.clocks[tid].incr(tid);
            }
            VmEvent::LockAcq { tid, mutex } => {
                self.touch(tid);
                if let Some(vc) = self.mutex_vc.get(&mutex) {
                    self.clocks[tid].join(&vc.clone());
                }
            }
            VmEvent::LockRel { tid, mutex } | VmEvent::CondRelease { tid, mutex, .. } => {
                self.touch(tid);
                self.mutex_vc.insert(mutex, self.clocks[tid].clone());
                self.clocks[tid].incr(tid);
            }
            VmEvent::SemAcq { tid, sem } => {
                self.touch(tid);
                if let Some(vc) = self.sem_vc.get(&sem) {
                    self.clocks[tid].join(&vc.clone());
                }
            }
            VmEvent::SemRel { tid, sem } => {
                self.touch(tid);
                let snapshot = self.clocks[tid].clone();
                self.sem_vc.entry(sem).or_default().join(&snapshot);
                self.clocks[tid].incr(tid);
            }
            VmEvent::ChanSend { tid, chan } => {
                self.touch(tid);
                let snapshot = self.clocks[tid].clone();
                self.chan_vc.entry(chan).or_default().push_back(snapshot);
                self.clocks[tid].incr(tid);
            }
            VmEvent::ChanRecv { tid, chan } => {
                self.touch(tid);
                if let Some(vc) = self.chan_vc.entry(chan).or_default().pop_front() {
                    self.clocks[tid].join(&vc);
                }
            }
            VmEvent::Spawned { parent, child } => {
                self.touch(parent);
                let mut c = self.clocks[parent].clone();
                c.incr(child);
                if self.clocks.len() <= child {
                    self.clocks.resize(child + 1, VectorClock::default());
                    self.inited.resize(child + 1, false);
                }
                self.clocks[child] = c;
                self.inited[child] = true;
                self.clocks[parent].incr(parent);
            }
            VmEvent::Joined { tid, target } => {
                self.touch(tid);
                self.touch(target);
                let cu = self.clocks[target].clone();
                self.clocks[tid].join(&cu);
            }
            VmEvent::CondAcquire { tid, cv, mutex } => {
                self.touch(tid);
                if let Some(vc) = self.mutex_vc.get(&mutex) {
                    self.clocks[tid].join(&vc.clone());
                }
                if let Some(vc) = self.cond_vc.get(&cv) {
                    self.clocks[tid].join(&vc.clone());
                }
            }
            VmEvent::CondNotify { tid, cv } => {
                self.touch(tid);
                let snapshot = self.clocks[tid].clone();
                self.cond_vc.entry(cv).or_default().join(&snapshot);
                self.clocks[tid].incr(tid);
            }
        }
        None
    }
}

/// FNV-1a accumulator for [`RaceDetector::digest`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(slot: usize) -> MemLoc {
        MemLoc::Global(slot)
    }

    #[test]
    fn unordered_write_write_races() {
        let mut d = RaceDetector::new();
        assert!(d
            .observe(&VmEvent::Spawned {
                parent: 0,
                child: 1
            })
            .is_none());
        assert!(d.observe(&VmEvent::Write { tid: 0, loc: g(3) }).is_none());
        let race = d
            .observe(&VmEvent::Write { tid: 1, loc: g(3) })
            .expect("race");
        assert_eq!(race.loc, g(3));
        assert_eq!(race.first.0, 0);
        assert_eq!(race.second.0, 1);
    }

    #[test]
    fn mutex_orders_accesses() {
        let mut d = RaceDetector::new();
        d.observe(&VmEvent::Spawned {
            parent: 0,
            child: 1,
        });
        d.observe(&VmEvent::LockAcq { tid: 0, mutex: 0 });
        assert!(d.observe(&VmEvent::Write { tid: 0, loc: g(1) }).is_none());
        d.observe(&VmEvent::LockRel { tid: 0, mutex: 0 });
        d.observe(&VmEvent::LockAcq { tid: 1, mutex: 0 });
        assert!(
            d.observe(&VmEvent::Write { tid: 1, loc: g(1) }).is_none(),
            "lock ordered"
        );
        d.observe(&VmEvent::LockRel { tid: 1, mutex: 0 });
    }

    #[test]
    fn atomics_never_race_with_atomics_but_do_with_plain() {
        let mut d = RaceDetector::new();
        d.observe(&VmEvent::Spawned {
            parent: 0,
            child: 1,
        });
        assert!(d
            .observe(&VmEvent::AtomicRw { tid: 0, loc: g(2) })
            .is_none());
        assert!(
            d.observe(&VmEvent::AtomicRw { tid: 1, loc: g(2) })
                .is_none(),
            "atomic pair is ordered"
        );
        let race = d.observe(&VmEvent::Write { tid: 0, loc: g(2) });
        assert!(race.is_some(), "plain write vs atomic must race");
    }

    #[test]
    fn spawn_and_join_are_edges() {
        let mut d = RaceDetector::new();
        assert!(d.observe(&VmEvent::Write { tid: 0, loc: g(0) }).is_none());
        d.observe(&VmEvent::Spawned {
            parent: 0,
            child: 1,
        });
        assert!(
            d.observe(&VmEvent::Write { tid: 1, loc: g(0) }).is_none(),
            "spawn edge"
        );
        d.observe(&VmEvent::Joined { tid: 0, target: 1 });
        assert!(
            d.observe(&VmEvent::Read { tid: 0, loc: g(0) }).is_none(),
            "join edge"
        );
    }

    #[test]
    fn channel_send_orders_before_recv() {
        let mut d = RaceDetector::new();
        d.observe(&VmEvent::Spawned {
            parent: 0,
            child: 1,
        });
        assert!(d.observe(&VmEvent::Write { tid: 0, loc: g(5) }).is_none());
        d.observe(&VmEvent::ChanSend { tid: 0, chan: 0 });
        d.observe(&VmEvent::ChanRecv { tid: 1, chan: 0 });
        assert!(
            d.observe(&VmEvent::Write { tid: 1, loc: g(5) }).is_none(),
            "message edge"
        );
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut d = RaceDetector::new();
        d.observe(&VmEvent::Spawned {
            parent: 0,
            child: 1,
        });
        assert!(d.observe(&VmEvent::Read { tid: 0, loc: g(9) }).is_none());
        assert!(d.observe(&VmEvent::Read { tid: 1, loc: g(9) }).is_none());
    }
}
