//! The exploration engine: a controlled scheduler driving [`minilang::Vm`]
//! one visible operation at a time, with DFS + sleep-set pruning, random
//! walks, wait-for-graph deadlock detection and schedule minimization.

use crate::clocks::RaceDetector;
use crate::rng::SplitMix64;
use crate::{CheckConfig, CheckReport, CheckStats, Strategy, Verdict};
use minilang::{
    OpKey, OpKind, OpObj, Program, RuntimeError, SchedPolicy, Vm, VmConfig, VmEvent, VmSnapshot,
    WaitTarget,
};

/// Why a single controlled execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Stop {
    /// Every thread ran to completion without incident.
    Finished,
    /// A failure to report (race / deadlock / livelock / runtime error).
    Failure(Verdict),
    /// Step or instruction budget ran out mid-schedule.
    Truncated,
}

/// One controlled execution of a program under an external scheduler.
pub(crate) struct Exec {
    vm: Vm,
    detector: RaceDetector,
    /// Thread ids chosen so far, one per visible step (the repro schedule).
    pub(crate) schedule: Vec<usize>,
    /// Visible steps taken.
    pub(crate) steps: u64,
    /// Visible steps *executed* over this Exec's lifetime. Monotone:
    /// unlike `steps`, a restore does not rewind it — the difference
    /// between accounted and executed steps is the snapshot path's win.
    pub(crate) work_steps: u64,
    /// Last step index at which the program visibly changed state
    /// (write / atomic / acquire / release / finish) — livelock heuristic.
    last_change: u64,
    max_steps: u64,
    livelock_window: u64,
    /// Reusable drain buffer: event draining swaps buffers instead of
    /// allocating a fresh `Vec` per visible step.
    ev_buf: Vec<VmEvent>,
}

/// Everything [`Exec::restore`] needs to rewind to a branch point: the VM
/// snapshot plus the checker-side mirrors that advance with it.
pub(crate) struct ExecSnapshot {
    vm: VmSnapshot,
    detector: RaceDetector,
    schedule_len: usize,
    steps: u64,
    last_change: u64,
}

impl Exec {
    pub(crate) fn new(program: &Program, cfg: &CheckConfig) -> Exec {
        let mut vm = Vm::new(
            program.clone(),
            VmConfig {
                seed: 0,
                quantum: 1,
                max_instructions: cfg.max_instructions,
                policy: SchedPolicy::RoundRobin,
            },
        );
        vm.set_recording(true);
        let mut ex = Exec {
            vm,
            detector: RaceDetector::new(),
            schedule: Vec::new(),
            steps: 0,
            work_steps: 0,
            last_change: 0,
            max_steps: cfg.steps_per_schedule,
            livelock_window: cfg.livelock_window,
            ev_buf: Vec::new(),
        };
        ex.normalize();
        ex
    }

    /// Capture the branch-point state. The detector travels with the VM:
    /// its clocks are as much "where we are" as the thread stacks.
    pub(crate) fn snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            vm: self.vm.snapshot(),
            detector: self.detector.clone(),
            schedule_len: self.schedule.len(),
            steps: self.steps,
            last_change: self.last_change,
        }
    }

    /// Rewind to `snap` (restorable any number of times). `work_steps`
    /// deliberately keeps counting.
    pub(crate) fn restore(&mut self, snap: &ExecSnapshot) {
        self.vm.restore(&snap.vm);
        self.detector.clone_from(&snap.detector);
        self.schedule.truncate(snap.schedule_len);
        self.steps = snap.steps;
        self.last_change = snap.last_change;
    }

    /// Canonical digest of the abstract checker state (VM state + detector
    /// happens-before state), the visited-state cache key. Path artifacts
    /// — the schedule, step counters — are excluded by construction.
    pub(crate) fn state_hash(&self) -> u64 {
        self.vm.state_hash() ^ self.detector.digest().rotate_left(31)
    }

    /// Run every thread's *invisible* (thread-local) prefix so each enabled
    /// thread is parked exactly at its next visible operation. Invisible
    /// ops emit no events and commute with everything, so eager execution
    /// never hides an interleaving.
    fn normalize(&mut self) -> Option<Stop> {
        loop {
            let mut progressed = false;
            for tid in 0..self.vm.thread_count() {
                while self.vm.is_enabled(tid) && self.vm.next_op(tid).is_none() {
                    if let Err(e) = self.vm.step_thread(tid, 1) {
                        return Some(self.runtime_stop(e));
                    }
                    progressed = true;
                }
            }
            if !progressed {
                // Drain events from finish bookkeeping; invisible ops emit
                // none, but a thread finishing can unblock joiners.
                let mut buf = std::mem::take(&mut self.ev_buf);
                self.vm.drain_events_into(&mut buf);
                let mut found = None;
                for ev in &buf {
                    if let Some(race) = self.detector.observe(ev) {
                        found = Some(Stop::Failure(Verdict::race(&race)));
                        break;
                    }
                }
                self.ev_buf = buf;
                return found;
            }
        }
    }

    fn runtime_stop(&mut self, e: RuntimeError) -> Stop {
        match e {
            RuntimeError::BudgetExhausted { .. } => Stop::Truncated,
            RuntimeError::Deadlock { blocked } => Stop::Failure(Verdict::Deadlock {
                blocked,
                cycle: Vec::new(),
            }),
            other => Stop::Failure(Verdict::RuntimeError {
                error: other.to_string(),
            }),
        }
    }

    /// Threads that can take a visible step *right now* without blocking.
    pub(crate) fn enabled(&self) -> Vec<usize> {
        (0..self.vm.thread_count())
            .filter(|&t| self.vm.is_enabled(t) && !self.vm.op_would_block(t))
            .collect()
    }

    /// Peek thread `t`'s pending visible op (normalized threads always have
    /// one unless finished).
    pub(crate) fn pending_op(&self, t: usize) -> Option<OpKey> {
        self.vm.next_op(t)
    }

    /// Check for termination / global deadlock / livelock before choosing.
    /// `None` means the execution can continue.
    pub(crate) fn status(&mut self) -> Option<Stop> {
        if self.vm.all_finished() {
            return Some(Stop::Finished);
        }
        if self.steps >= self.max_steps {
            return Some(Stop::Truncated);
        }
        if self.enabled().is_empty() {
            if self.vm.advance_clock() {
                if let Some(stop) = self.normalize() {
                    return Some(stop);
                }
                return self.status();
            }
            // Nobody can move: threads in a Blocked state, plus runnable
            // threads parked one instruction before an op that would block
            // forever. Either way, global deadlock; name the cycle if the
            // mutex/join wait-for graph has one.
            let cycle = self.wait_cycle();
            return Some(Stop::Failure(Verdict::Deadlock {
                blocked: self.blocked_lines(),
                cycle,
            }));
        }
        if self.steps.saturating_sub(self.last_change) >= self.livelock_window {
            let spinning = self.vm.enabled_threads();
            return Some(Stop::Failure(Verdict::Livelock { spinning }));
        }
        None
    }

    /// One line per unfinished waiting thread, covering both truly blocked
    /// threads and runnable ones parked at an op that would block.
    fn blocked_lines(&self) -> Vec<String> {
        (0..self.vm.thread_count())
            .filter(|&t| !self.vm.thread_finished(t))
            .filter_map(|t| {
                self.vm
                    .wait_target(t)
                    .map(|w| format!("t{t} waiting on {w:?}"))
            })
            .collect()
    }

    /// Wait-for graph cycle via precise edges only: a thread waiting on a
    /// mutex waits for its owner; a joiner waits for its target. (Semaphore
    /// and channel waits have no single "holder", so they contribute no
    /// edge — a cycle through them still surfaces as a global deadlock with
    /// an empty cycle list.)
    fn wait_cycle(&self) -> Vec<usize> {
        let n = self.vm.thread_count();
        let edge: Vec<Option<usize>> = (0..n)
            .map(|t| match self.vm.wait_target(t) {
                Some(WaitTarget::Mutex(m)) => self.vm.mutex_owner(m).filter(|&o| o != t),
                Some(WaitTarget::Join(u)) if !self.vm.thread_finished(u) => Some(u),
                _ => None,
            })
            .collect();
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut t = start;
            while let Some(next) = edge[t] {
                if next == start {
                    let mut cycle = vec![start];
                    let mut c = edge[start];
                    while let Some(x) = c {
                        if x == start {
                            break;
                        }
                        cycle.push(x);
                        c = edge[x];
                    }
                    return cycle;
                }
                if seen[next] {
                    break;
                }
                seen[next] = true;
                t = next;
            }
        }
        Vec::new()
    }

    /// Thread `t`'s current FastTrack epoch (its own clock component):
    /// the happens-before stamp its next visible step will carry.
    pub(crate) fn epoch_of(&self, t: usize) -> u64 {
        self.detector.epoch(t)
    }

    /// Component `q` of thread `p`'s clock: a past step by `q` at epoch
    /// `e` happens-before `p`'s next step iff `clock_component(p, q) >= e`.
    pub(crate) fn clock_component(&self, p: usize, q: usize) -> u64 {
        self.detector.clock_component(p, q)
    }

    /// Take one visible step of thread `tid`, then re-normalize. The caller
    /// must have verified `tid` is in [`Exec::enabled`].
    pub(crate) fn step(&mut self, tid: usize) -> Option<Stop> {
        self.schedule.push(tid);
        self.steps += 1;
        self.work_steps += 1;
        if let Err(e) = self.vm.step_thread(tid, 1) {
            return Some(self.runtime_stop(e));
        }
        let mut buf = std::mem::take(&mut self.ev_buf);
        self.vm.drain_events_into(&mut buf);
        let mut found = None;
        for ev in &buf {
            use minilang::VmEvent::*;
            match ev {
                Write { .. }
                | AtomicRw { .. }
                | LockAcq { .. }
                | LockRel { .. }
                | SemAcq { .. }
                | SemRel { .. }
                | ChanSend { .. }
                | ChanRecv { .. }
                | Spawned { .. }
                | Joined { .. }
                | CondRelease { .. }
                | CondAcquire { .. }
                | CondNotify { .. } => self.last_change = self.steps,
                Read { .. } => {}
            }
            if let Some(race) = self.detector.observe(ev) {
                found = Some(Stop::Failure(Verdict::race(&race)));
                break;
            }
        }
        self.ev_buf = buf;
        if found.is_some() {
            return found;
        }
        if self.vm.thread_finished(tid) {
            self.last_change = self.steps;
        }
        self.normalize()
    }
}

/// Do two op keys commute (are independent)? Used by sleep sets (a pruned
/// choice stays asleep while only independent ops execute) and by DPOR's
/// dependence scans. The relation itself lives with the op vocabulary in
/// [`minilang::OpKey::commutes_with`], so external schedulers share one
/// definition.
pub(crate) fn independent(a: &OpKey, b: &OpKey) -> bool {
    a.commutes_with(b)
}

/// Replay a previously reported repro `schedule` from scratch. Entries
/// naming threads that are not currently enabled are skipped (the schedule
/// is a guide, not a transcript); once the schedule is exhausted the
/// remaining threads run round-robin to completion.
pub(crate) fn run_schedule(program: &Program, cfg: &CheckConfig, schedule: &[usize]) -> Stop {
    let mut ex = Exec::new(program, cfg);
    let mut i = 0;
    loop {
        if let Some(stop) = ex.status() {
            return stop;
        }
        let en = ex.enabled();
        let tid = loop {
            match schedule.get(i) {
                Some(&t) => {
                    i += 1;
                    if en.contains(&t) {
                        break t;
                    }
                }
                None => break en[0], // schedule done: finish round-robin
            }
        };
        if let Some(stop) = ex.step(tid) {
            return stop;
        }
    }
}

struct Budget {
    schedules_left: u64,
    steps_left: u64,
}

impl Budget {
    fn spend(&mut self, ex: &Exec) {
        self.schedules_left = self.schedules_left.saturating_sub(1);
        self.steps_left = self.steps_left.saturating_sub(ex.steps);
    }
    fn empty(&self) -> bool {
        self.schedules_left == 0 || self.steps_left == 0
    }
}

struct DfsOutcome {
    failure: Option<(Verdict, Vec<usize>)>,
    /// True if the subtree was fully explored within budget/depth.
    complete: bool,
    /// True if nothing was lost to budget truncation or the depth-cap
    /// fallback — children skipped *by the preemption bound* still count
    /// as covered. Equals `complete` when no bound prunes anything.
    within_bound: bool,
}

/// One schedule spent by DFS, in traversal order. Parallel workers record
/// these so the coordinator can replay the serial budget arithmetic over
/// them and land on a bit-for-bit identical report (see `crate::pool`).
#[derive(Debug, Clone)]
pub(crate) struct SchedEntry {
    /// Visible steps this schedule took.
    pub(crate) steps: u64,
    /// The failure it stopped on, with its repro schedule.
    pub(crate) failure: Option<(Verdict, Vec<usize>)>,
}

/// Bounded, deterministic FIFO set of canonical state hashes — the
/// visited-state cache. Eviction order is insertion order, never hash
/// order, so a given (program, config) explores the same tree every run.
struct StateCache {
    set: std::collections::HashSet<u64>,
    order: std::collections::VecDeque<u64>,
    cap: usize,
}

impl StateCache {
    fn new(cap: usize) -> StateCache {
        StateCache {
            set: std::collections::HashSet::with_capacity(cap.min(1 << 16)),
            order: std::collections::VecDeque::new(),
            cap,
        }
    }

    /// Insert `h`; false means it was already present (a hit).
    fn insert(&mut self, h: u64) -> bool {
        if !self.set.insert(h) {
            return false;
        }
        self.order.push_back(h);
        if self.order.len() > self.cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        true
    }
}

/// Where an executed step on the current DFS path came from — the target
/// DPOR backtrack insertions resolve against.
#[derive(Debug, Clone, Copy)]
enum StepOrigin {
    /// The only choice at its state (or a prefix step a worker replayed):
    /// nothing to backtrack to.
    Forced,
    /// Child of the live branch frame at this index in `Dfs::frames`.
    Frame(usize),
    /// The dealt root-branch choice of a parallel shard. Insertions here
    /// are recorded into `Dfs::unit_backtrack` for the coordinator, which
    /// owns the root frame (see `crate::pool`).
    UnitRoot,
}

/// One executed visible step on the current DFS path, with the
/// happens-before stamp DPOR's dependence scan tests against.
#[derive(Debug, Clone)]
struct PathStep {
    tid: usize,
    op: OpKey,
    /// `tid`'s own clock component when the step ran (pre-step). A later
    /// pending op of thread `p` is ordered after this step iff `p`'s
    /// clock component for `tid` has reached this value.
    epoch: u64,
    origin: StepOrigin,
}

/// A live DPOR branch point: the enabled candidates and which of them the
/// search has committed to explore. Children are *earned*, not enumerated:
/// the frame starts with one member and grows when a later pending op is
/// found dependent on (and unordered with) one of its children's steps.
#[derive(Debug)]
struct DporFrame {
    /// Enabled threads with pending ops at the branch state, ascending.
    enabled: Vec<usize>,
    /// Members committed for exploration (insertion order; picks are by
    /// ascending thread id so exploration order is canonical).
    backtrack: Vec<usize>,
    /// Members already picked (explored or bound-pruned).
    done: Vec<usize>,
    /// `Dfs::path_log` length at the branch state; restores truncate to it.
    path_len: usize,
}

impl DporFrame {
    /// Add `t` unless already committed; true if it was new.
    fn add(&mut self, t: usize) -> bool {
        if self.backtrack.contains(&t) || self.done.contains(&t) {
            return false;
        }
        self.backtrack.push(t);
        true
    }

    /// Next member to explore: lowest-id committed-but-not-done thread.
    fn next_member(&self) -> Option<usize> {
        self.backtrack
            .iter()
            .copied()
            .filter(|t| !self.done.contains(t))
            .min()
    }
}

/// Cap on how many *candidate* entries one dependence scan may examine.
/// Scans walk per-object conflict lists (see [`ConflictIndex`]), so they
/// normally examine a handful of entries regardless of path length; a
/// pathological scan that exceeds the cap gives up the exhaustiveness
/// claim (never soundness — verdicts are unaffected, only
/// `complete`/`exhaustive_within_bound` drop to false).
const DPOR_SCAN_CAP: usize = 4096;

/// Per-object index over `Dfs::path_log`: for each shared object the
/// ascending path indexes of logged steps touching it, plus the
/// always-conflicting (`Opaque`/`Io`) steps. The dependence scan walks one
/// object's list instead of the whole path, so deep schedules (thousands
/// of visible steps) stay scannable without an O(path²) blowup.
#[derive(Debug, Default)]
struct ConflictIndex {
    by_obj: std::collections::HashMap<OpObj, Vec<usize>>,
    /// `Opaque`/`Io` steps: dependent with every operation.
    wildcard: Vec<usize>,
}

impl ConflictIndex {
    /// Index path step `i` (must be pushed in path order).
    fn push(&mut self, i: usize, op: &OpKey) {
        if matches!(op.kind, OpKind::Opaque | OpKind::Io) {
            self.wildcard.push(i);
        } else if op.obj != OpObj::None {
            self.by_obj.entry(op.obj).or_default().push(i);
        }
        // `OpObj::None` with a benign kind (spawn/yield) commutes with
        // everything except the wildcard kinds: never a candidate.
    }

    /// Drop every indexed step at path position `len` or later (mirror of
    /// `path_log.truncate(len)` on a branch restore).
    fn truncate(&mut self, len: usize) {
        while self.wildcard.last().is_some_and(|&i| i >= len) {
            self.wildcard.pop();
        }
        for list in self.by_obj.values_mut() {
            while list.last().is_some_and(|&i| i >= len) {
                list.pop();
            }
        }
    }
}

/// Bounded DFS with sleep sets, in one of two modes sharing all policy
/// code (sleep filtering, pruning, budget spends, trace recording):
///
/// * **snapshot** (`cfg.snapshot_prefix`, the default): one [`Exec`] per
///   entry path; each branch point takes an [`ExecSnapshot`] and siblings
///   restore it, so the shared prefix executes once. Optionally backed by
///   the visited-state cache.
/// * **stateless** (the original engine, kept as the reference): each
///   frame re-executes the program from scratch along `branch_path`.
///
/// Both modes spend schedules at the same points with the same step
/// counts, so reports — and recorded [`SchedEntry`] traces — are
/// bit-identical between them.
struct Dfs<'a> {
    program: &'a Program,
    cfg: &'a CheckConfig,
    budget: Budget,
    schedules: u64,
    steps: u64,
    /// When recording (parallel workers), every spend appends here.
    trace: Vec<SchedEntry>,
    record: bool,
    /// Whether a budget check site ran since the last spend. The merge
    /// needs this to reproduce serial's `complete = false` when the budget
    /// dies exactly on a shard's final schedule: serial would still reach
    /// one more check and notice, even though no further schedule runs.
    checked_since_spend: bool,
    /// Visited-state cache (snapshot mode only; `None` when disabled).
    cache: Option<StateCache>,
    /// Execution-cost counters surfaced through `check_with_stats`.
    stats: CheckStats,
    /// DPOR: every visible step on the current path, in order.
    path_log: Vec<PathStep>,
    /// DPOR: per-object index over `path_log` for the dependence scan.
    conflicts: ConflictIndex,
    /// DPOR: live branch frames, root-to-leaf.
    frames: Vec<DporFrame>,
    /// DPOR, parallel shards: the root-branch enabled set this unit's
    /// dealt choice was drawn from (`None` when this Dfs owns the whole
    /// tree and keeps the root as a real frame).
    unit_root_enabled: Option<Vec<usize>>,
    /// DPOR, parallel shards: root-frame backtrack additions earned while
    /// exploring this shard, for the coordinator's membership loop.
    unit_backtrack: std::collections::BTreeSet<usize>,
    /// A dependence scan hit [`DPOR_SCAN_CAP`]: exhaustiveness is forfeit.
    scan_capped: bool,
}

impl<'a> Dfs<'a> {
    fn new(program: &'a Program, cfg: &'a CheckConfig, schedules_left: u64, record: bool) -> Self {
        Dfs {
            program,
            cfg,
            budget: Budget {
                schedules_left,
                steps_left: cfg.max_steps,
            },
            schedules: 0,
            steps: 0,
            trace: Vec::new(),
            record,
            checked_since_spend: false,
            cache: (!cfg.dpor && cfg.snapshot_prefix && cfg.state_cache_capacity > 0)
                .then(|| StateCache::new(cfg.state_cache_capacity)),
            stats: CheckStats::default(),
            path_log: Vec::new(),
            conflicts: ConflictIndex::default(),
            frames: Vec::new(),
            unit_root_enabled: None,
            unit_backtrack: std::collections::BTreeSet::new(),
            scan_capped: false,
        }
    }

    /// Explore all schedules extending `path`, dispatching on engine mode.
    /// `preemptions` is the preemptive-switch count the path itself has
    /// already paid (nonzero only for dealt parallel shards).
    fn run(
        &mut self,
        path: &[usize],
        sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        let mut out = if self.cfg.dpor {
            // DPOR always runs on the snapshot engine: restoring a branch
            // snapshot is what makes per-sibling re-exploration cheap
            // enough for the backtrack sets to pay off.
            self.explore_path_dpor(path, depth, preemptions)
        } else if self.cfg.snapshot_prefix {
            self.explore_path(path, sleep, depth, preemptions)
        } else {
            self.explore_stateless(&mut path.to_vec(), sleep, depth, preemptions)
        };
        if self.scan_capped {
            out.complete = false;
            out.within_bound = false;
        }
        out
    }

    /// Account a Stop: turn it into the outcome the owning frame returns,
    /// spending the schedule. (Shared by both engine modes — keeping every
    /// spend in one shape is what keeps their traces identical.)
    fn stop_outcome(&mut self, ex: &Exec, stop: Stop) -> DfsOutcome {
        let complete = !matches!(stop, Stop::Truncated);
        let failure = match stop {
            Stop::Failure(v) => Some((v, ex.schedule.clone())),
            _ => None,
        };
        self.spend(ex, &failure);
        DfsOutcome {
            failure,
            complete,
            within_bound: complete,
        }
    }

    /// Snapshot-mode entry: replay `path` once on a fresh Exec (exactly the
    /// stateless prefix-consumption semantics, including the sleep filter
    /// on the final branch choice), then continue in place.
    fn explore_path(
        &mut self,
        path: &[usize],
        sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        let mut ex = Exec::new(self.program, self.cfg);
        let out = self.explore_path_in(&mut ex, path, sleep, depth, preemptions);
        self.stats.vm_steps += ex.work_steps;
        out
    }

    fn explore_path_in(
        &mut self,
        ex: &mut Exec,
        path: &[usize],
        mut sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        let mut i = 0;
        while i < path.len() {
            if let Some(stop) = ex.status() {
                return self.stop_outcome(ex, stop);
            }
            let en = ex.enabled();
            let tid = if en.len() == 1 {
                en[0]
            } else {
                let t = path[i];
                i += 1;
                t
            };
            // The final branch choice starts this frame's own segment: it
            // wakes conflicting sleepers (ops deeper in the prefix were
            // filtered by the frames that handed us `sleep`).
            if i == path.len() {
                match ex.pending_op(tid) {
                    Some(op) => sleep.retain(|(_, sop)| independent(sop, &op)),
                    None => sleep.clear(),
                }
            }
            if let Some(stop) = ex.step(tid) {
                return self.stop_outcome(ex, stop);
            }
        }
        self.explore_from(ex, sleep, depth, preemptions)
    }

    /// The snapshot-mode engine: `ex` sits just past this frame's last
    /// branch choice. Advance through single-choice points (with the same
    /// sleep pruning/filtering the stateless frame applies on its own
    /// segment); at a branch, snapshot once and restore per sibling.
    fn explore_from(
        &mut self,
        ex: &mut Exec,
        mut sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        let en = loop {
            if let Some(stop) = ex.status() {
                return self.stop_outcome(ex, stop);
            }
            let en = ex.enabled();
            if en.len() > 1 {
                break en;
            }
            let t = en[0];
            // If the lone enabled thread is asleep on this frame's own
            // segment, the continuation is equivalent to an explored one.
            if sleep.iter().any(|&(st, _)| st == t) {
                self.spend(ex, &None);
                return DfsOutcome {
                    failure: None,
                    complete: true,
                    within_bound: true,
                };
            }
            match ex.pending_op(t) {
                Some(op) => sleep.retain(|(_, sop)| independent(sop, &op)),
                None => sleep.clear(),
            }
            if let Some(stop) = ex.step(t) {
                return self.stop_outcome(ex, stop);
            }
        };

        if depth >= self.cfg.dfs_depth {
            // Too deep to enumerate: finish this one path first-choice and
            // mark the subtree incomplete.
            let outcome = self.finish_one(ex, en[0]);
            return DfsOutcome {
                failure: outcome.failure,
                complete: false,
                within_bound: false,
            };
        }

        // Visited-state pruning: a branch state explored before (possibly
        // along a different path) contributes nothing new. Never active on
        // the parallel path — `Pool::check` forces serial when the cache
        // is on, so merge arithmetic never sees a pruned trace.
        if let Some(cache) = self.cache.as_mut() {
            if !cache.insert(ex.state_hash()) {
                self.stats.state_cache_hits += 1;
                self.stats.state_cache_prunes += 1;
                self.spend(ex, &None);
                return DfsOutcome {
                    failure: None,
                    complete: true,
                    within_bound: true,
                };
            }
        }

        // A switch away from the thread that took the last step, while it
        // is still enabled here, costs one preemption (see `preempt_cost`).
        let last = ex.schedule.last().copied();
        let snap = ex.snapshot();
        self.stats.snapshots += 1;
        let prefix_steps = ex.steps;
        let mut dirty = false;
        let mut complete = true;
        let mut within = true;
        for &t in &en {
            let cost = preempt_cost(last, t, &en);
            if let Some(b) = self.cfg.preemption_bound {
                if preemptions + cost > b {
                    // Outside the bound by design: not counted against
                    // `within_bound`, never put to sleep (it was not
                    // explored, so nothing may prune against it), and no
                    // budget check (serial and merge agree on that).
                    self.stats.bound_pruned += 1;
                    complete = false;
                    continue;
                }
            }
            self.checked_since_spend = true;
            if self.budget.empty() {
                complete = false;
                within = false;
                break;
            }
            if dirty {
                ex.restore(&snap);
                dirty = false;
            }
            let Some(op_t) = ex.pending_op(t) else {
                continue;
            };
            if sleep.iter().any(|&(st, _)| st == t) {
                continue; // asleep: an equivalent schedule was already explored
            }
            // The child wakes any sleeper whose op conflicts with `op_t`.
            let child_sleep: Vec<(usize, OpKey)> = sleep
                .iter()
                .copied()
                .filter(|(_, sop)| independent(sop, &op_t))
                .collect();
            // A stateless child frame would now re-execute the prefix from
            // the root; the restore above replaced exactly that work.
            self.stats.replay_steps_saved += prefix_steps;
            dirty = true;
            let out = if let Some(stop) = ex.step(t) {
                self.stop_outcome(ex, stop)
            } else {
                self.explore_from(ex, child_sleep, depth + 1, preemptions + cost)
            };
            if out.failure.is_some() {
                return out;
            }
            complete &= out.complete;
            within &= out.within_bound;
            sleep.push((t, op_t));
        }
        DfsOutcome {
            failure: None,
            complete,
            within_bound: within,
        }
    }

    /// Account one finished/pruned/failed schedule — the single place all
    /// budget spending goes through, so worker traces cannot drift from
    /// the serial accounting.
    fn spend(&mut self, ex: &Exec, failure: &Option<(Verdict, Vec<usize>)>) {
        self.schedules += 1;
        self.steps += ex.steps;
        self.budget.spend(ex);
        if self.record {
            self.trace.push(SchedEntry {
                steps: ex.steps,
                failure: failure.clone(),
            });
        }
        self.checked_since_spend = false;
    }
    /// Explore all schedules extending `branch_path`. `sleep` maps a thread
    /// id to the op it had when put to sleep; entries are valid at the node
    /// this frame owns (just past its last branch choice) and are filtered
    /// against every op this frame executes beyond that point.
    ///
    /// This is the stateless reference engine: every frame replays the
    /// prefix from the root. The snapshot engine above must spend at the
    /// same points with the same step counts.
    fn explore_stateless(
        &mut self,
        branch_path: &mut Vec<usize>,
        sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        // Re-execute the prefix.
        let mut sleep = sleep;
        let mut ex = Exec::new(self.program, self.cfg);
        let mut i = 0;
        let mut pruned = false;
        let stop = loop {
            if let Some(stop) = ex.status() {
                break Some(stop);
            }
            let en = ex.enabled();
            let tid = if en.len() == 1 {
                // Single choice: not a branch point, take it inline. If the
                // lone enabled thread is asleep on this frame's own segment,
                // the continuation is equivalent to an explored one: prune.
                if i == branch_path.len() && sleep.iter().any(|&(st, _)| st == en[0]) {
                    pruned = true;
                    break None;
                }
                en[0]
            } else {
                match branch_path.get(i) {
                    Some(&t) => {
                        i += 1;
                        t
                    }
                    None => break None, // reached the frontier
                }
            };
            // Ops on this frame's own segment wake conflicting sleepers.
            // (Ops deeper in the prefix were filtered by ancestor frames.)
            if i == branch_path.len() {
                match ex.pending_op(tid) {
                    Some(op) => sleep.retain(|(_, sop)| independent(sop, &op)),
                    None => sleep.clear(),
                }
            }
            if let Some(stop) = ex.step(tid) {
                break Some(stop);
            }
        };
        if pruned {
            self.spend(&ex, &None);
            self.stats.vm_steps += ex.work_steps;
            return DfsOutcome {
                failure: None,
                complete: true,
                within_bound: true,
            };
        }
        if let Some(stop) = stop {
            let complete = !matches!(stop, Stop::Truncated);
            let failure = match stop {
                Stop::Failure(v) => Some((v, ex.schedule.clone())),
                _ => None,
            };
            self.spend(&ex, &failure);
            self.stats.vm_steps += ex.work_steps;
            return DfsOutcome {
                failure,
                complete,
                within_bound: complete,
            };
        }

        // At the frontier with >1 enabled thread: branch.
        let en = ex.enabled();
        let mut complete = true;
        let mut within = true;
        if depth >= self.cfg.dfs_depth {
            // Too deep to enumerate: finish this one path first-choice and
            // mark the subtree incomplete.
            let outcome = self.finish_one(&mut ex, en[0]);
            self.stats.vm_steps += ex.work_steps;
            return DfsOutcome {
                failure: outcome.failure,
                complete: false,
                within_bound: false,
            };
        }
        let last = ex.schedule.last().copied();
        for &t in &en {
            let cost = preempt_cost(last, t, &en);
            if let Some(b) = self.cfg.preemption_bound {
                if preemptions + cost > b {
                    self.stats.bound_pruned += 1;
                    complete = false;
                    continue; // outside the bound; never put to sleep
                }
            }
            self.checked_since_spend = true;
            if self.budget.empty() {
                complete = false;
                within = false;
                break;
            }
            let Some(op_t) = ex.pending_op(t) else {
                continue;
            };
            if sleep.iter().any(|&(st, _)| st == t) {
                continue; // asleep: an equivalent schedule was already explored
            }
            branch_path.push(t);
            // The child wakes any sleeper whose op conflicts with `op_t`.
            let child_sleep: Vec<(usize, OpKey)> = sleep
                .iter()
                .copied()
                .filter(|(_, sop)| independent(sop, &op_t))
                .collect();
            let out =
                self.explore_stateless(branch_path, child_sleep, depth + 1, preemptions + cost);
            branch_path.pop();
            if out.failure.is_some() {
                self.stats.vm_steps += ex.work_steps;
                return out;
            }
            complete &= out.complete;
            within &= out.within_bound;
            sleep.push((t, op_t));
        }
        self.stats.vm_steps += ex.work_steps;
        DfsOutcome {
            failure: None,
            complete,
            within_bound: within,
        }
    }

    /// Run `ex` to a stop taking `first` now, then rotating round-robin
    /// through the enabled threads — fair rotation keeps a busy-wait
    /// spinner from monopolizing the tail and masking cross-thread bugs.
    fn finish_one(&mut self, ex: &mut Exec, first: usize) -> DfsOutcome {
        let mut next = Some(first);
        let mut cursor = 0usize;
        let stop = loop {
            if let Some(stop) = ex.status() {
                break stop;
            }
            let tid = next.take().unwrap_or_else(|| {
                let en = ex.enabled();
                let t = en[cursor % en.len()];
                cursor += 1;
                t
            });
            if let Some(stop) = ex.step(tid) {
                break stop;
            }
        };
        let failure = match stop {
            Stop::Failure(v) => Some((v, ex.schedule.clone())),
            _ => None,
        };
        self.spend(ex, &failure);
        DfsOutcome {
            failure,
            complete: false,
            within_bound: false,
        }
    }

    // ---- DPOR engine -------------------------------------------------------

    /// DPOR entry: replay `path` (a dealt shard's root-branch choice, or
    /// nothing for a whole-tree run), logging each step so deeper
    /// dependence scans can see the prefix, then hand off to the frame
    /// loop. Prefix states are not scanned: every step behind them is
    /// forced or covered by the root deal, so insertions would be no-ops —
    /// except against the dealt choice itself, whose frame the coordinator
    /// owns (origin [`StepOrigin::UnitRoot`]).
    fn explore_path_dpor(&mut self, path: &[usize], depth: u32, preemptions: u32) -> DfsOutcome {
        let mut ex = Exec::new(self.program, self.cfg);
        let mut i = 0;
        let mut early = None;
        while i < path.len() {
            if let Some(stop) = ex.status() {
                early = Some(self.stop_outcome(&ex, stop));
                break;
            }
            let en = ex.enabled();
            let (tid, origin) = if en.len() == 1 {
                (en[0], StepOrigin::Forced)
            } else {
                let t = path[i];
                i += 1;
                let origin = if i == path.len() {
                    StepOrigin::UnitRoot
                } else {
                    StepOrigin::Forced
                };
                (t, origin)
            };
            if let Some(stop) = self.step_logged(&mut ex, tid, origin) {
                early = Some(self.stop_outcome(&ex, stop));
                break;
            }
        }
        let out = match early {
            Some(o) => o,
            // The inherited sleep set is always empty here: the tree's root
            // frame never propagates sibling sleep (see `explore_from_dpor`),
            // so both the serial root (trivially) and a dealt shard's root
            // choice start their subtrees asleep-free.
            None => self.explore_from_dpor(&mut ex, Vec::new(), depth, preemptions),
        };
        self.stats.vm_steps += ex.work_steps;
        out
    }

    /// Take one visible step, logging it on the DPOR path with its
    /// happens-before stamp so later dependence scans can test against it.
    fn step_logged(&mut self, ex: &mut Exec, tid: usize, origin: StepOrigin) -> Option<Stop> {
        if let Some(op) = ex.pending_op(tid) {
            self.conflicts.push(self.path_log.len(), &op);
            self.path_log.push(PathStep {
                tid,
                op,
                epoch: ex.epoch_of(tid),
                origin,
            });
        }
        ex.step(tid)
    }

    /// The DPOR dependence scan, run once per state on the path: for each
    /// thread's pending op — *including blocked threads*: a blocked
    /// `lock(m)` is dependent on the earlier `lock(m)` whose critical
    /// section it must be reordered before — find the most recent executed
    /// step by another thread that conflicts with it and is not already
    /// happens-ordered before it. Such a pair is reorderable, so the
    /// earlier step's branch must also try the pending op's thread — that
    /// is the backtrack insertion that *earns* DFS children instead of
    /// enumerating them.
    fn dpor_update(&mut self, ex: &Exec) {
        for p in 0..ex.vm.thread_count() {
            let Some(op_p) = ex.pending_op(p) else {
                continue;
            };
            let Some(i) = self.newest_conflict(p, &op_p) else {
                continue;
            };
            let s = &self.path_log[i];
            if ex.clock_component(p, s.tid) >= s.epoch {
                // Ordered after its newest conflict by synchronization: the
                // pair is not reorderable, and (Flanagan–Godefroid) earlier
                // conflicts need no insertion here — if reordering past
                // them matters, the subtree that reorders *this* pair will
                // see them as its own newest conflict.
                continue;
            }
            self.add_backtrack(i, p);
        }
    }

    /// The newest logged step by another thread that conflicts with `op_p`
    /// — the single candidate Flanagan–Godefroid's insertion rule tests.
    /// Walks the per-object and wildcard conflict lists from their tails,
    /// skipping own-thread and read/read entries, and returns the newer of
    /// the two survivors.
    fn newest_conflict(&mut self, p: usize, op_p: &OpKey) -> Option<usize> {
        let mut scanned = 0usize;
        let mut capped = false;
        // A wildcard pending op conflicts with every logged step: its
        // newest conflict is simply the newest step by another thread.
        if matches!(op_p.kind, OpKind::Opaque | OpKind::Io) {
            for i in (0..self.path_log.len()).rev() {
                scanned += 1;
                if scanned > DPOR_SCAN_CAP {
                    self.scan_capped = true;
                    return None;
                }
                if self.path_log[i].tid != p {
                    return Some(i);
                }
            }
            return None;
        }
        let same_obj: &[usize] = match op_p.obj {
            OpObj::None => &[], // benign no-object op: only wildcards conflict
            obj => self.conflicts.by_obj.get(&obj).map_or(&[], Vec::as_slice),
        };
        let mut best: Option<usize> = None;
        'list: for list in [same_obj, self.conflicts.wildcard.as_slice()] {
            for &i in list.iter().rev() {
                scanned += 1;
                if scanned > DPOR_SCAN_CAP {
                    capped = true;
                    break 'list;
                }
                let s = &self.path_log[i];
                if s.tid == p || (s.op.kind == OpKind::Read && op_p.kind == OpKind::Read) {
                    continue; // own step, or same-object read/read: commutes
                }
                best = Some(best.map_or(i, |b| b.max(i)));
                break;
            }
        }
        if capped {
            self.scan_capped = true;
        }
        best
    }

    /// Register thread `p` at the branch owning path step `i`
    /// (Flanagan–Godefroid insertion). Under a preemption bound the
    /// insertion is conservative — the whole enabled set — because bound
    /// pruning can cut the single representative DPOR would otherwise
    /// rely on (Coons et al.'s bounded-search correction).
    fn add_backtrack(&mut self, i: usize, p: usize) {
        let conservative = self.cfg.preemption_bound.is_some();
        match self.path_log[i].origin {
            StepOrigin::Forced => {} // sole choice at its state: nothing to add
            StepOrigin::Frame(fi) => {
                let f = &mut self.frames[fi];
                if !conservative && f.enabled.contains(&p) {
                    if f.add(p) {
                        self.stats.dpor_backtracks += 1;
                    }
                } else {
                    for q in f.enabled.clone() {
                        if self.frames[fi].add(q) {
                            self.stats.dpor_backtracks += 1;
                        }
                    }
                }
            }
            StepOrigin::UnitRoot => {
                let root = self.unit_root_enabled.clone().unwrap_or_default();
                if !conservative && root.contains(&p) {
                    if self.unit_backtrack.insert(p) {
                        self.stats.dpor_backtracks += 1;
                    }
                } else {
                    for q in root {
                        if self.unit_backtrack.insert(q) {
                            self.stats.dpor_backtracks += 1;
                        }
                    }
                }
            }
        }
    }

    /// The DPOR frame loop, mirror of `explore_from`: advance through
    /// forced states (scanning each), then open a branch frame seeded with
    /// one member and explore members as the backtrack set grows. The
    /// membership evolution (seed = lowest-id candidate, picks by
    /// ascending id, additions unioned after each child) is exactly what
    /// `crate::pool`'s coordinator replays over dealt shards.
    ///
    /// Backtrack sets compose with classic sleep sets (Godefroid): an
    /// explored member is put to sleep for its later siblings, whose
    /// subtrees skip it until a dependent op wakes it. Without this the
    /// backtrack sets alone re-explore interleavings the sleep-set DFS
    /// baseline prunes, and "DPOR ≤ DFS schedules" fails on lock-heavy
    /// programs. Two deliberate exceptions keep the composition sound:
    ///
    /// - The tree's *root* frame never propagates sibling sleep. Dealt
    ///   shards (`crate::pool`) run speculatively before the membership
    ///   order is known, so their inherited sleep must not depend on it;
    ///   serial skips the same pushes to stay bit-identical.
    /// - Under a preemption bound, no frame propagates sleep. A slept
    ///   member's behaviors are only covered by an earlier sibling's
    ///   subtree *as explored*, and bound pruning may have cut exactly the
    ///   representative the sleep prune relies on — the bounded search
    ///   keeps only the conservative whole-frame insertions (Coons et
    ///   al.) and forgoes sleep reduction.
    fn explore_from_dpor(
        &mut self,
        ex: &mut Exec,
        mut sleep: Vec<(usize, OpKey)>,
        depth: u32,
        preemptions: u32,
    ) -> DfsOutcome {
        let en = loop {
            if let Some(stop) = ex.status() {
                return self.stop_outcome(ex, stop);
            }
            let en = ex.enabled();
            self.dpor_update(ex);
            if en.len() > 1 {
                break en;
            }
            let t = en[0];
            // Same pruning as `explore_from`: a lone enabled thread that
            // is asleep means an equivalent continuation was explored.
            if sleep.iter().any(|&(st, _)| st == t) {
                self.spend(ex, &None);
                return DfsOutcome {
                    failure: None,
                    complete: true,
                    within_bound: true,
                };
            }
            match ex.pending_op(t) {
                Some(op) => sleep.retain(|(_, sop)| independent(sop, &op)),
                None => sleep.clear(),
            }
            if let Some(stop) = self.step_logged(ex, t, StepOrigin::Forced) {
                return self.stop_outcome(ex, stop);
            }
        };

        if depth >= self.cfg.dfs_depth {
            // Too deep to open more frames. Unlike the plain engines'
            // finish_one, keep logging and scanning the tail: conflicts
            // found past the cap still insert into the frames above it,
            // which is what lets programs with long branchy tails earn
            // their reorderings instead of silently losing them.
            return self.finish_one_dpor(ex, en[0]);
        }

        let members: Vec<usize> = en
            .iter()
            .copied()
            .filter(|&t| ex.pending_op(t).is_some())
            .collect();
        // Seed with the lowest-id member that is awake; a fully asleep
        // frame is covered by explored sibling subtrees and adds nothing.
        let Some(&first) = members
            .iter()
            .find(|&&t| !sleep.iter().any(|&(st, _)| st == t))
        else {
            return DfsOutcome {
                failure: None,
                complete: true,
                within_bound: true,
            };
        };
        // See the method docs for why the root frame and bounded searches
        // never put explored members to sleep for their siblings.
        let propagate_sleep = self.cfg.preemption_bound.is_none()
            && !(self.frames.is_empty() && self.unit_root_enabled.is_none());
        let last = ex.schedule.last().copied();
        let fi = self.frames.len();
        self.frames.push(DporFrame {
            enabled: members,
            backtrack: vec![first],
            done: Vec::new(),
            path_len: self.path_log.len(),
        });
        let snap = ex.snapshot();
        self.stats.snapshots += 1;
        let prefix_steps = ex.steps;
        let mut dirty = false;
        let mut complete = true;
        let mut within = true;
        while let Some(t) = self.frames[fi].next_member() {
            self.frames[fi].done.push(t);
            let cost = preempt_cost(last, t, &en);
            if let Some(b) = self.cfg.preemption_bound {
                if preemptions + cost > b {
                    // This member's subtree lies outside the bound. Any
                    // behavior it alone represented may have ≤-bound
                    // representatives through siblings, so stop trusting
                    // the reduction here: enumerate the whole frame.
                    self.stats.bound_pruned += 1;
                    complete = false;
                    for q in self.frames[fi].enabled.clone() {
                        if self.frames[fi].add(q) {
                            self.stats.dpor_backtracks += 1;
                        }
                    }
                    continue;
                }
            }
            self.checked_since_spend = true;
            if self.budget.empty() {
                complete = false;
                within = false;
                break;
            }
            // A backtrack insertion can name a thread the inherited sleep
            // set already covers: an ancestor's sibling subtree explored
            // its behaviors from here, so skip it.
            if sleep.iter().any(|&(st, _)| st == t) {
                continue;
            }
            if dirty {
                ex.restore(&snap);
                self.path_log.truncate(self.frames[fi].path_len);
                self.conflicts.truncate(self.frames[fi].path_len);
            }
            let op_t = ex.pending_op(t).expect("frame members have pending ops");
            // The child wakes any sleeper whose op conflicts with `op_t`.
            let child_sleep: Vec<(usize, OpKey)> = sleep
                .iter()
                .copied()
                .filter(|(_, sop)| independent(sop, &op_t))
                .collect();
            self.stats.replay_steps_saved += prefix_steps;
            dirty = true;
            let out = if let Some(stop) = self.step_logged(ex, t, StepOrigin::Frame(fi)) {
                self.stop_outcome(ex, stop)
            } else {
                self.explore_from_dpor(ex, child_sleep, depth + 1, preemptions + cost)
            };
            if out.failure.is_some() {
                self.frames.truncate(fi);
                return out;
            }
            complete &= out.complete;
            within &= out.within_bound;
            if propagate_sleep {
                sleep.push((t, op_t));
            }
        }
        let f = self.frames.pop().expect("frame pushed above");
        self.stats.dpor_pruned_siblings += (f.enabled.len() - f.done.len()) as u64;
        DfsOutcome {
            failure: None,
            complete,
            within_bound: within,
        }
    }

    /// DPOR counterpart of [`Dfs::finish_one`]: run `ex` to a stop past the
    /// depth cap, same rotation, but still log every step and run the
    /// dependence scan — insertions land in the frames that are still open
    /// above the cap, so the capped tail teaches the search its
    /// reorderings even though it no longer opens frames of its own.
    fn finish_one_dpor(&mut self, ex: &mut Exec, first: usize) -> DfsOutcome {
        let mut next = Some(first);
        let mut cursor = 0usize;
        let stop = loop {
            if let Some(stop) = ex.status() {
                break stop;
            }
            self.dpor_update(ex);
            let tid = next.take().unwrap_or_else(|| {
                let en = ex.enabled();
                let t = en[cursor % en.len()];
                cursor += 1;
                t
            });
            if let Some(stop) = self.step_logged(ex, tid, StepOrigin::Forced) {
                break stop;
            }
        };
        let failure = match stop {
            Stop::Failure(v) => Some((v, ex.schedule.clone())),
            _ => None,
        };
        self.spend(ex, &failure);
        DfsOutcome {
            failure,
            complete: false,
            within_bound: false,
        }
    }
}

/// The CHESS preemption cost of scheduling `t` at a branch: switching away
/// from the thread that took the last step while it is still enabled is a
/// preemption; continuing it, or switching after it blocked/finished
/// (a forced yield), is free.
fn preempt_cost(last: Option<usize>, t: usize, enabled: &[usize]) -> u32 {
    match last {
        Some(l) if l != t && enabled.contains(&l) => 1,
        _ => 0,
    }
}

/// One uniform random walk; returns (stop, schedule, steps).
fn random_walk(
    program: &Program,
    cfg: &CheckConfig,
    rng: &mut SplitMix64,
) -> (Stop, Vec<usize>, u64) {
    let mut ex = Exec::new(program, cfg);
    let stop = loop {
        if let Some(stop) = ex.status() {
            break stop;
        }
        let en = ex.enabled();
        let tid = en[rng.below(en.len())];
        if let Some(stop) = ex.step(tid) {
            break stop;
        }
    };
    let steps = ex.steps;
    (stop, ex.schedule, steps)
}

/// Greedy ddmin-lite: try dropping chunks of the schedule while the replay
/// still reaches an equivalent failure. Budget-capped by replay count.
fn minimize(
    program: &Program,
    cfg: &CheckConfig,
    verdict: &Verdict,
    schedule: Vec<usize>,
) -> Vec<usize> {
    let mut best = schedule;
    let mut replays = cfg.minimize_replays;
    let mut chunk = (best.len() / 4).max(1);
    while chunk >= 1 && replays > 0 {
        let mut i = 0;
        let mut shrunk = false;
        while i < best.len() && replays > 0 {
            let mut candidate = best.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if candidate.is_empty() {
                // Keep at least one entry: an empty repro would be
                // indistinguishable from "no repro" for API consumers.
                i += chunk;
                continue;
            }
            replays -= 1;
            if let Stop::Failure(v) = run_schedule(program, cfg, &candidate) {
                if v.same_failure(verdict) {
                    best = candidate;
                    shrunk = true;
                    continue; // same i now names the next chunk
                }
            }
            i += chunk;
        }
        if !shrunk {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

/// The schedule budget handed to the DFS phase under `cfg.strategy`.
/// Under DPOR, Hybrid gives DFS the whole budget: the reduction makes
/// systematic coverage cheap enough that reserving most of the budget for
/// walks would waste the exhaustiveness proof. Walks still run on
/// whatever is left whenever DFS returns incomplete.
pub(crate) fn dfs_phase_budget(cfg: &CheckConfig) -> u64 {
    match cfg.strategy {
        Strategy::Dfs => cfg.max_schedules,
        Strategy::RandomWalk => 0,
        Strategy::Hybrid if cfg.dpor => cfg.max_schedules,
        Strategy::Hybrid => cfg.max_schedules / 4,
    }
}

/// Minimize (if configured) and package totals into the final report —
/// shared by the serial and parallel paths so the tail behaviour cannot
/// diverge between them.
pub(crate) fn finish_report(
    program: &Program,
    cfg: &CheckConfig,
    schedules: u64,
    steps: u64,
    complete: bool,
    within_bound: bool,
    failure: Option<(Verdict, Vec<usize>)>,
) -> CheckReport {
    match failure {
        Some((verdict, sched)) => {
            let repro = if cfg.minimize {
                minimize(program, cfg, &verdict, sched)
            } else {
                sched
            };
            CheckReport {
                verdict,
                schedules,
                steps,
                complete: false,
                exhaustive_within_bound: false,
                repro: Some(repro),
            }
        }
        None => CheckReport {
            verdict: Verdict::Clean,
            schedules,
            steps,
            complete,
            exhaustive_within_bound: within_bound,
            repro: None,
        },
    }
}

/// Full exploration per `cfg.strategy`; the engine behind [`crate::check`].
pub(crate) fn explore(program: &Program, cfg: &CheckConfig) -> CheckReport {
    explore_with_stats(program, cfg).0
}

/// Stack reservation for exploration threads. The DPOR engine recurses one
/// stack frame per branch frame, and deep programs (a lab-sized loop body
/// is thousands of visible steps, each a branch state when two threads are
/// runnable) overflow the 2 MiB thread default and even the 8 MiB main
/// default. Virtual reservation only — pages commit on use.
pub(crate) const EXPLORE_STACK_BYTES: usize = 256 << 20;

/// Run `f` on a thread with [`EXPLORE_STACK_BYTES`] of stack (the serial
/// check path cannot assume the caller's stack is big enough).
fn on_explore_stack<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(EXPLORE_STACK_BYTES)
            .spawn_scoped(s, f)
            .expect("spawn exploration thread")
            .join()
            .expect("exploration thread panicked")
    })
}

/// [`explore`] plus execution-cost counters. The stats cover the DFS and
/// walk phases (not minimization replays); they are a measurement
/// side-channel and never influence the report.
pub(crate) fn explore_with_stats(
    program: &Program,
    cfg: &CheckConfig,
) -> (CheckReport, CheckStats) {
    let mut schedules = 0u64;
    let mut steps = 0u64;
    let mut complete = false;
    let mut within_bound = false;
    let mut failure: Option<(Verdict, Vec<usize>)> = None;
    let mut stats = CheckStats::default();

    let dfs_budget = dfs_phase_budget(cfg);
    if dfs_budget > 0 {
        let mut dfs = Dfs::new(program, cfg, dfs_budget, false);
        let out = if cfg.dpor {
            on_explore_stack(|| dfs.run(&[], Vec::new(), 0, 0))
        } else {
            dfs.run(&[], Vec::new(), 0, 0)
        };
        schedules += dfs.schedules;
        steps += dfs.steps;
        complete = out.complete;
        within_bound = out.within_bound;
        failure = out.failure;
        stats = dfs.stats;
        stats.dfs_schedules = schedules;
    }

    if failure.is_none() && !complete {
        let walks = cfg.max_schedules.saturating_sub(schedules);
        for i in 0..walks {
            if steps >= cfg.max_steps {
                break;
            }
            let w = run_walk(program, cfg, i);
            schedules += 1;
            steps += w.steps;
            stats.vm_steps += w.steps;
            if let Some(f) = w.failure {
                failure = Some(f);
                break;
            }
        }
    }

    (
        finish_report(
            program,
            cfg,
            schedules,
            steps,
            complete,
            within_bound,
            failure,
        ),
        stats,
    )
}

// ---- parallel frontier support (consumed by `crate::pool`) -----------------

/// A shard of the DFS frontier: one root-branch child together with the
/// sleep set and depth serial DFS would hand it. Workers explore shards
/// independently; the coordinator replays the serial budget over the
/// recorded traces in canonical (enabled-order) sequence.
#[derive(Debug, Clone)]
pub(crate) struct DfsUnit {
    pub(crate) path: Vec<usize>,
    pub(crate) sleep: Vec<(usize, OpKey)>,
    pub(crate) depth: u32,
    /// Preemptions the dealt root-branch choice itself costs (0 or 1);
    /// the shard's subtree explores with this already spent. Under a
    /// bound, units costing more than it are never run — the coordinator
    /// prunes them exactly where serial DFS would.
    pub(crate) preemptions: u32,
    /// DPOR: the root-branch member set (threads with pending ops), which
    /// the shard needs for conservative backtrack insertions that target
    /// the coordinator-owned root frame. Empty for non-DPOR deals and for
    /// the whole-tree unit.
    pub(crate) root_enabled: Vec<usize>,
}

impl DfsUnit {
    /// The whole tree as one shard — used when the root never branches (or
    /// `dfs_depth` is 0): the worker then runs exactly the serial DFS.
    pub(crate) fn root() -> DfsUnit {
        DfsUnit {
            path: Vec::new(),
            sleep: Vec::new(),
            depth: 0,
            preemptions: 0,
            root_enabled: Vec::new(),
        }
    }
}

/// Everything a worker learned from one shard.
#[derive(Debug, Clone)]
pub(crate) struct UnitTrace {
    /// Schedules spent, in the order serial DFS would spend them.
    pub(crate) entries: Vec<SchedEntry>,
    /// The shard's subtree-complete flag (budget-independent here: workers
    /// run with the full phase budget, a superset of whatever serial had
    /// left — the merge re-applies the real budget).
    pub(crate) complete: bool,
    /// The shard's within-preemption-bound exhaustiveness flag, merged
    /// like `complete`.
    pub(crate) within_bound: bool,
    /// A budget check site ran after the shard's last spend.
    pub(crate) trailing_check: bool,
    /// DPOR: root-frame backtrack members this shard's exploration earned
    /// (ascending). The coordinator unions these into the root membership
    /// after consuming the shard, exactly when serial would.
    pub(crate) root_backtrack: Vec<usize>,
    /// Execution-cost counters for this shard (measurement only — the
    /// merge never reads them).
    pub(crate) stats: CheckStats,
}

/// Execute the root prefix and split the tree at its first branch point,
/// replicating the sleep-set evolution of the serial sibling loop (the
/// inherited sleep set is empty at the root, so no child can start asleep).
/// `None` when the run stops before any branch — a single-path tree with
/// nothing to split.
pub(crate) fn split_root(program: &Program, cfg: &CheckConfig) -> Option<Vec<DfsUnit>> {
    let mut ex = Exec::new(program, cfg);
    loop {
        if ex.status().is_some() {
            return None;
        }
        let en = ex.enabled();
        if en.len() > 1 {
            let last = ex.schedule.last().copied();
            let members: Vec<usize> = en
                .iter()
                .copied()
                .filter(|&t| ex.pending_op(t).is_some())
                .collect();
            let mut sleep: Vec<(usize, OpKey)> = Vec::new();
            let mut units = Vec::new();
            for &t in &en {
                let Some(op_t) = ex.pending_op(t) else {
                    continue;
                };
                let cost = preempt_cost(last, t, &en);
                let bound_pruned = cfg.preemption_bound.map(|b| cost > b).unwrap_or(false);
                let child_sleep: Vec<(usize, OpKey)> = sleep
                    .iter()
                    .copied()
                    .filter(|(_, sop)| independent(sop, &op_t))
                    .collect();
                units.push(DfsUnit {
                    path: vec![t],
                    sleep: child_sleep,
                    depth: 1,
                    preemptions: cost,
                    root_enabled: if cfg.dpor {
                        members.clone()
                    } else {
                        Vec::new()
                    },
                });
                // A bound-pruned child is never explored, so serial DFS
                // never puts it to sleep — the deal must not either.
                if !bound_pruned {
                    sleep.push((t, op_t));
                }
            }
            return Some(units);
        }
        // Single choice: the root's sleep set is empty, so no pruning here.
        if ex.step(en[0]).is_some() {
            return None;
        }
    }
}

/// Explore one shard with the full phase budget, recording the trace.
pub(crate) fn run_dfs_unit(
    program: &Program,
    cfg: &CheckConfig,
    unit: &DfsUnit,
    phase_budget: u64,
) -> UnitTrace {
    let mut dfs = Dfs::new(program, cfg, phase_budget, true);
    if !unit.root_enabled.is_empty() {
        dfs.unit_root_enabled = Some(unit.root_enabled.clone());
    }
    let out = dfs.run(&unit.path, unit.sleep.clone(), unit.depth, unit.preemptions);
    UnitTrace {
        entries: dfs.trace,
        complete: out.complete,
        within_bound: out.within_bound,
        trailing_check: dfs.checked_since_spend,
        root_backtrack: dfs.unit_backtrack.iter().copied().collect(),
        stats: dfs.stats,
    }
}

/// What one random walk found.
#[derive(Debug, Clone)]
pub(crate) struct WalkTrace {
    pub(crate) steps: u64,
    pub(crate) failure: Option<(Verdict, Vec<usize>)>,
}

/// Walk `index` of the walk phase: a pure function of `(cfg.seed, index)`,
/// so walks can run on any worker in any order.
pub(crate) fn run_walk(program: &Program, cfg: &CheckConfig, index: u64) -> WalkTrace {
    let mut rng = SplitMix64::new(cfg.seed ^ (index.wrapping_mul(0x9E37_79B9) + 1));
    let (stop, sched, steps) = random_walk(program, cfg, &mut rng);
    WalkTrace {
        steps,
        failure: match stop {
            Stop::Failure(v) => Some((v, sched)),
            _ => None,
        },
    }
}
