//! A work-stealing worker pool and the deterministic parallel exploration
//! engine built on it.
//!
//! # Determinism by merge
//!
//! Serial exploration ([`crate::check`]) is an *order-deterministic* scan:
//! the DFS spends schedules in a canonical traversal order, checking the
//! shared budget between schedules, then the walk phase consumes seeded
//! walk indices in ascending order. The parallel engine keeps the result
//! bit-for-bit identical by splitting the work into units whose *contents*
//! are budget-independent, executing them speculatively with the full
//! phase budget (a superset of whatever serial would have had left), and
//! then replaying the exact serial budget arithmetic over the recorded
//! traces in canonical order:
//!
//! 1. **DFS phase.** [`explore::split_root`] shards the tree at its first
//!    branch point, reproducing the serial sleep-set evolution. Each shard
//!    runs on a worker with its own VM, recording one [`SchedEntry`] per
//!    schedule spent. The merge scan walks shards in enabled order,
//!    decrementing the real budget before each entry exactly where serial
//!    checks it, stopping on the first failure or empty budget.
//! 2. **Walk phase.** Walk `i` is a pure function of `(seed, i)`, so the
//!    remaining budget fans out as independent walk jobs; the merge scan
//!    consumes results in index order with the serial step-budget gate.
//!
//! Workers that can only start *after* the serial scan would have stopped
//! are cancelled via a shared first-failure index; everything at or before
//! the true stopping point is always computed, so the scan never reads a
//! missing slot.
//!
//! [`SchedEntry`]: explore::SchedEntry

use crate::explore;
use crate::{CheckConfig, CheckReport, CheckStats, Verdict};
use minilang::Program;
use obs::Obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A fixed-width work-stealing pool. Threads are scoped per call — the
/// pool owns no persistent threads, only the worker count and (optionally)
/// a telemetry domain for `ccp_pool_*` metrics.
pub struct Pool {
    workers: usize,
    obs: Option<Arc<Obs>>,
}

impl Pool {
    /// A pool with an explicit worker count. `0` and `1` both mean "run
    /// everything inline on the caller" — the serial path, unchanged.
    pub fn new(workers: usize) -> Pool {
        Pool { workers, obs: None }
    }

    /// A pool sized to the machine: `max(1, available_parallelism - 1)`,
    /// leaving one core for the portal's own request handling.
    pub fn auto() -> Pool {
        Pool::new(Self::default_workers())
    }

    /// The default worker count: `max(1, available_parallelism - 1)`.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .max(1)
    }

    /// Attach a telemetry domain; registers every `ccp_pool_*` family
    /// eagerly so `/api/metrics` exposes them before the first task runs.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Pool {
        let m = &obs.metrics;
        m.describe("ccp_pool_workers", "checker pool worker threads");
        m.describe("ccp_pool_tasks_total", "tasks executed by the pool");
        m.describe(
            "ccp_pool_steals_total",
            "tasks stolen from another worker's queue",
        );
        m.describe(
            "ccp_pool_busy_us",
            "per-worker busy time per pool invocation",
        );
        m.describe(
            "ccp_pool_idle_us",
            "per-worker idle time per pool invocation",
        );
        m.describe("ccp_vm_steps_total", "VM steps executed during checking");
        m.describe(
            "ccp_vm_replay_steps_saved_total",
            "prefix replay steps avoided by snapshot restore",
        );
        m.describe(
            "ccp_checker_snapshots_total",
            "VM snapshots taken at DFS branch points",
        );
        m.describe(
            "ccp_checker_state_cache_hits_total",
            "visited-state cache hits",
        );
        m.describe(
            "ccp_checker_state_cache_prunes_total",
            "subtrees pruned by the visited-state cache",
        );
        m.describe(
            "ccp_checker_dpor_backtracks_total",
            "DPOR backtrack points earned from dependence scans",
        );
        m.describe(
            "ccp_checker_dpor_pruned_siblings_total",
            "branch siblings DPOR never had to explore",
        );
        m.describe(
            "ccp_checker_dpor_bound_pruned_total",
            "branch children skipped by the preemption bound",
        );
        m.gauge("ccp_pool_workers", &[]).set(self.workers as i64);
        m.counter("ccp_pool_tasks_total", &[]);
        m.counter("ccp_pool_steals_total", &[]);
        m.histogram("ccp_pool_busy_us", &[], obs::DURATION_US_BOUNDS);
        m.histogram("ccp_pool_idle_us", &[], obs::DURATION_US_BOUNDS);
        m.counter("ccp_vm_steps_total", &[]);
        m.counter("ccp_vm_replay_steps_saved_total", &[]);
        m.counter("ccp_checker_snapshots_total", &[]);
        m.counter("ccp_checker_state_cache_hits_total", &[]);
        m.counter("ccp_checker_state_cache_prunes_total", &[]);
        m.counter("ccp_checker_dpor_backtracks_total", &[]);
        m.counter("ccp_checker_dpor_pruned_siblings_total", &[]);
        m.counter("ccp_checker_dpor_bound_pruned_total", &[]);
        self.obs = Some(obs);
        self
    }

    /// Configured worker count (0/1 = serial).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Apply `f` to every item, preserving input order in the output.
    /// Items are dealt to per-worker deques in contiguous chunks; idle
    /// workers steal from the back of their neighbours' queues. With one
    /// (or zero) workers, or one item, runs inline on the caller.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.workers.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        // Deal contiguous chunks: early (canonical-order) items land on
        // early workers, so the merge's prefix is computed first.
        let mut queues: Vec<Mutex<VecDeque<(usize, T)>>> = Vec::with_capacity(workers);
        for _ in 0..workers {
            queues.push(Mutex::new(VecDeque::new()));
        }
        for (i, item) in items.into_iter().enumerate() {
            let w = (i * workers) / n;
            queues[w].lock().expect("queue lock").push_back((i, item));
        }

        let steals = AtomicU64::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut busy_idle: Vec<(u64, u64)> = Vec::with_capacity(workers);
        // Contention profiling is metrics-only (never spans): workers run in
        // nondeterministic order, and the profiler families are excluded
        // from the deterministic render surface.
        let profiler = self.obs.as_deref().map(|o| &o.profiler);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|wi| {
                    let queues = &queues;
                    let steals = &steals;
                    let f = &f;
                    std::thread::Builder::new()
                        // DPOR units recurse one stack frame per branch
                        // frame; deep programs (thousands of branch states)
                        // need more than the 2 MiB thread default. Virtual
                        // reservation only — pages commit on use.
                        .stack_size(crate::explore::EXPLORE_STACK_BYTES)
                        .spawn_scoped(s, move || {
                            let started = Instant::now();
                            let mut busy = 0u64;
                            let mut out: Vec<(usize, R)> = Vec::new();
                            loop {
                                // Own-queue pop as its own statement: the guard
                                // must drop before any steal attempt, or two
                                // drained workers stealing from each other hold
                                // their own lock while waiting for the other's.
                                let mut task = queues[wi].lock().expect("queue lock").pop_front();
                                if task.is_none() {
                                    // Steal from the back: the victim's front
                                    // stays cache-warm for its owner.
                                    let scan0 = Instant::now();
                                    for off in 1..queues.len() {
                                        let v = (wi + off) % queues.len();
                                        let stolen =
                                            queues[v].lock().expect("queue lock").pop_back();
                                        if stolen.is_some() {
                                            steals.fetch_add(1, Ordering::Relaxed);
                                            task = stolen;
                                            break;
                                        }
                                    }
                                    if let Some(p) = profiler {
                                        let us = scan0.elapsed().as_micros() as u64;
                                        p.observe("pool.steal", us, || {
                                            format!("worker {wi} steal scan")
                                        });
                                    }
                                }
                                match task {
                                    Some((i, item)) => {
                                        let t0 = Instant::now();
                                        out.push((i, f(i, item)));
                                        let us = t0.elapsed().as_micros() as u64;
                                        busy += us;
                                        if let Some(p) = profiler {
                                            p.observe("pool.task", us, || {
                                                format!("pool task {i} on worker {wi}")
                                            });
                                        }
                                    }
                                    None => break,
                                }
                            }
                            let wall = started.elapsed().as_micros() as u64;
                            (out, busy, wall.saturating_sub(busy))
                        })
                        .expect("spawn pool worker")
                })
                .collect();
            for h in handles {
                let (out, busy, idle) = h.join().expect("pool worker panicked");
                for (i, r) in out {
                    slots[i] = Some(r);
                }
                busy_idle.push((busy, idle));
            }
        });

        if let Some(obs) = &self.obs {
            let m = &obs.metrics;
            m.counter("ccp_pool_tasks_total", &[]).add(n as u64);
            m.counter("ccp_pool_steals_total", &[])
                .add(steals.load(Ordering::Relaxed));
            let busy_h = m.histogram("ccp_pool_busy_us", &[], obs::DURATION_US_BOUNDS);
            let idle_h = m.histogram("ccp_pool_idle_us", &[], obs::DURATION_US_BOUNDS);
            for (busy, idle) in &busy_idle {
                busy_h.record(*busy);
                idle_h.record(*idle);
            }
        }

        slots
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect()
    }

    /// Explore `program`'s interleavings on the pool. Bit-for-bit
    /// identical to [`crate::check`] for the same program and config;
    /// `cfg.workers` overrides the pool width, and an effective width of
    /// 0 or 1 takes the serial path itself.
    pub fn check(&self, program: &Program, cfg: &CheckConfig) -> CheckReport {
        self.check_with_stats(program, cfg).0
    }

    /// [`Pool::check`] plus execution-cost counters, recorded into the
    /// attached telemetry domain (if any). The report is deterministic;
    /// the stats on the parallel path count work actually executed, which
    /// includes speculative shards the merge later discards.
    pub fn check_with_stats(
        &self,
        program: &Program,
        cfg: &CheckConfig,
    ) -> (CheckReport, CheckStats) {
        let mut workers = cfg.workers.unwrap_or(self.workers);
        if !cfg.dpor && cfg.snapshot_prefix && cfg.state_cache_capacity > 0 {
            // The visited-state cache prunes based on everything seen so
            // far, which shard-local caches cannot reproduce — the merge
            // arithmetic would drift. Cache-enabled configs run serial.
            // (Under DPOR the cache is disabled entirely, so the parallel
            // path stays available.)
            workers = 1;
        }
        let out = if workers <= 1 {
            explore::explore_with_stats(program, cfg)
        } else if workers == self.workers {
            self.check_parallel(program, cfg)
        } else {
            // Honor the per-config override with a transient pool of that
            // width, recording into the same telemetry domain.
            Pool {
                workers,
                obs: self.obs.clone(),
            }
            .check_parallel(program, cfg)
        };
        if let Some(obs) = &self.obs {
            let m = &obs.metrics;
            let s = &out.1;
            m.counter("ccp_vm_steps_total", &[]).add(s.vm_steps);
            m.counter("ccp_vm_replay_steps_saved_total", &[])
                .add(s.replay_steps_saved);
            m.counter("ccp_checker_snapshots_total", &[])
                .add(s.snapshots);
            m.counter("ccp_checker_state_cache_hits_total", &[])
                .add(s.state_cache_hits);
            m.counter("ccp_checker_state_cache_prunes_total", &[])
                .add(s.state_cache_prunes);
            m.counter("ccp_checker_dpor_backtracks_total", &[])
                .add(s.dpor_backtracks);
            m.counter("ccp_checker_dpor_pruned_siblings_total", &[])
                .add(s.dpor_pruned_siblings);
            m.counter("ccp_checker_dpor_bound_pruned_total", &[])
                .add(s.bound_pruned);
        }
        out
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Pool {
    /// DFS shards + merge, then walk fan-out + merge (see module docs).
    ///
    /// Under DPOR the root branch is not a fixed sibling list but a
    /// *membership loop*: serial DFS seeds the root backtrack set with one
    /// member and earns the rest from dependence scans inside explored
    /// subtrees. Shards record the root additions they earn
    /// ([`explore::UnitTrace::root_backtrack`]); the merge replays the
    /// exact membership evolution — pick the lowest-id committed member,
    /// consume its trace, union its additions, repeat — so the dealt
    /// shards reproduce serial's traversal order and budget arithmetic
    /// bit for bit. First-failure cancellation is disabled there: the
    /// membership order is not the shard index order, so a later-indexed
    /// shard can be consumed before an earlier failing one.
    fn check_parallel(&self, program: &Program, cfg: &CheckConfig) -> (CheckReport, CheckStats) {
        let mut schedules = 0u64;
        let mut steps = 0u64;
        let mut complete = false;
        let mut within_bound = false;
        let mut failure: Option<(Verdict, Vec<usize>)> = None;
        let mut stats = CheckStats::default();

        let dfs_budget = explore::dfs_phase_budget(cfg);
        if dfs_budget > 0 {
            let (units, root_branched) = match (cfg.dfs_depth > 0)
                .then(|| explore::split_root(program, cfg))
                .flatten()
            {
                Some(children) => (children, true),
                None => (vec![explore::DfsUnit::root()], false),
            };
            // (dealt tid, preemption cost) per unit, for the merge.
            let meta: Vec<(usize, u32)> = units
                .iter()
                .map(|u| (u.path.first().copied().unwrap_or(0), u.preemptions))
                .collect();
            let over_bound = |cost: u32| cfg.preemption_bound.map(|b| cost > b).unwrap_or(false);
            // First failing shard index; shards strictly past it are
            // skipped — the merge stops at the failure before reading them.
            // (Not under DPOR: membership order ≠ index order.)
            let min_fail = AtomicUsize::new(usize::MAX);
            let traces = self.map(units, |i, unit| {
                if over_bound(unit.preemptions) {
                    return None; // pruned at the root; never explored
                }
                if !cfg.dpor && i > min_fail.load(Ordering::Relaxed) {
                    return None;
                }
                let trace = explore::run_dfs_unit(program, cfg, &unit, dfs_budget);
                if trace.entries.iter().any(|e| e.failure.is_some()) {
                    min_fail.fetch_min(i, Ordering::Relaxed);
                }
                Some(trace)
            });

            for trace in traces.iter().flatten() {
                let s = &trace.stats;
                stats.vm_steps += s.vm_steps;
                stats.replay_steps_saved += s.replay_steps_saved;
                stats.snapshots += s.snapshots;
                stats.dpor_backtracks += s.dpor_backtracks;
                stats.dpor_pruned_siblings += s.dpor_pruned_siblings;
                stats.bound_pruned += s.bound_pruned;
                // Cache counters stay zero: cache-enabled configs never
                // reach this path (forced serial above).
            }

            // Replay the serial budget arithmetic over the traces.
            let mut schedules_left = dfs_budget;
            let mut steps_left = cfg.max_steps;
            complete = true;
            within_bound = true;
            if cfg.dpor && root_branched && !meta.is_empty() {
                // Membership loop (see method docs).
                let mut backtrack: Vec<usize> = vec![meta[0].0];
                let mut done: Vec<usize> = Vec::new();
                'dpor_merge: loop {
                    let Some(t) = backtrack
                        .iter()
                        .copied()
                        .filter(|t| !done.contains(t))
                        .min()
                    else {
                        break;
                    };
                    done.push(t);
                    let ui = meta
                        .iter()
                        .position(|m| m.0 == t)
                        .expect("every root member is a dealt shard");
                    if over_bound(meta[ui].1) {
                        // Bound-pruned at the root: serial enumerates the
                        // whole frame from here (see explore_from_dpor).
                        stats.bound_pruned += 1;
                        complete = false;
                        for &(q, _) in &meta {
                            if !backtrack.contains(&q) && !done.contains(&q) {
                                backtrack.push(q);
                                stats.dpor_backtracks += 1;
                            }
                        }
                        continue;
                    }
                    let trace = traces[ui]
                        .as_ref()
                        .expect("DPOR shards are never cancelled");
                    for entry in &trace.entries {
                        if schedules_left == 0 || steps_left == 0 {
                            complete = false;
                            within_bound = false;
                            break 'dpor_merge;
                        }
                        schedules += 1;
                        steps += entry.steps;
                        schedules_left = schedules_left.saturating_sub(1);
                        steps_left = steps_left.saturating_sub(entry.steps);
                        if let Some(f) = &entry.failure {
                            failure = Some(f.clone());
                            break 'dpor_merge;
                        }
                    }
                    if (schedules_left == 0 || steps_left == 0) && trace.trailing_check {
                        complete = false;
                        within_bound = false;
                    }
                    complete &= trace.complete;
                    within_bound &= trace.within_bound;
                    for &q in &trace.root_backtrack {
                        if !backtrack.contains(&q) && !done.contains(&q) {
                            backtrack.push(q);
                        }
                    }
                }
                if failure.is_none() {
                    stats.dpor_pruned_siblings += (meta.len() - done.len()) as u64;
                }
            } else {
                let mut first = true;
                'merge: for (ui, trace) in traces.iter().enumerate() {
                    if over_bound(meta.get(ui).map(|m| m.1).unwrap_or(0)) {
                        // Dealt child outside the bound: serial skips it
                        // without a budget check and without sleeping it.
                        stats.bound_pruned += 1;
                        complete = false;
                        continue;
                    }
                    let Some(trace) = trace else { break };
                    for entry in &trace.entries {
                        // Serial checks the budget before every schedule
                        // except the very first when the root never
                        // branched (a single-path tree spends its one
                        // schedule unchecked).
                        let skip_check = first && !root_branched;
                        first = false;
                        if !skip_check && (schedules_left == 0 || steps_left == 0) {
                            complete = false;
                            within_bound = false;
                            break 'merge;
                        }
                        schedules += 1;
                        steps += entry.steps;
                        schedules_left = schedules_left.saturating_sub(1);
                        steps_left = steps_left.saturating_sub(entry.steps);
                        if let Some(f) = &entry.failure {
                            failure = Some(f.clone());
                            break 'merge;
                        }
                    }
                    if (schedules_left == 0 || steps_left == 0) && trace.trailing_check {
                        complete = false;
                        within_bound = false;
                    }
                    complete &= trace.complete;
                    within_bound &= trace.within_bound;
                }
            }
        }

        stats.dfs_schedules = schedules;
        if failure.is_none() && !complete {
            let walks = cfg.max_schedules.saturating_sub(schedules);
            let min_fail = AtomicUsize::new(usize::MAX);
            let results = self.map((0..walks).collect(), |i, index| {
                if i > min_fail.load(Ordering::Relaxed) {
                    return None;
                }
                let walk = explore::run_walk(program, cfg, index);
                if walk.failure.is_some() {
                    min_fail.fetch_min(i, Ordering::Relaxed);
                }
                Some(walk)
            });
            for walk in results.iter().flatten() {
                stats.vm_steps += walk.steps;
            }
            for walk in &results {
                if steps >= cfg.max_steps {
                    break;
                }
                let Some(walk) = walk else { break };
                schedules += 1;
                steps += walk.steps;
                if let Some(f) = &walk.failure {
                    failure = Some(f.clone());
                    break;
                }
            }
        }

        (
            explore::finish_report(
                program,
                cfg,
                schedules,
                steps,
                complete,
                within_bound,
                failure,
            ),
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_and_runs_everything() {
        let pool = Pool::new(4);
        let out = pool.map((0..100).collect(), |i, x: u64| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn map_with_single_worker_runs_inline() {
        let pool = Pool::new(1);
        let out = pool.map(vec![1u64, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_workers_leaves_a_core() {
        let w = Pool::default_workers();
        assert!(w >= 1);
        if let Ok(n) = std::thread::available_parallelism() {
            assert!(w <= n.get());
        }
    }

    #[test]
    fn parallel_check_matches_serial_exactly() {
        let src = r#"
            var n = 0;
            fn w() { n = n + 1; }
            fn main() { var a = spawn w(); var b = spawn w(); join(a); join(b); }
        "#;
        let program = minilang::compile(src).unwrap();
        let cfg = CheckConfig::default();
        let serial = crate::check(&program, &cfg);
        for workers in [2, 4] {
            let pool = Pool::new(workers);
            assert_eq!(pool.check(&program, &cfg), serial, "{workers} workers");
        }
    }
}
