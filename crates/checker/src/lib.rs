//! # checker — systematic interleaving exploration for minilang programs
//!
//! The portal's autograder (crate `labs`) verifies concurrent submissions
//! by *sampling* random schedules: run the program under a handful of
//! seeds and look at the results. Sampling finds crashes but proves
//! nothing, and it reports "the balance was 734" rather than "these two
//! unlocked writes race". This crate is the systematic counterpart — a
//! stateless model checker in the Verisoft / FastTrack tradition:
//!
//! * The VM is driven **one visible operation at a time** through the
//!   external-scheduler API ([`minilang::Vm::step_thread`],
//!   [`minilang::Vm::next_op`]). Thread-local instructions are run
//!   eagerly; only shared-memory and synchronization operations create
//!   scheduling points, which keeps the branching factor tractable.
//! * **Exploration** is bounded DFS over scheduling choices with
//!   sleep-set pruning, optionally followed by uniform random walks
//!   ([`Strategy::Hybrid`], the default) so big programs still get
//!   schedule diversity after the DFS budget runs out.
//! * **Data races** are caught by FastTrack-style vector clocks fed from
//!   the VM's event stream — a race is reported on the first unordered
//!   conflicting access pair, with the location and both accesses named.
//! * **Deadlocks** are detected when no thread can make progress, with
//!   the mutex/join wait-for cycle named when one exists; executions that
//!   keep spinning without visible state change are flagged as livelock.
//! * Every failure comes with a **repro schedule** — the list of thread
//!   ids chosen at each visible step, greedily minimized — which
//!   [`replay_schedule`] replays deterministically.
//!
//! Determinism is load-bearing: the checker draws randomness only from
//! its own seeded [splitmix64](mod@self) generator (never the `rand`
//! crate), so the same program and budget produce byte-identical verdicts
//! and repro schedules on every toolchain.

pub mod archetypes;
mod clocks;
mod explore;
mod pool;
mod rng;

pub use clocks::{AccessKind, Race, RaceDetector, VectorClock};
pub use pool::Pool;

use explore::Stop;
use minilang::{LangError, Program};

/// Exploration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded depth-first enumeration with sleep sets only.
    Dfs,
    /// Uniform random walks only.
    RandomWalk,
    /// DFS for a quarter of the schedule budget, random walks after —
    /// systematic coverage near the root, diversity past the depth bound.
    Hybrid,
}

/// Exploration budgets and knobs.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum schedules (complete executions) to try.
    pub max_schedules: u64,
    /// Total visible-step budget across all schedules.
    pub max_steps: u64,
    /// Visible-step cap per schedule (runaway guard).
    pub steps_per_schedule: u64,
    /// DFS branch depth bound; deeper nodes fall back to one sampled path.
    pub dfs_depth: u32,
    /// Seed for the random-walk phase.
    pub seed: u64,
    /// Exploration strategy.
    pub strategy: Strategy,
    /// Greedily shrink the repro schedule before reporting.
    pub minimize: bool,
    /// Replay budget for minimization.
    pub minimize_replays: u32,
    /// VM instruction budget per execution.
    pub max_instructions: u64,
    /// Visible steps without a state change before declaring livelock.
    pub livelock_window: u64,
    /// Worker override for [`Pool::check`]: `None` uses the pool's width,
    /// `Some(0)`/`Some(1)` force the serial path. The report is identical
    /// either way — workers only change wall-clock time.
    pub workers: Option<usize>,
    /// Back DFS branch points with VM snapshots, so siblings restore the
    /// common prefix instead of re-executing it from the root. Same
    /// schedules, same reports, strictly less work; off reproduces the
    /// original stateless explorer (kept as the reference path).
    pub snapshot_prefix: bool,
    /// Capacity of the visited-state cache (0 disables it, the default).
    /// When on, DFS prunes branch points whose canonical state hash was
    /// already explored. Heuristic: states that differ only in excluded
    /// dimensions (the instruction clock a program reads via `now()`, host
    /// files) can merge, and a prune inherits the earlier visit's coverage
    /// even if that visit was itself truncated. Effective only with
    /// `snapshot_prefix`; [`Pool::check`] runs cache-enabled configs on
    /// the serial path so parallel merge arithmetic stays untouched.
    /// Ignored under `dpor` (a cache prune would discard the pruned
    /// subtree's backtrack contributions and unsound-prune the space).
    pub state_cache_capacity: usize,
    /// Dynamic partial-order reduction (Flanagan/Godefroid source sets
    /// with conservative wakeup handling). Instead of enumerating every
    /// sibling at a branch and pruning with sleep sets, DFS starts each
    /// branch with a single member and *earns* the rest: whenever a
    /// pending op is found dependent on — and not happens-ordered after —
    /// an earlier executed step, the earlier step's branch gains a
    /// backtrack point. Equivalent verdicts in strictly fewer schedules;
    /// the happens-before oracle is the FastTrack clocks the race
    /// detector already maintains. Forces the snapshot engine.
    pub dpor: bool,
    /// CHESS-style preemption bound: cap the number of *preemptive*
    /// context switches per schedule (a switch away from a thread that is
    /// still enabled). `None` explores unbounded. Bounded runs prove
    /// [`CheckReport::exhaustive_within_bound`] rather than full
    /// exhaustion; most real concurrency bugs need very few preemptions,
    /// so small bounds keep grading budgets honest. Under `dpor` the
    /// backtrack insertion turns conservative (whole enabled set) so the
    /// bounded search stays sound.
    pub preemption_bound: Option<u32>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_schedules: 48,
            max_steps: 600_000,
            steps_per_schedule: 40_000,
            dfs_depth: 50,
            seed: 0,
            strategy: Strategy::Hybrid,
            minimize: true,
            minimize_replays: 48,
            max_instructions: 2_000_000,
            livelock_window: 4_000,
            workers: None,
            snapshot_prefix: true,
            state_cache_capacity: 0,
            dpor: true,
            preemption_bound: None,
        }
    }
}

/// The checker's conclusion about a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No failure found within budget (see [`CheckReport::complete`] for
    /// whether the schedule space was exhausted).
    Clean,
    /// A data race: two unordered conflicting accesses.
    Race {
        /// The shared location, e.g. `Global(3)` or `Elem(0, 7)`.
        location: String,
        /// Earlier access, `"thread N read|write|atomic"`.
        first: String,
        /// The access that tripped the detector.
        second: String,
    },
    /// No thread can make progress.
    Deadlock {
        /// Human-readable wait state of each blocked thread.
        blocked: Vec<String>,
        /// The mutex/join wait-for cycle, when one exists (thread ids).
        cycle: Vec<usize>,
    },
    /// Threads stay runnable but the program state stopped changing.
    Livelock {
        /// The spinning thread ids.
        spinning: Vec<usize>,
    },
    /// The program itself crashed (type error, unlock-not-owner, ...).
    RuntimeError {
        /// The VM error message.
        error: String,
    },
}

impl Verdict {
    pub(crate) fn race(r: &Race) -> Verdict {
        Verdict::Race {
            location: format!("{:?}", r.loc),
            first: format!("thread {} {}", r.first.0, r.first.1),
            second: format!("thread {} {}", r.second.0, r.second.1),
        }
    }

    /// Is this a failure (anything but [`Verdict::Clean`])?
    pub fn is_failure(&self) -> bool {
        !matches!(self, Verdict::Clean)
    }

    /// One-word class name, used as a metrics label and in reports.
    pub fn class(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Race { .. } => "race",
            Verdict::Deadlock { .. } => "deadlock",
            Verdict::Livelock { .. } => "livelock",
            Verdict::RuntimeError { .. } => "runtime_error",
        }
    }

    /// Are two verdicts "the same failure" for minimization purposes?
    /// Races must agree on the location; deadlock/livelock on the class;
    /// runtime errors on the message.
    pub fn same_failure(&self, other: &Verdict) -> bool {
        match (self, other) {
            (Verdict::Race { location: a, .. }, Verdict::Race { location: b, .. }) => a == b,
            (Verdict::Deadlock { .. }, Verdict::Deadlock { .. }) => true,
            (Verdict::Livelock { .. }, Verdict::Livelock { .. }) => true,
            (Verdict::RuntimeError { error: a }, Verdict::RuntimeError { error: b }) => a == b,
            _ => false,
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Clean => write!(f, "clean"),
            Verdict::Race {
                location,
                first,
                second,
            } => {
                write!(f, "data race on {location}: {first} vs {second}")
            }
            Verdict::Deadlock { blocked, cycle } => {
                if cycle.is_empty() {
                    write!(f, "deadlock: [{}]", blocked.join("; "))
                } else {
                    let ids: Vec<String> = cycle.iter().map(|t| format!("t{t}")).collect();
                    write!(
                        f,
                        "deadlock (cycle {}): [{}]",
                        ids.join(" -> "),
                        blocked.join("; ")
                    )
                }
            }
            Verdict::Livelock { spinning } => {
                let ids: Vec<String> = spinning.iter().map(|t| format!("t{t}")).collect();
                write!(
                    f,
                    "livelock: threads [{}] spin without progress",
                    ids.join(", ")
                )
            }
            Verdict::RuntimeError { error } => write!(f, "runtime error: {error}"),
        }
    }
}

/// What an exploration run found and how hard it looked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The conclusion.
    pub verdict: Verdict,
    /// Schedules (complete executions) tried.
    pub schedules: u64,
    /// Visible steps taken across all schedules.
    pub steps: u64,
    /// True iff DFS exhausted the (reduced) schedule space, so
    /// [`Verdict::Clean`] is a proof within the per-schedule step bound
    /// rather than a sampling result. A [`CheckConfig::preemption_bound`]
    /// prune falsifies this — see `exhaustive_within_bound` for the
    /// bounded claim.
    pub complete: bool,
    /// True iff DFS exhausted the schedule space *up to the configured
    /// preemption bound*: every schedule with at most
    /// [`CheckConfig::preemption_bound`] preemptions was covered, and
    /// nothing was lost to budget truncation or the depth-cap fallback.
    /// With no bound configured this equals `complete`. On failure it is
    /// `false` like `complete`: a found bug is a counterexample, not an
    /// exhaustion claim.
    pub exhaustive_within_bound: bool,
    /// On failure: the minimized schedule (thread id per visible step)
    /// that [`replay_schedule`] uses to reproduce it.
    pub repro: Option<Vec<usize>>,
}

/// Execution-cost counters from one `check` call, reported next to the
/// [`CheckReport`] but deliberately not inside it: reports are compared
/// byte-for-byte across engines (serial/parallel, snapshot/stateless)
/// whose costs legitimately differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Visible steps actually executed by the VM (DFS + walk phases).
    pub vm_steps: u64,
    /// Prefix steps the snapshot path did *not* re-execute: each sibling
    /// entered at a branch charges the branch's depth, exactly what a
    /// stateless child frame would have replayed from the root.
    pub replay_steps_saved: u64,
    /// Branch-point snapshots taken.
    pub snapshots: u64,
    /// Visited-state cache hits (each hit prunes one subtree).
    pub state_cache_hits: u64,
    /// Subtrees pruned by the cache (equals hits today; kept separate so
    /// a future partial-prune policy doesn't change metric meaning).
    pub state_cache_prunes: u64,
    /// DPOR backtrack points earned: threads added to a branch's
    /// backtrack set because a pending op was dependent on (and not
    /// ordered after) an earlier step of that branch.
    pub dpor_backtracks: u64,
    /// Branch siblings DPOR never had to explore: enabled threads left
    /// outside the backtrack set when their branch was fully processed.
    /// Each one is a whole subtree the unreduced DFS would have entered.
    pub dpor_pruned_siblings: u64,
    /// Branch children skipped because taking them would exceed the
    /// preemption bound.
    pub bound_pruned: u64,
    /// Schedules spent by the systematic DFS phase alone, before random
    /// walks fill any remaining budget. This is the number reduction
    /// ratios compare: walk fill is bounded by `max_schedules`, not by
    /// the search, so `CheckReport::schedules` overstates bounded or
    /// truncated explorations.
    pub dfs_schedules: u64,
}

/// Explore a compiled program's interleavings.
pub fn check(program: &Program, cfg: &CheckConfig) -> CheckReport {
    explore::explore(program, cfg)
}

/// [`check`], also returning execution-cost counters (for dashboards and
/// benches; the report itself is identical to [`check`]'s).
pub fn check_with_stats(program: &Program, cfg: &CheckConfig) -> (CheckReport, CheckStats) {
    explore::explore_with_stats(program, cfg)
}

/// Compile `src` and explore it. Compile errors come back as `Err`;
/// runtime failures are part of the [`CheckReport`].
pub fn check_program(src: &str, cfg: &CheckConfig) -> Result<CheckReport, LangError> {
    let program = minilang::compile(src)?;
    Ok(check(&program, cfg))
}

/// Replay a repro `schedule` from [`CheckReport::repro`] and return the
/// verdict it reaches. Deterministic: the same program + schedule always
/// lands on the same verdict.
pub fn replay_schedule(program: &Program, cfg: &CheckConfig, schedule: &[usize]) -> Verdict {
    match explore::run_schedule(program, cfg, schedule) {
        Stop::Failure(v) => v,
        Stop::Finished | Stop::Truncated => Verdict::Clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CheckConfig {
        CheckConfig::default()
    }

    #[test]
    fn race_free_sequential_program_is_clean_and_complete() {
        let report = check_program(
            r#"
            fn main() {
                var i = 0;
                while (i < 10) { i = i + 1; }
                println(i);
            }
            "#,
            &cfg(),
        )
        .unwrap();
        assert_eq!(report.verdict, Verdict::Clean);
        assert!(report.complete, "single-threaded space must be exhausted");
        assert!(report.repro.is_none());
    }

    #[test]
    fn unlocked_counter_races() {
        let report = check_program(
            r#"
            var counter = 0;
            fn bump() {
                var i = 0;
                while (i < 3) { counter = counter + 1; i = i + 1; }
            }
            fn main() {
                var a = spawn bump();
                var b = spawn bump();
                join(a); join(b);
                println(counter);
            }
            "#,
            &cfg(),
        )
        .unwrap();
        assert_eq!(report.verdict.class(), "race", "got {:?}", report.verdict);
        let repro = report.repro.expect("race must carry a repro schedule");
        let prog = minilang::compile(
            r#"
            var counter = 0;
            fn bump() {
                var i = 0;
                while (i < 3) { counter = counter + 1; i = i + 1; }
            }
            fn main() {
                var a = spawn bump();
                var b = spawn bump();
                join(a); join(b);
                println(counter);
            }
            "#,
        )
        .unwrap();
        let replayed = replay_schedule(&prog, &cfg(), &repro);
        assert!(
            report.verdict.same_failure(&replayed),
            "repro must land on the same race"
        );
    }

    #[test]
    fn locked_counter_is_clean() {
        let report = check_program(
            r#"
            var counter = 0;
            var m;
            fn bump() {
                var i = 0;
                while (i < 3) {
                    lock(m);
                    counter = counter + 1;
                    unlock(m);
                    i = i + 1;
                }
            }
            fn main() {
                m = mutex();
                var a = spawn bump();
                var b = spawn bump();
                join(a); join(b);
                println(counter);
            }
            "#,
            &cfg(),
        )
        .unwrap();
        assert_eq!(
            report.verdict,
            Verdict::Clean,
            "mutex discipline must not be flagged"
        );
    }

    #[test]
    fn lock_order_inversion_deadlocks_with_cycle() {
        let src = r#"
            var a;
            var b;
            fn one() { lock(a); yield_now(); lock(b); unlock(b); unlock(a); }
            fn two() { lock(b); yield_now(); lock(a); unlock(a); unlock(b); }
            fn main() {
                a = mutex();
                b = mutex();
                var x = spawn one();
                var y = spawn two();
                join(x); join(y);
            }
        "#;
        let report = check_program(src, &cfg()).unwrap();
        match &report.verdict {
            Verdict::Deadlock { cycle, .. } => {
                assert_eq!(cycle.len(), 2, "AB/BA inversion is a 2-cycle: {cycle:?}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        let repro = report.repro.expect("deadlock must carry a repro");
        let prog = minilang::compile(src).unwrap();
        let replayed = replay_schedule(&prog, &cfg(), &repro);
        assert!(
            report.verdict.same_failure(&replayed),
            "repro replays to a deadlock"
        );
    }

    #[test]
    fn channel_handoff_is_clean() {
        let report = check_program(
            r#"
            var data = 0;
            var c;
            fn producer() { data = 42; send(c, 1); }
            fn main() {
                c = channel(1);
                var p = spawn producer();
                recv(c);
                println(data);
                join(p);
            }
            "#,
            &cfg(),
        )
        .unwrap();
        assert_eq!(report.verdict, Verdict::Clean, "send/recv orders the write");
    }

    #[test]
    fn verdicts_and_repros_are_deterministic() {
        let src = r#"
            var n = 0;
            fn w() { n = n + 1; }
            fn main() { var a = spawn w(); var b = spawn w(); join(a); join(b); }
        "#;
        let r1 = check_program(src, &cfg()).unwrap();
        let r2 = check_program(src, &cfg()).unwrap();
        assert_eq!(r1, r2, "same program + budget => byte-identical report");
    }
}
