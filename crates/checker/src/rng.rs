//! A tiny self-contained PRNG (splitmix64).
//!
//! The checker deliberately does *not* use the `rand` crate: exploration
//! results — including the exact repro schedule a failing lab submission
//! gets back — must be byte-identical across toolchains and `rand`
//! versions, because grading verdicts and golden tests depend on them.

/// Sebastiano Vigna's splitmix64: full-period, passes BigCrush, two lines.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0). Modulo bias is irrelevant for the
    /// tiny `n` (thread counts) the explorer draws.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut counts = [0usize; 4];
        let mut r = SplitMix64::new(99);
        for _ in 0..4000 {
            counts[r.below(4)] += 1;
        }
        for c in counts {
            assert!(c > 800, "skewed draw: {counts:?}");
        }
    }
}
