//! Synthetic traffic patterns for driving the network in tests and benches.
//!
//! Each generator yields `(src, dst, bytes)` triples. They implement the
//! classic patterns used to stress interconnects: uniform random, nearest
//! neighbour, hotspot (everyone talks to rank 0, the pattern a master/worker
//! lab produces), transpose and all-to-all.

use crate::topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One message to inject: source, destination, payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// The traffic patterns the benches sweep over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Every node sends to a uniformly random other node.
    UniformRandom,
    /// Node `i` sends to node `(i + 1) % n`.
    NearestNeighbor,
    /// Every node sends to node 0 (master/worker collectives).
    Hotspot,
    /// Node `i` sends to node `(n - 1) - i` (bit-reversal-like stress).
    Transpose,
    /// Every ordered pair exchanges one message.
    AllToAll,
}

impl Pattern {
    /// All patterns, for sweeps.
    pub const ALL: [Pattern; 5] = [
        Pattern::UniformRandom,
        Pattern::NearestNeighbor,
        Pattern::Hotspot,
        Pattern::Transpose,
        Pattern::AllToAll,
    ];

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform",
            Pattern::NearestNeighbor => "neighbor",
            Pattern::Hotspot => "hotspot",
            Pattern::Transpose => "transpose",
            Pattern::AllToAll => "alltoall",
        }
    }

    /// Generate one round of flows for `n` nodes with `bytes`-sized payloads.
    ///
    /// Self-sends are skipped. `seed` only matters for [`Pattern::UniformRandom`].
    pub fn generate(self, n: usize, bytes: u64, seed: u64) -> Vec<Flow> {
        assert!(n > 0, "traffic needs at least one node");
        match self {
            Pattern::UniformRandom => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n)
                    .filter_map(|src| {
                        if n == 1 {
                            return None;
                        }
                        let mut dst = rng.gen_range(0..n - 1);
                        if dst >= src {
                            dst += 1;
                        }
                        Some(Flow { src, dst, bytes })
                    })
                    .collect()
            }
            Pattern::NearestNeighbor => (0..n)
                .filter_map(|src| {
                    let dst = (src + 1) % n;
                    (dst != src).then_some(Flow { src, dst, bytes })
                })
                .collect(),
            Pattern::Hotspot => (1..n).map(|src| Flow { src, dst: 0, bytes }).collect(),
            Pattern::Transpose => (0..n)
                .filter_map(|src| {
                    let dst = n - 1 - src;
                    (dst != src).then_some(Flow { src, dst, bytes })
                })
                .collect(),
            Pattern::AllToAll => {
                let mut flows = Vec::with_capacity(n * n.saturating_sub(1));
                for src in 0..n {
                    for dst in 0..n {
                        if src != dst {
                            flows.push(Flow { src, dst, bytes });
                        }
                    }
                }
                flows
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = Pattern::UniformRandom.generate(16, 64, 7);
        let b = Pattern::UniformRandom.generate(16, 64, 7);
        let c = Pattern::UniformRandom.generate(16, 64, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|f| f.src != f.dst && f.dst < 16));
    }

    #[test]
    fn neighbor_is_a_cycle() {
        let f = Pattern::NearestNeighbor.generate(4, 1, 0);
        let dsts: Vec<_> = f.iter().map(|x| x.dst).collect();
        assert_eq!(dsts, vec![1, 2, 3, 0]);
    }

    #[test]
    fn hotspot_targets_zero() {
        let f = Pattern::Hotspot.generate(5, 8, 0);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|x| x.dst == 0 && x.src != 0));
    }

    #[test]
    fn transpose_mirrors() {
        let f = Pattern::Transpose.generate(4, 1, 0);
        assert_eq!(
            f[0],
            Flow {
                src: 0,
                dst: 3,
                bytes: 1
            }
        );
        assert_eq!(f.len(), 4);
        // Odd n skips the self-paired middle node.
        let g = Pattern::Transpose.generate(5, 1, 0);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn alltoall_count() {
        let f = Pattern::AllToAll.generate(6, 1, 0);
        assert_eq!(f.len(), 30);
    }

    #[test]
    fn single_node_produces_no_flows() {
        for p in Pattern::ALL {
            assert!(p.generate(1, 1, 0).is_empty(), "{}", p.name());
        }
    }
}
