//! Routing: computing the hop path a message takes through a topology.
//!
//! Structured topologies get closed-form deterministic routes (dimension-
//! ordered for meshes/tori/hypercubes, direction-of-shortest-arc for rings,
//! up-then-down for trees and the segmented cluster); anything else falls
//! back to BFS. All routes are deterministic so message costs are replayable.

use crate::topology::{NodeId, Topology, TopologyKind};
use std::fmt;

/// Routing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Source or destination id is outside the topology.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// No path exists (cannot happen for the built-in connected topologies,
    /// but kept for forward compatibility with user-supplied graphs).
    Unreachable {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (topology has {nodes} nodes)")
            }
            RouteError::Unreachable { from, to } => write!(f, "no route from {from} to {to}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Compute the full hop path from `from` to `to`, inclusive of both ends.
///
/// `route(t, a, a)` returns `vec![a]` (zero hops). The number of *hops* is
/// `path.len() - 1`.
pub fn route(topo: &Topology, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, RouteError> {
    let n = topo.len();
    for node in [from, to] {
        if node >= n {
            return Err(RouteError::NodeOutOfRange { node, nodes: n });
        }
    }
    if from == to {
        return Ok(vec![from]);
    }
    let path = match topo.kind() {
        TopologyKind::Star => route_star(from, to),
        TopologyKind::Ring => route_ring(n, from, to),
        TopologyKind::Mesh2D => route_mesh(topo, from, to, false),
        TopologyKind::Torus2D => route_mesh(topo, from, to, true),
        TopologyKind::Hypercube => route_hypercube(from, to),
        TopologyKind::Tree => route_tree(n, from, to),
        TopologyKind::FullyConnected => vec![from, to],
        TopologyKind::SegmentedCluster => route_cluster(topo, from, to),
    };
    debug_assert!(
        validate_path(topo, &path),
        "generated route is not a valid walk"
    );
    Ok(path)
}

/// Number of hops between two nodes (path length minus one).
pub fn hop_count(topo: &Topology, from: NodeId, to: NodeId) -> Result<usize, RouteError> {
    Ok(route(topo, from, to)?.len() - 1)
}

fn route_star(from: NodeId, to: NodeId) -> Vec<NodeId> {
    if from == 0 || to == 0 {
        vec![from, to]
    } else {
        vec![from, 0, to]
    }
}

fn route_ring(n: usize, from: NodeId, to: NodeId) -> Vec<NodeId> {
    // Walk around the shorter arc; break distance ties clockwise (ascending).
    let cw = (to + n - from) % n;
    let ccw = (from + n - to) % n;
    let mut path = vec![from];
    let mut cur = from;
    if cw <= ccw {
        while cur != to {
            cur = (cur + 1) % n;
            path.push(cur);
        }
    } else {
        while cur != to {
            cur = (cur + n - 1) % n;
            path.push(cur);
        }
    }
    path
}

/// Dimension-ordered (X-then-Y) routing for meshes; tori additionally pick
/// the shorter wrap direction per dimension.
fn route_mesh(topo: &Topology, from: NodeId, to: NodeId, wrap: bool) -> Vec<NodeId> {
    let (rows, cols) = topo.dims();
    let (mut r, mut c) = (from / cols, from % cols);
    let (tr, tc) = (to / cols, to % cols);
    let mut path = vec![from];
    let step_toward = |cur: usize, target: usize, extent: usize| -> usize {
        if cur == target {
            return cur;
        }
        if wrap {
            let fwd = (target + extent - cur) % extent;
            let back = (cur + extent - target) % extent;
            if fwd <= back {
                (cur + 1) % extent
            } else {
                (cur + extent - 1) % extent
            }
        } else if target > cur {
            cur + 1
        } else {
            cur - 1
        }
    };
    while c != tc {
        c = step_toward(c, tc, cols);
        path.push(r * cols + c);
    }
    while r != tr {
        r = step_toward(r, tr, rows);
        path.push(r * cols + c);
    }
    path
}

/// E-cube routing: correct differing address bits from least significant up.
fn route_hypercube(from: NodeId, to: NodeId) -> Vec<NodeId> {
    let mut path = vec![from];
    let mut cur = from;
    let mut diff = from ^ to;
    while diff != 0 {
        let bit = diff.trailing_zeros();
        cur ^= 1 << bit;
        diff &= diff - 1;
        path.push(cur);
    }
    path
}

/// Tree routing: climb both endpoints to their common ancestor.
fn route_tree(_n: usize, from: NodeId, to: NodeId) -> Vec<NodeId> {
    let ancestors = |mut x: NodeId| -> Vec<NodeId> {
        let mut v = vec![x];
        while x > 0 {
            x = (x - 1) / 2;
            v.push(x);
        }
        v
    };
    let ua = ancestors(from);
    let ub = ancestors(to);
    // Find lowest common ancestor: first element of ua present in ub.
    let lca = *ua
        .iter()
        .find(|a| ub.contains(a))
        .expect("root is a common ancestor of every pair");
    let mut path: Vec<NodeId> = ua.iter().copied().take_while(|&x| x != lca).collect();
    path.push(lca);
    let down: Vec<NodeId> = ub.iter().copied().take_while(|&x| x != lca).collect();
    path.extend(down.into_iter().rev());
    path
}

/// Cluster routing: slave -> its master -> head -> target master -> slave,
/// shortcutting when endpoints share a segment or are infrastructure nodes.
fn route_cluster(topo: &Topology, from: NodeId, to: NodeId) -> Vec<NodeId> {
    let master_of = |node: NodeId| -> Option<NodeId> {
        topo.segment_of(node)
            .map(|s| topo.segment_master(s).expect("segment exists"))
    };
    let mut path = vec![from];
    let mut cur = from;
    // Ascend: slave to master (unless already infra or the target).
    if let Some(m) = master_of(cur) {
        if cur != m && to != cur {
            if to == m {
                path.push(m);
                return path;
            }
            path.push(m);
            cur = m;
        }
    }
    let from_seg = topo.segment_of(from);
    let to_seg = topo.segment_of(to);
    if cur != 0 && (to_seg != from_seg || to == 0) {
        // Cross-segment (or to the head): go through the head node.
        path.push(0);
        cur = 0;
    }
    if to == cur {
        return path;
    }
    if let Some(tm) = master_of(to) {
        if cur != tm {
            path.push(tm);
        }
        if to != tm {
            path.push(to);
        }
    } else {
        // Target is the head node, already handled above.
        debug_assert_eq!(to, 0);
    }
    path
}

/// Check every consecutive pair in `path` is an actual link and the walk has
/// no immediate repeats.
pub fn validate_path(topo: &Topology, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    path.iter().all(|&n| n < topo.len()) && path.windows(2).all(|w| topo.are_adjacent(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_shortest(topo: &Topology, from: NodeId, to: NodeId) {
        let p = route(topo, from, to).unwrap();
        assert!(validate_path(topo, &p), "invalid walk {p:?}");
        let d = topo.bfs_distances(from)[to];
        assert_eq!(p.len() - 1, d, "route {p:?} not shortest (bfs={d})");
    }

    #[test]
    fn self_route_is_single_node() {
        let t = Topology::ring(5);
        assert_eq!(route(&t, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn out_of_range_rejected() {
        let t = Topology::ring(3);
        assert!(matches!(
            route(&t, 0, 9),
            Err(RouteError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn ring_takes_short_arc() {
        let t = Topology::ring(8);
        assert_eq!(route(&t, 0, 2).unwrap(), vec![0, 1, 2]);
        assert_eq!(route(&t, 0, 6).unwrap(), vec![0, 7, 6]);
        for a in 0..8 {
            for b in 0..8 {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn mesh_routes_x_then_y() {
        let t = Topology::mesh2d(4, 4);
        let p = route(&t, 0, 15).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 7, 11, 15]);
        for a in 0..16 {
            for b in 0..16 {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn torus_uses_wraparound() {
        let t = Topology::torus2d(4, 4);
        for a in 0..16 {
            for b in 0..16 {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn hypercube_ecube_shortest() {
        let t = Topology::hypercube(4);
        let p = route(&t, 0b0000, 0b1011).unwrap();
        assert_eq!(p, vec![0b0000, 0b0001, 0b0011, 0b1011]);
        for a in 0..16 {
            for b in 0..16 {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn tree_routes_via_lca() {
        let t = Topology::tree(15);
        assert_eq!(route(&t, 7, 8).unwrap(), vec![7, 3, 8]);
        assert_eq!(route(&t, 7, 4).unwrap(), vec![7, 3, 1, 4]);
        for a in 0..15 {
            for b in 0..15 {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn star_and_clique_shortest() {
        for t in [Topology::star(6), Topology::fully_connected(6)] {
            for a in 0..6 {
                for b in 0..6 {
                    assert_shortest(&t, a, b);
                }
            }
        }
    }

    #[test]
    fn cluster_routes_match_hierarchy() {
        let t = Topology::segmented_cluster(4, 16);
        // Same-segment slaves meet at their master.
        let s00 = t.segment_slave(0, 0).unwrap();
        let s01 = t.segment_slave(0, 1).unwrap();
        let m0 = t.segment_master(0).unwrap();
        assert_eq!(route(&t, s00, s01).unwrap(), vec![s00, m0, s01]);
        // Cross-segment goes through the head.
        let s30 = t.segment_slave(3, 0).unwrap();
        let m3 = t.segment_master(3).unwrap();
        assert_eq!(route(&t, s00, s30).unwrap(), vec![s00, m0, 0, m3, s30]);
        // Exhaustive shortest-path check.
        for a in 0..t.len() {
            for b in 0..t.len() {
                assert_shortest(&t, a, b);
            }
        }
    }

    #[test]
    fn cluster_head_and_master_endpoints() {
        let t = Topology::segmented_cluster(2, 3);
        let m1 = t.segment_master(1).unwrap();
        let s10 = t.segment_slave(1, 0).unwrap();
        assert_eq!(route(&t, 0, s10).unwrap(), vec![0, m1, s10]);
        assert_eq!(route(&t, s10, 0).unwrap(), vec![s10, m1, 0]);
        assert_eq!(route(&t, m1, s10).unwrap(), vec![m1, s10]);
        assert_eq!(route(&t, s10, m1).unwrap(), vec![s10, m1]);
    }
}
