//! The discrete-event engine: a simulated clock plus an ordered event queue.
//!
//! The engine is generic over the event payload type `E`. The driving code
//! pops events one at a time (or via [`Engine::run_with`]) and may schedule
//! further events in response; the clock only moves when an event is popped,
//! never backwards.

use crate::event::{EventId, Scheduled};
use crate::time::{SimDuration, SimTime};
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Errors produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `schedule_at` was asked to schedule an event before the current clock.
    ScheduleInPast {
        /// The engine clock when the call was made.
        now: SimTime,
        /// The (earlier) requested fire time.
        requested: SimTime,
    },
    /// The event-count budget given to `run_with` was exhausted before the
    /// queue drained; simulation state is still consistent.
    BudgetExhausted {
        /// Number of events that were processed before stopping.
        processed: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ScheduleInPast { now, requested } => {
                write!(
                    f,
                    "cannot schedule event at {requested} before current time {now}"
                )
            }
            EngineError::BudgetExhausted { processed } => {
                write!(f, "event budget exhausted after {processed} events")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A deterministic discrete-event simulation engine.
///
/// ```
/// use simnet::engine::Engine;
/// use simnet::time::SimDuration;
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule_after(SimDuration::from_nanos(5), "b");
/// eng.schedule_after(SimDuration::from_nanos(2), "a");
/// let mut order = Vec::new();
/// eng.run_with(u64::MAX, |_eng, _t, ev| order.push(ev)).unwrap();
/// assert_eq!(order, vec!["a", "b"]);
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    /// Events scheduled but neither fired nor cancelled.
    live: HashSet<EventId>,
    /// Cancelled events still physically present in the heap.
    cancelled: HashSet<EventId>,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at zero and an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            live: HashSet::new(),
            cancelled: HashSet::new(),
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far (cancelled events excluded).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Returns an [`EventId`] usable with [`Engine::cancel`]. Fails if `at`
    /// is earlier than the current clock (scheduling *at* the current instant
    /// is allowed and fires after already-queued same-instant events).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> Result<EventId, EngineError> {
        if at < self.now {
            return Err(EngineError::ScheduleInPast {
                now: self.now,
                requested: at,
            });
        }
        let id = EventId(self.next_seq);
        self.next_seq += 1;
        self.live.insert(id);
        self.queue.push(Scheduled { at, id, payload });
        Ok(id)
    }

    /// Schedule `payload` to fire `delay` after the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        // Cannot fail: now + delay >= now by construction.
        self.schedule_at(at, payload)
            .expect("future time is never in the past")
    }

    /// Cancel a pending event. Returns `true` if the event was still pending.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped when
    /// popped, which keeps `cancel` O(1).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Pop the next live event, advancing the clock to its fire time.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.queue.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            self.live.remove(&s.id);
            debug_assert!(s.at >= self.now, "event queue went backwards");
            self.now = s.at;
            self.processed += 1;
            return Some((s.at, s.payload));
        }
        None
    }

    /// Peek at the fire time of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads eagerly so peek is accurate.
        while let Some(head) = self.queue.peek() {
            if self.cancelled.contains(&head.id) {
                let s = self.queue.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.id);
            } else {
                return Some(head.at);
            }
        }
        None
    }

    /// Run the simulation to completion (or until `budget` events have been
    /// processed), invoking `handler` for each event. The handler may
    /// schedule further events on the engine it is handed.
    pub fn run_with<F>(&mut self, budget: u64, mut handler: F) -> Result<(), EngineError>
    where
        F: FnMut(&mut Engine<E>, SimTime, E),
    {
        let mut used = 0u64;
        while let Some((t, ev)) = self.next_event() {
            handler(self, t, ev);
            used += 1;
            if used >= budget && !self.is_idle() {
                return Err(EngineError::BudgetExhausted { processed: used });
            }
        }
        Ok(())
    }

    /// Advance the clock to `t` without processing events, used by hybrid
    /// (real-thread + simulated-cost) components. Fails if any pending event
    /// would be skipped.
    pub fn advance_to(&mut self, t: SimTime) -> Result<(), EngineError> {
        if let Some(next) = self.peek_time() {
            if next < t {
                return Err(EngineError::ScheduleInPast {
                    now: next,
                    requested: t,
                });
            }
        }
        if t > self.now {
            self.now = t;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_after(SimDuration(30), 3);
        eng.schedule_after(SimDuration(10), 1);
        eng.schedule_after(SimDuration(20), 2);
        let mut seen = Vec::new();
        eng.run_with(u64::MAX, |_e, _t, v| seen.push(v)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(eng.now(), SimTime(30));
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_after(SimDuration(1), 0);
        let mut count = 0;
        eng.run_with(u64::MAX, |e, _t, v| {
            count += 1;
            if v < 4 {
                e.schedule_after(SimDuration(1), v + 1);
            }
        })
        .unwrap();
        assert_eq!(count, 5);
        assert_eq!(eng.now(), SimTime(5));
    }

    #[test]
    fn schedule_in_past_rejected() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_after(SimDuration(10), 1);
        eng.next_event();
        assert!(matches!(
            eng.schedule_at(SimTime(5), 2),
            Err(EngineError::ScheduleInPast { .. })
        ));
    }

    #[test]
    fn cancel_suppresses_event() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule_after(SimDuration(10), 1);
        eng.schedule_after(SimDuration(20), 2);
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double cancel reports false");
        let (_, v) = eng.next_event().unwrap();
        assert_eq!(v, 2);
        assert!(eng.next_event().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut eng: Engine<u32> = Engine::new();
        assert!(!eng.cancel(EventId(99)));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule_after(SimDuration(i), i as u32);
        }
        let r = eng.run_with(3, |_e, _t, _v| {});
        assert_eq!(r, Err(EngineError::BudgetExhausted { processed: 3 }));
        assert_eq!(eng.pending(), 7);
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut eng: Engine<u32> = Engine::new();
        let a = eng.schedule_after(SimDuration(5), 1);
        eng.schedule_after(SimDuration(9), 2);
        eng.cancel(a);
        assert_eq!(eng.peek_time(), Some(SimTime(9)));
    }

    #[test]
    fn advance_to_moves_clock_when_safe() {
        let mut eng: Engine<u32> = Engine::new();
        eng.advance_to(SimTime(100)).unwrap();
        assert_eq!(eng.now(), SimTime(100));
        eng.schedule_after(SimDuration(5), 1);
        assert!(eng.advance_to(SimTime(200)).is_err());
    }

    #[test]
    fn same_instant_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime(7), 1).unwrap();
        eng.schedule_at(SimTime(7), 2).unwrap();
        eng.schedule_at(SimTime(7), 3).unwrap();
        let mut seen = Vec::new();
        eng.run_with(u64::MAX, |_e, _t, v| seen.push(v)).unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
    }
}
