//! Event queue primitives: scheduled entries with stable tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Identifier of a scheduled event, unique within one [`crate::engine::Engine`].
///
/// Returned by `Engine::schedule*` and usable with `Engine::cancel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number. Monotonic in scheduling order.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A payload scheduled to fire at a given simulated instant.
///
/// Ordered for use inside a *max*-heap such that the earliest time pops
/// first; ties are broken by insertion sequence so that two events scheduled
/// for the same instant fire in the order they were scheduled (FIFO), which
/// keeps runs deterministic.
#[derive(Debug, Clone)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Queue-unique sequence number (insertion order).
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and for
        // equal times the *lowest* sequence number first.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn sched(at: u64, id: u64) -> Scheduled<&'static str> {
        Scheduled {
            at: SimTime(at),
            id: EventId(id),
            payload: "x",
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(sched(30, 0));
        h.push(sched(10, 1));
        h.push(sched(20, 2));
        assert_eq!(h.pop().unwrap().at, SimTime(10));
        assert_eq!(h.pop().unwrap().at, SimTime(20));
        assert_eq!(h.pop().unwrap().at, SimTime(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = BinaryHeap::new();
        h.push(sched(5, 7));
        h.push(sched(5, 3));
        h.push(sched(5, 9));
        assert_eq!(h.pop().unwrap().id, EventId(3));
        assert_eq!(h.pop().unwrap().id, EventId(7));
        assert_eq!(h.pop().unwrap().id, EventId(9));
    }
}
