//! Lightweight statistics used throughout the simulator and benches:
//! counters, running mean/variance (Welford), and fixed-bucket histograms.

use std::fmt;

/// A named monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// A zeroed counter with a display name.
    pub fn new(name: &'static str) -> Counter {
        Counter { name, value: 0 }
    }

    /// Add `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Increment by one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// The counter's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// Online mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs, unlike naive sum-of-squares.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over `[lo, hi)` with uniform-width buckets plus underflow and
/// overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    stats: RunningStats,
}

impl Histogram {
    /// A histogram spanning `[lo, hi)` with `buckets` uniform bins.
    ///
    /// Panics if the range is empty or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            stats: RunningStats::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.stats.push(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// The bucket counts (excluding under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile `q` in [0,1] by scanning bucket mass; returns the
    /// bucket midpoint. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil() as u64;
        let mut cum = self.underflow;
        if cum >= target && self.underflow > 0 {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }

    /// Summary statistics of everything recorded.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("x");
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        assert_eq!(c.to_string(), format!("x={}", u64::MAX));
    }

    #[test]
    fn running_stats_mean_var() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of that classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.5, 5.5, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[5], 1);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantile_midpoints() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 49.5).abs() <= 1.0, "median {med}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).unwrap() >= 99.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }
}
