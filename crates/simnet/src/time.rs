//! Simulated time: integer nanoseconds with saturating arithmetic.
//!
//! Simulation determinism requires integer time; floating point accumulates
//! rounding differences across platforms. One `SimTime` tick is one
//! nanosecond, which spans ~584 years in a `u64` — ample for any run.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// This instant expressed in (floating-point) microseconds, for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds (saturating).
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds (saturating).
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds (saturating).
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Duration as floating-point microseconds, for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating duration scaling, used when costing multi-hop transfers.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-readable rendering of a nanosecond count (`1.5ms`, `42ns`, ...).
fn format_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(10).since(SimTime(50)), SimDuration::ZERO);
        assert_eq!(SimTime(50).since(SimTime(10)), SimDuration(40));
    }

    #[test]
    fn add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_micros(2).nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(1).nanos(), 1_000_000_000);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration(42).to_string(), "42ns");
        assert_eq!(SimDuration(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimDuration(3_000_000_000).to_string(), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(5) > SimDuration(3));
    }
}
