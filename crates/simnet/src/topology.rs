//! Interconnect topologies.
//!
//! The course's message-passing module covers "topology, latency, and
//! routing" (§III.A); this module provides the topology catalogue. Each
//! topology knows its node count, the neighbour set of every node, and a
//! human-readable kind tag. Routing lives in [`crate::routing`].

use std::fmt;

/// Index of a node within a topology (0-based, dense).
pub type NodeId = usize;

/// Discriminant describing the shape of a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Every node connected to a single hub (node 0).
    Star,
    /// Nodes in a cycle, each with two neighbours.
    Ring,
    /// A `rows x cols` grid without wraparound.
    Mesh2D,
    /// A `rows x cols` grid with wraparound links.
    Torus2D,
    /// A `2^d`-node binary hypercube.
    Hypercube,
    /// A complete binary tree (node 0 the root).
    Tree,
    /// Every pair of nodes directly connected.
    FullyConnected,
    /// The paper's cluster fabric: `segments` stars whose hubs (segment
    /// masters) all connect to one grid head node.
    SegmentedCluster,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Star => "star",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh2D => "mesh2d",
            TopologyKind::Torus2D => "torus2d",
            TopologyKind::Hypercube => "hypercube",
            TopologyKind::Tree => "tree",
            TopologyKind::FullyConnected => "fully-connected",
            TopologyKind::SegmentedCluster => "segmented-cluster",
        };
        f.write_str(s)
    }
}

/// A concrete interconnect topology instance.
///
/// Construction is via the named constructors ([`Topology::ring`],
/// [`Topology::hypercube`], [`Topology::segmented_cluster`], ...). Adjacency
/// is computed on demand from the parameters rather than stored, so even
/// large fully-connected topologies are cheap to hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    nodes: usize,
    /// Grid rows (mesh/torus) or hypercube dimension, otherwise 0.
    dim_a: usize,
    /// Grid cols (mesh/torus), otherwise 0.
    dim_b: usize,
    /// SegmentedCluster: number of segments.
    segments: usize,
    /// SegmentedCluster: slave nodes per segment.
    slaves_per_segment: usize,
}

impl Topology {
    /// A star of `n` nodes; node 0 is the hub. `n >= 1`.
    pub fn star(n: usize) -> Topology {
        assert!(n >= 1, "star needs at least one node");
        Topology {
            kind: TopologyKind::Star,
            nodes: n,
            dim_a: 0,
            dim_b: 0,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A ring of `n` nodes. `n >= 2` to have distinct neighbours.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 2, "ring needs at least two nodes");
        Topology {
            kind: TopologyKind::Ring,
            nodes: n,
            dim_a: 0,
            dim_b: 0,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A `rows x cols` mesh without wraparound.
    pub fn mesh2d(rows: usize, cols: usize) -> Topology {
        assert!(rows >= 1 && cols >= 1, "mesh dimensions must be positive");
        Topology {
            kind: TopologyKind::Mesh2D,
            nodes: rows * cols,
            dim_a: rows,
            dim_b: cols,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A `rows x cols` torus (mesh with wraparound links).
    pub fn torus2d(rows: usize, cols: usize) -> Topology {
        assert!(
            rows >= 2 && cols >= 2,
            "torus dimensions must be at least 2"
        );
        Topology {
            kind: TopologyKind::Torus2D,
            nodes: rows * cols,
            dim_a: rows,
            dim_b: cols,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A binary hypercube of dimension `d` (so `2^d` nodes). `d <= 20`.
    pub fn hypercube(d: usize) -> Topology {
        assert!(d <= 20, "hypercube dimension unreasonably large");
        Topology {
            kind: TopologyKind::Hypercube,
            nodes: 1 << d,
            dim_a: d,
            dim_b: 0,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A complete binary tree of `n` nodes rooted at node 0.
    pub fn tree(n: usize) -> Topology {
        assert!(n >= 1, "tree needs at least one node");
        Topology {
            kind: TopologyKind::Tree,
            nodes: n,
            dim_a: 0,
            dim_b: 0,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// A clique of `n` nodes.
    pub fn fully_connected(n: usize) -> Topology {
        assert!(n >= 1, "clique needs at least one node");
        Topology {
            kind: TopologyKind::FullyConnected,
            nodes: n,
            dim_a: 0,
            dim_b: 0,
            segments: 0,
            slaves_per_segment: 0,
        }
    }

    /// The paper's cluster fabric: a grid head node (id 0), `segments`
    /// segment masters (ids `1..=segments`), and `slaves` slave nodes per
    /// segment attached to their master.
    ///
    /// With `segments = 4, slaves = 16` this is the UHD cluster: 4 segments,
    /// "each having sixteen slave nodes and a master node", joined by "a
    /// master server node" (§II).
    pub fn segmented_cluster(segments: usize, slaves: usize) -> Topology {
        assert!(
            segments >= 1 && slaves >= 1,
            "cluster needs segments and slaves"
        );
        Topology {
            kind: TopologyKind::SegmentedCluster,
            nodes: 1 + segments * (1 + slaves),
            dim_a: 0,
            dim_b: 0,
            segments,
            slaves_per_segment: slaves,
        }
    }

    /// The shape tag.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// True for the degenerate zero-node topology (never constructible via
    /// the public constructors, but required by convention alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Grid rows / hypercube dimension, when meaningful.
    pub fn dims(&self) -> (usize, usize) {
        (self.dim_a, self.dim_b)
    }

    /// SegmentedCluster parameters `(segments, slaves_per_segment)`;
    /// `(0, 0)` for other kinds.
    pub fn segment_params(&self) -> (usize, usize) {
        (self.segments, self.slaves_per_segment)
    }

    /// For a segmented cluster: the id of segment `s`'s master node.
    pub fn segment_master(&self, s: usize) -> Option<NodeId> {
        if self.kind == TopologyKind::SegmentedCluster && s < self.segments {
            Some(1 + s * (1 + self.slaves_per_segment))
        } else {
            None
        }
    }

    /// For a segmented cluster: the id of slave `i` of segment `s`.
    pub fn segment_slave(&self, s: usize, i: usize) -> Option<NodeId> {
        if self.kind == TopologyKind::SegmentedCluster
            && s < self.segments
            && i < self.slaves_per_segment
        {
            Some(1 + s * (1 + self.slaves_per_segment) + 1 + i)
        } else {
            None
        }
    }

    /// For a segmented cluster: which segment a node belongs to (`None` for
    /// the grid head node 0 or out-of-range ids).
    pub fn segment_of(&self, node: NodeId) -> Option<usize> {
        if self.kind != TopologyKind::SegmentedCluster || node == 0 || node >= self.nodes {
            return None;
        }
        Some((node - 1) / (1 + self.slaves_per_segment))
    }

    /// The neighbour set of `node`. Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        assert!(
            node < self.nodes,
            "node {node} out of range ({} nodes)",
            self.nodes
        );
        match self.kind {
            TopologyKind::Star => {
                if node == 0 {
                    (1..self.nodes).collect()
                } else {
                    vec![0]
                }
            }
            TopologyKind::Ring => {
                let n = self.nodes;
                let prev = (node + n - 1) % n;
                let next = (node + 1) % n;
                if prev == next {
                    vec![prev]
                } else {
                    vec![prev, next]
                }
            }
            TopologyKind::Mesh2D | TopologyKind::Torus2D => self.grid_neighbors(node),
            TopologyKind::Hypercube => (0..self.dim_a).map(|b| node ^ (1 << b)).collect(),
            TopologyKind::Tree => {
                let mut v = Vec::new();
                if node > 0 {
                    v.push((node - 1) / 2);
                }
                let l = 2 * node + 1;
                let r = 2 * node + 2;
                if l < self.nodes {
                    v.push(l);
                }
                if r < self.nodes {
                    v.push(r);
                }
                v
            }
            TopologyKind::FullyConnected => (0..self.nodes).filter(|&m| m != node).collect(),
            TopologyKind::SegmentedCluster => self.cluster_neighbors(node),
        }
    }

    fn grid_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let (rows, cols) = (self.dim_a, self.dim_b);
        let (r, c) = (node / cols, node % cols);
        let wrap = self.kind == TopologyKind::Torus2D;
        let mut v = Vec::with_capacity(4);
        // Up / down / left / right, with optional wraparound.
        if r > 0 {
            v.push((r - 1) * cols + c);
        } else if wrap && rows > 1 {
            v.push((rows - 1) * cols + c);
        }
        if r + 1 < rows {
            v.push((r + 1) * cols + c);
        } else if wrap && rows > 1 && r != 0 {
            v.push(c);
        }
        if c > 0 {
            v.push(r * cols + (c - 1));
        } else if wrap && cols > 1 {
            v.push(r * cols + (cols - 1));
        }
        if c + 1 < cols {
            v.push(r * cols + (c + 1));
        } else if wrap && cols > 1 && c != 0 {
            v.push(r * cols);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    fn cluster_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let span = 1 + self.slaves_per_segment;
        if node == 0 {
            // Grid head node: connected to every segment master.
            (0..self.segments).map(|s| 1 + s * span).collect()
        } else {
            let seg = (node - 1) / span;
            let master = 1 + seg * span;
            if node == master {
                // Segment master: head node plus its slaves.
                let mut v = vec![0];
                v.extend((0..self.slaves_per_segment).map(|i| master + 1 + i));
                v
            } else {
                // Slave: only its segment master.
                vec![master]
            }
        }
    }

    /// True when `a` and `b` share a direct link.
    pub fn are_adjacent(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.neighbors(a).contains(&b)
    }

    /// Network diameter (longest shortest path), computed by BFS from every
    /// node. Intended for tests and reporting, not hot paths.
    pub fn diameter(&self) -> usize {
        (0..self.nodes)
            .map(|s| *self.bfs_distances(s).iter().max().expect("nonempty"))
            .max()
            .unwrap_or(0)
    }

    /// BFS distances from `src` to every node.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.nodes];
        dist[src] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_hub_sees_all() {
        let t = Topology::star(5);
        assert_eq!(t.neighbors(0), vec![1, 2, 3, 4]);
        assert_eq!(t.neighbors(3), vec![0]);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn ring_neighbors_wrap() {
        let t = Topology::ring(4);
        assert_eq!(t.neighbors(0), vec![3, 1]);
        assert_eq!(t.neighbors(3), vec![2, 0]);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn two_node_ring_dedups() {
        let t = Topology::ring(2);
        assert_eq!(t.neighbors(0), vec![1]);
    }

    #[test]
    fn mesh_corner_and_center() {
        let t = Topology::mesh2d(3, 3);
        assert_eq!(t.neighbors(0), vec![1, 3]);
        let mut c = t.neighbors(4);
        c.sort_unstable();
        assert_eq!(c, vec![1, 3, 5, 7]);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::torus2d(3, 3);
        let mut n0 = t.neighbors(0);
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2, 3, 6]);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn hypercube_dim4() {
        let t = Topology::hypercube(4);
        assert_eq!(t.len(), 16);
        assert_eq!(t.neighbors(0), vec![1, 2, 4, 8]);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn tree_parent_child() {
        let t = Topology::tree(7);
        assert_eq!(t.neighbors(0), vec![1, 2]);
        assert_eq!(t.neighbors(1), vec![0, 3, 4]);
        assert_eq!(t.neighbors(6), vec![2]);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn clique_all_pairs_adjacent() {
        let t = Topology::fully_connected(5);
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(t.are_adjacent(a, b), a != b);
            }
        }
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn segmented_cluster_layout_matches_paper() {
        // The UHD cluster: 4 segments x 16 slaves + 4 masters + head = 69.
        let t = Topology::segmented_cluster(4, 16);
        assert_eq!(t.len(), 69);
        assert_eq!(t.segment_master(0), Some(1));
        assert_eq!(t.segment_master(3), Some(52));
        assert_eq!(t.segment_slave(0, 0), Some(2));
        assert_eq!(t.segment_slave(3, 15), Some(68));
        // Head connects to the four masters.
        assert_eq!(t.neighbors(0), vec![1, 18, 35, 52]);
        // A slave connects only to its master.
        assert_eq!(t.neighbors(2), vec![1]);
        // Slave in segment 0 to slave in segment 3: slave->master->head->master->slave.
        assert_eq!(t.bfs_distances(2)[68], 4);
        assert_eq!(t.segment_of(2), Some(0));
        assert_eq!(t.segment_of(68), Some(3));
        assert_eq!(t.segment_of(0), None);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn mesh_1xn_is_a_path() {
        let t = Topology::mesh2d(1, 5);
        assert_eq!(t.neighbors(0), vec![1]);
        assert_eq!(t.neighbors(2), vec![1, 3]);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbors_out_of_range_panics() {
        Topology::ring(3).neighbors(3);
    }
}
