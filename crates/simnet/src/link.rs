//! The link model: per-hop latency plus bandwidth-limited transfer time.
//!
//! A transfer of `b` bytes over one link costs `latency + b / bandwidth`.
//! This is the standard "alpha-beta" (latency-bandwidth) cost model used in
//! parallel-computing courses, which is exactly the mental model the paper's
//! message-passing module teaches (latency and routing, §III.A).

use crate::time::SimDuration;

/// Parameters shared by every link of a given class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Per-hop wire latency in nanoseconds (the "alpha" term).
    pub latency_ns: u64,
    /// Bandwidth in bytes per second (the "1/beta" term).
    pub bytes_per_sec: u64,
}

impl LinkProfile {
    /// A profile with the given latency (ns) and bandwidth (bytes/s).
    ///
    /// `bytes_per_sec` must be nonzero.
    pub fn new(latency_ns: u64, bytes_per_sec: u64) -> LinkProfile {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        LinkProfile {
            latency_ns,
            bytes_per_sec,
        }
    }

    /// Gigabit-Ethernet-like: 50µs latency, 125 MB/s.
    pub fn gigabit_ethernet() -> LinkProfile {
        LinkProfile::new(50_000, 125_000_000)
    }

    /// Fast intra-chassis backplane: 2µs latency, 2 GB/s.
    pub fn backplane() -> LinkProfile {
        LinkProfile::new(2_000, 2_000_000_000)
    }

    /// Campus-grade uplink between segments: 100µs latency, 12.5 MB/s.
    pub fn campus_uplink() -> LinkProfile {
        LinkProfile::new(100_000, 12_500_000)
    }

    /// Time to push `bytes` through one link of this profile.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        // ceil(bytes * 1e9 / bw) in u128 to avoid overflow for large payloads.
        let num = bytes as u128 * 1_000_000_000u128;
        let bw = self.bytes_per_sec as u128;
        let ser = num.div_ceil(bw);
        let ser = u64::try_from(ser).unwrap_or(u64::MAX);
        SimDuration(self.latency_ns.saturating_add(ser))
    }
}

/// One directed link instance, tracking utilization for congestion stats.
#[derive(Debug, Clone)]
pub struct Link {
    profile: LinkProfile,
    /// Total bytes ever carried.
    bytes_carried: u64,
    /// Total messages ever carried.
    messages_carried: u64,
}

impl Link {
    /// A new idle link with the given profile.
    pub fn new(profile: LinkProfile) -> Link {
        Link {
            profile,
            bytes_carried: 0,
            messages_carried: 0,
        }
    }

    /// A link with pre-existing traffic history, used when swapping a link's
    /// profile without losing its statistics.
    pub fn with_history(profile: LinkProfile, bytes_carried: u64, messages_carried: u64) -> Link {
        Link {
            profile,
            bytes_carried,
            messages_carried,
        }
    }

    /// The link's cost parameters.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// Record a message of `bytes` crossing the link and return its cost.
    pub fn carry(&mut self, bytes: u64) -> SimDuration {
        self.bytes_carried = self.bytes_carried.saturating_add(bytes);
        self.messages_carried += 1;
        self.profile.transfer_time(bytes)
    }

    /// Total bytes this link has carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages this link has carried.
    pub fn messages_carried(&self) -> u64 {
        self.messages_carried
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_costs_latency_only() {
        let p = LinkProfile::new(500, 1_000_000);
        assert_eq!(p.transfer_time(0), SimDuration(500));
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1 byte at 3 bytes/s = ceil(1e9/3) = 333_333_334 ns.
        let p = LinkProfile::new(0, 3);
        assert_eq!(p.transfer_time(1), SimDuration(333_333_334));
    }

    #[test]
    fn large_transfer_no_overflow() {
        let p = LinkProfile::new(1, 1);
        // u64::MAX bytes at 1 B/s saturates instead of overflowing.
        assert_eq!(p.transfer_time(u64::MAX), SimDuration(u64::MAX));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let bp = LinkProfile::backplane();
        let ge = LinkProfile::gigabit_ethernet();
        let cu = LinkProfile::campus_uplink();
        let msg = 1 << 20; // 1 MiB
        assert!(bp.transfer_time(msg) < ge.transfer_time(msg));
        assert!(ge.transfer_time(msg) < cu.transfer_time(msg));
    }

    #[test]
    fn link_accumulates_stats() {
        let mut l = Link::new(LinkProfile::new(10, 1_000_000_000));
        l.carry(100);
        l.carry(50);
        assert_eq!(l.bytes_carried(), 150);
        assert_eq!(l.messages_carried(), 2);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        LinkProfile::new(1, 0);
    }
}
