//! The network: a topology plus link profiles, producing message costs.
//!
//! [`Network::message_cost`] is the workhorse: given source, destination and
//! payload size it routes the message and sums per-hop costs. A store-and-
//! forward model is used (each hop pays full latency + serialization), which
//! matches the switched-Ethernet fabric of the paper's cluster.

use crate::link::{Link, LinkProfile};
use crate::routing::{route, RouteError};
use crate::stats::Counter;
use crate::time::SimDuration;
use crate::topology::{NodeId, Topology, TopologyKind};
use std::collections::HashMap;
use std::fmt;

/// Errors from network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Underlying routing failed.
    Route(RouteError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Route(e) => write!(f, "routing failed: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Route(e) => Some(e),
        }
    }
}

impl From<RouteError> for NetworkError {
    fn from(e: RouteError) -> Self {
        NetworkError::Route(e)
    }
}

/// The result of costing one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageCost {
    /// Total simulated transfer time.
    pub total: SimDuration,
    /// Number of links crossed.
    pub hops: usize,
    /// The full node path, endpoints inclusive.
    pub path: Vec<NodeId>,
}

/// A simulated interconnect: topology + per-link-class profiles + stats.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    default_profile: LinkProfile,
    /// Overrides for specific directed links (from, to).
    overrides: HashMap<(NodeId, NodeId), LinkProfile>,
    /// Live per-directed-link state (created lazily).
    links: HashMap<(NodeId, NodeId), Link>,
    messages: Counter,
    bytes: Counter,
}

impl Network {
    /// A network where every link uses `profile`.
    pub fn new(topo: Topology, profile: LinkProfile) -> Network {
        Network {
            topo,
            default_profile: profile,
            overrides: HashMap::new(),
            links: HashMap::new(),
            messages: Counter::new("messages"),
            bytes: Counter::new("bytes"),
        }
    }

    /// The paper's cluster fabric with realistic tiered links: backplane
    /// within a segment, campus uplinks from segment masters to the head.
    pub fn uhd_cluster() -> Network {
        let topo = Topology::segmented_cluster(4, 16);
        let mut net = Network::new(topo, LinkProfile::backplane());
        // Master <-> head links are slower campus uplinks.
        let heads: Vec<NodeId> = net.topo.neighbors(0);
        for m in heads {
            net.set_link_profile(0, m, LinkProfile::campus_uplink());
            net.set_link_profile(m, 0, LinkProfile::campus_uplink());
        }
        net
    }

    /// The topology backing this network.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Override the profile of the directed link `from -> to`.
    ///
    /// Takes effect for future messages; any accumulated stats for the link
    /// are preserved.
    pub fn set_link_profile(&mut self, from: NodeId, to: NodeId, profile: LinkProfile) {
        self.overrides.insert((from, to), profile);
        if let Some(l) = self.links.get(&(from, to)) {
            let replacement = Link::with_history(profile, l.bytes_carried(), l.messages_carried());
            self.links.insert((from, to), replacement);
        }
    }

    fn profile_for(&self, from: NodeId, to: NodeId) -> LinkProfile {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_profile)
    }

    /// Route and cost a message of `bytes` from `from` to `to`, updating
    /// per-link and aggregate statistics.
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<MessageCost, NetworkError> {
        let path = route(&self.topo, from, to)?;
        let mut total = SimDuration::ZERO;
        for w in path.windows(2) {
            let key = (w[0], w[1]);
            let profile = self.profile_for(w[0], w[1]);
            let link = self.links.entry(key).or_insert_with(|| Link::new(profile));
            total += link.carry(bytes);
        }
        self.messages.add(1);
        self.bytes.add(bytes);
        Ok(MessageCost {
            total,
            hops: path.len() - 1,
            path,
        })
    }

    /// Cost a message without mutating statistics (pure query).
    pub fn message_cost(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<MessageCost, NetworkError> {
        let path = route(&self.topo, from, to)?;
        let mut total = SimDuration::ZERO;
        for w in path.windows(2) {
            total += self.profile_for(w[0], w[1]).transfer_time(bytes);
        }
        Ok(MessageCost {
            total,
            hops: path.len() - 1,
            path,
        })
    }

    /// Total messages sent through [`Network::send`].
    pub fn total_messages(&self) -> u64 {
        self.messages.get()
    }

    /// Total payload bytes sent through [`Network::send`].
    pub fn total_bytes(&self) -> u64 {
        self.bytes.get()
    }

    /// Bytes carried by the directed link `from -> to` (0 if never used).
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.links.get(&(from, to)).map_or(0, Link::bytes_carried)
    }

    /// The busiest directed link so far, as `((from, to), bytes)`.
    pub fn hottest_link(&self) -> Option<((NodeId, NodeId), u64)> {
        self.links
            .iter()
            .max_by_key(|(k, l)| (l.bytes_carried(), std::cmp::Reverse(*k)))
            .map(|(k, l)| (*k, l.bytes_carried()))
    }

    /// Whether this network models the paper's segmented cluster.
    pub fn is_cluster_fabric(&self) -> bool {
        self.topo.kind() == TopologyKind::SegmentedCluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_sums_per_hop() {
        let net = Network::new(Topology::ring(8), LinkProfile::new(100, 1_000_000_000));
        // 0 -> 2 is two hops; 1000 bytes at 1 GB/s = 1000ns serialization/hop.
        let c = net.message_cost(0, 2, 1000).unwrap();
        assert_eq!(c.hops, 2);
        assert_eq!(c.total, SimDuration(2 * (100 + 1000)));
    }

    #[test]
    fn self_send_is_free() {
        let mut net = Network::new(Topology::ring(4), LinkProfile::new(100, 1_000));
        let c = net.send(1, 1, 4096).unwrap();
        assert_eq!(c.hops, 0);
        assert_eq!(c.total, SimDuration::ZERO);
    }

    #[test]
    fn send_tracks_stats() {
        let mut net = Network::new(Topology::star(4), LinkProfile::new(10, 1_000_000_000));
        net.send(1, 2, 100).unwrap();
        net.send(1, 3, 50).unwrap();
        assert_eq!(net.total_messages(), 2);
        assert_eq!(net.total_bytes(), 150);
        // Both went via the hub, so hub-outbound carried bytes too.
        assert_eq!(net.link_bytes(1, 0), 150);
        assert_eq!(net.link_bytes(0, 2), 100);
        assert_eq!(net.link_bytes(0, 3), 50);
        let ((_f, _t), b) = net.hottest_link().unwrap();
        assert_eq!(b, 150);
    }

    #[test]
    fn overrides_change_cost() {
        let mut net = Network::new(Topology::ring(4), LinkProfile::new(100, 1_000_000_000));
        let before = net.message_cost(0, 1, 0).unwrap().total;
        net.set_link_profile(0, 1, LinkProfile::new(5_000, 1_000_000_000));
        let after = net.message_cost(0, 1, 0).unwrap().total;
        assert_eq!(before, SimDuration(100));
        assert_eq!(after, SimDuration(5_000));
    }

    #[test]
    fn uhd_cluster_cross_segment_is_slower() {
        let net = Network::uhd_cluster();
        let t = net.topology().clone();
        let a = t.segment_slave(0, 0).unwrap();
        let b = t.segment_slave(0, 1).unwrap();
        let c = t.segment_slave(1, 0).unwrap();
        let local = net.message_cost(a, b, 4096).unwrap();
        let remote = net.message_cost(a, c, 4096).unwrap();
        assert_eq!(local.hops, 2);
        assert_eq!(remote.hops, 4);
        // Remote pays two campus-uplink hops; should be much slower.
        assert!(remote.total.nanos() > 5 * local.total.nanos());
    }

    #[test]
    fn route_error_propagates() {
        let net = Network::new(Topology::ring(3), LinkProfile::new(1, 1));
        assert!(net.message_cost(0, 10, 1).is_err());
    }
}
