//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the substrate beneath the simulated cluster: it provides a
//! deterministic discrete-event engine ([`engine::Engine`]), a catalogue of
//! interconnect topologies ([`topology::Topology`]), shortest-path and
//! dimension-ordered routing ([`routing`]), a latency/bandwidth link model
//! ([`link::Link`]), and a message-cost model ([`network::Network`]) used by
//! the cluster model, the MPI kernel and the UMA/NUMA labs.
//!
//! The paper's cluster connects four 16-node segments through segment masters
//! to a grid head node; the message-passing course module additionally covers
//! "topology, latency, and routing" (§III.A). This crate supplies all of
//! those as first-class, benchmarkable objects.
//!
//! ## Determinism
//!
//! All simulated time is integer nanoseconds ([`time::SimTime`]); the event
//! queue breaks ties by insertion sequence, so a simulation run is a pure
//! function of its inputs. Randomized workloads take explicit RNG seeds.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! // A 16-node hypercube with 1µs links and 1 GiB/s bandwidth.
//! let net = Network::new(Topology::hypercube(4), LinkProfile::new(1_000, 1 << 30));
//! let cost = net.message_cost(0, 15, 4096).unwrap();
//! assert!(cost.hops >= 1 && cost.hops <= 4);
//! ```

pub mod engine;
pub mod event;
pub mod link;
pub mod network;
pub mod routing;
pub mod stats;
pub mod time;
pub mod topology;
pub mod traffic;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::engine::{Engine, EngineError};
    pub use crate::event::{EventId, Scheduled};
    pub use crate::link::{Link, LinkProfile};
    pub use crate::network::{MessageCost, Network, NetworkError};
    pub use crate::routing::{route, RouteError};
    pub use crate::stats::{Counter, Histogram, RunningStats};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{NodeId, Topology, TopologyKind};
    pub use crate::traffic::{Flow, Pattern};
}

pub use prelude::*;
