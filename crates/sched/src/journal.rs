//! Durability records and codecs for the scheduler.
//!
//! The scheduler is *command*-logged: every externally driven mutation —
//! submit, cancel, tick, drain/undrain, stdin pushes, outcome writes —
//! appends one [`SchedRecord`]. Replay re-executes the same commands, in
//! order, against a scheduler built with identical configuration. The only
//! randomness is the snapshot-able [`crate::rng::JitterRng`], so a replayed
//! schedule is identical to the original: same dispatches, same backoffs,
//! same accounting.
//!
//! Snapshots capture the full scheduler state (jobs, queue, clock, RNG,
//! accounting ledger, node health); the codec helpers live here, next to
//! the record codec, while [`crate::Scheduler`] drives them from `queue.rs`
//! where its private fields are visible.

use crate::job::{JobId, JobKind, JobSpec, JobState, StdStreams};
use crate::retry::RetryPolicy;
use cluster::{Allocation, NodeHealth, SlaveId};
use std::collections::BTreeMap;
use wal::{CodecError, Dec, Enc};

/// One logged scheduler command.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedRecord {
    /// `submit(spec)` — job ids are assigned deterministically, so the
    /// record does not need to carry the resulting id.
    Submit {
        /// The submission.
        spec: JobSpec,
    },
    /// `cancel(id)`.
    Cancel {
        /// The job.
        id: JobId,
    },
    /// One `tick()` — completions, faults, recovery and dispatch all
    /// re-derive deterministically from state + config.
    Tick,
    /// `drain_node(node)`.
    DrainNode {
        /// The node.
        node: SlaveId,
    },
    /// `undrain_node(node)`.
    UndrainNode {
        /// The node.
        node: SlaveId,
    },
    /// `push_stdin(id, line)`.
    PushStdin {
        /// The job.
        id: JobId,
        /// The input line.
        line: String,
    },
    /// `set_outcome(id, ..)` — stream output and runtime discovered by the
    /// execution engine, which the scheduler cannot re-derive on its own.
    SetOutcome {
        /// The job.
        id: JobId,
        /// Text appended to stdout, if any.
        stdout: Option<String>,
        /// Text appended to stderr, if any.
        stderr: Option<String>,
        /// Revised actual runtime in ticks, if known.
        actual_ticks: Option<u64>,
    },
}

const TAG_SUBMIT: u8 = 0;
const TAG_CANCEL: u8 = 1;
const TAG_TICK: u8 = 2;
const TAG_DRAIN: u8 = 3;
const TAG_UNDRAIN: u8 = 4;
const TAG_PUSH_STDIN: u8 = 5;
const TAG_SET_OUTCOME: u8 = 6;

impl SchedRecord {
    /// Serialize to a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            SchedRecord::Submit { spec } => {
                e.u8(TAG_SUBMIT);
                enc_spec(&mut e, spec);
            }
            SchedRecord::Cancel { id } => {
                e.u8(TAG_CANCEL).u64(id.0);
            }
            SchedRecord::Tick => {
                e.u8(TAG_TICK);
            }
            SchedRecord::DrainNode { node } => {
                e.u8(TAG_DRAIN);
                enc_node(&mut e, *node);
            }
            SchedRecord::UndrainNode { node } => {
                e.u8(TAG_UNDRAIN);
                enc_node(&mut e, *node);
            }
            SchedRecord::PushStdin { id, line } => {
                e.u8(TAG_PUSH_STDIN).u64(id.0).str(line);
            }
            SchedRecord::SetOutcome {
                id,
                stdout,
                stderr,
                actual_ticks,
            } => {
                e.u8(TAG_SET_OUTCOME)
                    .u64(id.0)
                    .opt_str(stdout.as_deref())
                    .opt_str(stderr.as_deref())
                    .opt_u64(*actual_ticks);
            }
        }
        e.into_bytes()
    }

    /// Parse a WAL payload back into a record.
    pub fn decode(payload: &[u8]) -> Result<SchedRecord, CodecError> {
        let mut d = Dec::new(payload);
        let rec = match d.u8()? {
            TAG_SUBMIT => SchedRecord::Submit {
                spec: dec_spec(&mut d)?,
            },
            TAG_CANCEL => SchedRecord::Cancel {
                id: JobId(d.u64()?),
            },
            TAG_TICK => SchedRecord::Tick,
            TAG_DRAIN => SchedRecord::DrainNode {
                node: dec_node(&mut d)?,
            },
            TAG_UNDRAIN => SchedRecord::UndrainNode {
                node: dec_node(&mut d)?,
            },
            TAG_PUSH_STDIN => SchedRecord::PushStdin {
                id: JobId(d.u64()?),
                line: d.str()?,
            },
            TAG_SET_OUTCOME => SchedRecord::SetOutcome {
                id: JobId(d.u64()?),
                stdout: d.opt_str()?,
                stderr: d.opt_str()?,
                actual_ticks: d.opt_u64()?,
            },
            _ => return Err(CodecError("unknown sched record tag")),
        };
        d.finish()?;
        Ok(rec)
    }
}

// ---- snapshot codec helpers (shared with queue.rs) -----------------------

pub(crate) fn enc_node(e: &mut Enc, n: SlaveId) {
    e.u64(n.segment as u64).u64(n.slot as u64);
}

pub(crate) fn dec_node(d: &mut Dec) -> Result<SlaveId, CodecError> {
    Ok(SlaveId {
        segment: d.u64()? as usize,
        slot: d.u64()? as usize,
    })
}

pub(crate) fn enc_health(e: &mut Enc, h: NodeHealth) {
    e.u8(match h {
        NodeHealth::Up => 0,
        NodeHealth::Draining => 1,
        NodeHealth::Down => 2,
    });
}

pub(crate) fn dec_health(d: &mut Dec) -> Result<NodeHealth, CodecError> {
    match d.u8()? {
        0 => Ok(NodeHealth::Up),
        1 => Ok(NodeHealth::Draining),
        2 => Ok(NodeHealth::Down),
        _ => Err(CodecError("bad node health tag")),
    }
}

pub(crate) fn enc_retry(e: &mut Enc, p: &RetryPolicy) {
    e.u32(p.max_attempts)
        .u64(p.base_backoff)
        .u64(p.max_backoff)
        .u64(p.jitter);
}

pub(crate) fn dec_retry(d: &mut Dec) -> Result<RetryPolicy, CodecError> {
    Ok(RetryPolicy {
        max_attempts: d.u32()?,
        base_backoff: d.u64()?,
        max_backoff: d.u64()?,
        jitter: d.u64()?,
    })
}

pub(crate) fn enc_spec(e: &mut Enc, s: &JobSpec) {
    e.str(&s.user).str(&s.executable);
    match s.kind {
        JobKind::Sequential => {
            e.u8(0);
        }
        JobKind::Parallel { cores } => {
            e.u8(1).u32(cores);
        }
        JobKind::Interactive => {
            e.u8(2);
        }
    }
    e.u64(s.estimated_ticks)
        .u64(s.actual_ticks)
        .opt_u64(s.timeout_ticks);
    match &s.retry {
        Some(p) => {
            e.bool(true);
            enc_retry(e, p);
        }
        None => {
            e.bool(false);
        }
    }
}

pub(crate) fn dec_spec(d: &mut Dec) -> Result<JobSpec, CodecError> {
    let user = d.str()?;
    let executable = d.str()?;
    let kind = match d.u8()? {
        0 => JobKind::Sequential,
        1 => JobKind::Parallel { cores: d.u32()? },
        2 => JobKind::Interactive,
        _ => return Err(CodecError("bad job kind tag")),
    };
    Ok(JobSpec {
        user,
        executable,
        kind,
        estimated_ticks: d.u64()?,
        actual_ticks: d.u64()?,
        timeout_ticks: d.opt_u64()?,
        retry: if d.bool()? { Some(dec_retry(d)?) } else { None },
    })
}

pub(crate) fn enc_state(e: &mut Enc, s: &JobState) {
    match s {
        JobState::Pending => {
            e.u8(0);
        }
        JobState::Running { started_at } => {
            e.u8(1).u64(*started_at);
        }
        JobState::Completed { at } => {
            e.u8(2).u64(*at);
        }
        JobState::Cancelled { at } => {
            e.u8(3).u64(*at);
        }
        JobState::Failed { at, reason } => {
            e.u8(4).u64(*at).str(reason);
        }
        JobState::Requeued { attempt, retry_at } => {
            e.u8(5).u32(*attempt).u64(*retry_at);
        }
        JobState::TimedOut { at } => {
            e.u8(6).u64(*at);
        }
        JobState::NodeLost { at, attempts } => {
            e.u8(7).u64(*at).u32(*attempts);
        }
    }
}

pub(crate) fn dec_state(d: &mut Dec) -> Result<JobState, CodecError> {
    Ok(match d.u8()? {
        0 => JobState::Pending,
        1 => JobState::Running {
            started_at: d.u64()?,
        },
        2 => JobState::Completed { at: d.u64()? },
        3 => JobState::Cancelled { at: d.u64()? },
        4 => JobState::Failed {
            at: d.u64()?,
            reason: d.str()?,
        },
        5 => JobState::Requeued {
            attempt: d.u32()?,
            retry_at: d.u64()?,
        },
        6 => JobState::TimedOut { at: d.u64()? },
        7 => JobState::NodeLost {
            at: d.u64()?,
            attempts: d.u32()?,
        },
        _ => return Err(CodecError("bad job state tag")),
    })
}

pub(crate) fn enc_streams(e: &mut Enc, s: &StdStreams) {
    e.str(&s.stdout).str(&s.stderr).u32(s.stdin.len() as u32);
    for line in &s.stdin {
        e.str(line);
    }
}

pub(crate) fn dec_streams(d: &mut Dec) -> Result<StdStreams, CodecError> {
    let stdout = d.str()?;
    let stderr = d.str()?;
    let n = d.u32()?;
    let mut stdin = std::collections::VecDeque::new();
    for _ in 0..n {
        stdin.push_back(d.str()?);
    }
    Ok(StdStreams {
        stdout,
        stderr,
        stdin,
    })
}

pub(crate) fn enc_alloc(e: &mut Enc, a: &Allocation) {
    e.u32(a.cores.len() as u32);
    for (&node, &take) in &a.cores {
        enc_node(e, node);
        e.u32(take);
    }
}

pub(crate) fn dec_alloc(d: &mut Dec) -> Result<Allocation, CodecError> {
    let n = d.u32()?;
    let mut cores = BTreeMap::new();
    for _ in 0..n {
        let node = dec_node(d)?;
        cores.insert(node, d.u32()?);
    }
    Ok(Allocation { cores })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let records = vec![
            SchedRecord::Submit {
                spec: JobSpec::parallel("alice", "solver", 8, 40)
                    .with_timeout(500)
                    .with_retry(RetryPolicy::fixed(3, 5)),
            },
            SchedRecord::Submit {
                spec: JobSpec::interactive("bob", "shell"),
            },
            SchedRecord::Cancel { id: JobId(7) },
            SchedRecord::Tick,
            SchedRecord::DrainNode {
                node: SlaveId {
                    segment: 1,
                    slot: 3,
                },
            },
            SchedRecord::UndrainNode {
                node: SlaveId {
                    segment: 0,
                    slot: 0,
                },
            },
            SchedRecord::PushStdin {
                id: JobId(3),
                line: "42".into(),
            },
            SchedRecord::SetOutcome {
                id: JobId(3),
                stdout: Some("hello\n".into()),
                stderr: None,
                actual_ticks: Some(12),
            },
        ];
        for r in records {
            assert_eq!(SchedRecord::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn garbage_payload_rejected() {
        assert!(SchedRecord::decode(&[0xee]).is_err());
        assert!(SchedRecord::decode(&[]).is_err());
        // Trailing bytes after a valid record are an error too.
        let mut bytes = SchedRecord::Tick.encode();
        bytes.push(0);
        assert!(SchedRecord::decode(&bytes).is_err());
    }

    #[test]
    fn state_and_stream_helpers_roundtrip() {
        let states = vec![
            JobState::Pending,
            JobState::Running { started_at: 4 },
            JobState::Completed { at: 9 },
            JobState::Cancelled { at: 2 },
            JobState::Failed {
                at: 3,
                reason: "node down".into(),
            },
            JobState::Requeued {
                attempt: 2,
                retry_at: 17,
            },
            JobState::TimedOut { at: 30 },
            JobState::NodeLost {
                at: 31,
                attempts: 3,
            },
        ];
        for s in states {
            let mut e = Enc::new();
            enc_state(&mut e, &s);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(dec_state(&mut d).unwrap(), s);
            d.finish().unwrap();
        }

        let mut streams = StdStreams {
            stdout: "out".into(),
            stderr: "err".into(),
            stdin: Default::default(),
        };
        streams.push_stdin("a");
        streams.push_stdin("b");
        let mut e = Enc::new();
        enc_streams(&mut e, &streams);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(dec_streams(&mut d).unwrap(), streams);

        let mut cores = BTreeMap::new();
        cores.insert(
            SlaveId {
                segment: 0,
                slot: 1,
            },
            4,
        );
        cores.insert(
            SlaveId {
                segment: 2,
                slot: 0,
            },
            2,
        );
        let alloc = Allocation { cores };
        let mut e = Enc::new();
        enc_alloc(&mut e, &alloc);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(dec_alloc(&mut d).unwrap().cores, alloc.cores);
    }
}
