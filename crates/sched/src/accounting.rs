//! Per-user usage accounting: who consumed what, for fair-share reporting.

use std::collections::BTreeMap;

/// One user's accumulated usage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserUsage {
    /// Completed jobs.
    pub jobs_completed: u64,
    /// Core-ticks consumed (cores x runtime).
    pub core_ticks: u64,
    /// Total first-attempt queue-wait ticks across completed jobs (time
    /// from submission to the first dispatch).
    pub wait_ticks: u64,
    /// Retry dispatches granted after node losses.
    pub retry_attempts: u64,
    /// Times one of this user's running jobs lost its node.
    pub node_losses: u64,
    /// Ticks jobs spent waiting *after* a node loss (backoff + requeue
    /// time), kept separate from first-attempt wait so recovery latency is
    /// visible in fair-share reports.
    pub recovery_wait_ticks: u64,
}

/// The accounting ledger.
#[derive(Debug, Default)]
pub struct Accounting {
    users: BTreeMap<String, UserUsage>,
}

impl Accounting {
    /// An empty ledger.
    pub fn new() -> Accounting {
        Accounting::default()
    }

    /// Record one completed job.
    pub fn record(&mut self, user: &str, core_ticks: u64, wait_ticks: u64) {
        let u = self.users.entry(user.to_string()).or_default();
        u.jobs_completed += 1;
        u.core_ticks += core_ticks;
        u.wait_ticks += wait_ticks;
    }

    /// Record one retry dispatch (a job going back into the queue after a
    /// node loss, with budget remaining).
    pub fn record_retry(&mut self, user: &str) {
        self.users
            .entry(user.to_string())
            .or_default()
            .retry_attempts += 1;
    }

    /// Record one node loss under a running job.
    pub fn record_node_loss(&mut self, user: &str) {
        self.users.entry(user.to_string()).or_default().node_losses += 1;
    }

    /// Record recovery wait: ticks between losing a node and the retry
    /// actually dispatching.
    pub fn record_recovery(&mut self, user: &str, wait_ticks: u64) {
        self.users
            .entry(user.to_string())
            .or_default()
            .recovery_wait_ticks += wait_ticks;
    }

    /// Usage for one user.
    pub fn usage(&self, user: &str) -> Option<&UserUsage> {
        self.users.get(user)
    }

    /// Overwrite one user's usage wholesale (snapshot restore during crash
    /// recovery; normal accounting goes through the `record_*` methods).
    pub fn set_usage(&mut self, user: &str, usage: UserUsage) {
        self.users.insert(user.to_string(), usage);
    }

    /// All users' usage, name-ordered.
    pub fn all(&self) -> impl Iterator<Item = (&str, &UserUsage)> {
        self.users.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total core-ticks across users.
    pub fn total_core_ticks(&self) -> u64 {
        self.users.values().map(|u| u.core_ticks).sum()
    }

    /// A user's share of total consumption, in `[0, 1]`.
    pub fn share(&self, user: &str) -> f64 {
        let total = self.total_core_ticks();
        if total == 0 {
            return 0.0;
        }
        self.usage(user)
            .map(|u| u.core_ticks as f64 / total as f64)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut a = Accounting::new();
        a.record("alice", 100, 5);
        a.record("alice", 50, 0);
        a.record("bob", 50, 10);
        let alice = a.usage("alice").unwrap();
        assert_eq!(alice.jobs_completed, 2);
        assert_eq!(alice.core_ticks, 150);
        assert_eq!(alice.wait_ticks, 5);
        assert_eq!(a.total_core_ticks(), 200);
        assert!((a.share("alice") - 0.75).abs() < 1e-12);
        assert_eq!(a.share("nobody"), 0.0);
        assert_eq!(a.all().count(), 2);
    }

    #[test]
    fn fault_events_tracked_separately_from_completions() {
        let mut a = Accounting::new();
        a.record_node_loss("alice");
        a.record_retry("alice");
        a.record_recovery("alice", 7);
        a.record_node_loss("alice");
        a.record("alice", 100, 3);
        let u = a.usage("alice").unwrap();
        assert_eq!(u.node_losses, 2);
        assert_eq!(u.retry_attempts, 1);
        assert_eq!(u.recovery_wait_ticks, 7);
        assert_eq!(u.wait_ticks, 3, "first-attempt wait untouched by recovery");
        assert_eq!(u.jobs_completed, 1);
    }

    #[test]
    fn empty_ledger_shares_zero() {
        let a = Accounting::new();
        assert_eq!(a.share("x"), 0.0);
        assert!(a.usage("x").is_none());
    }
}
