//! Per-user usage accounting: who consumed what, for fair-share reporting.

use std::collections::BTreeMap;

/// One user's accumulated usage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UserUsage {
    /// Completed jobs.
    pub jobs_completed: u64,
    /// Core-ticks consumed (cores x runtime).
    pub core_ticks: u64,
    /// Total queue-wait ticks across completed jobs.
    pub wait_ticks: u64,
}

/// The accounting ledger.
#[derive(Debug, Default)]
pub struct Accounting {
    users: BTreeMap<String, UserUsage>,
}

impl Accounting {
    /// An empty ledger.
    pub fn new() -> Accounting {
        Accounting::default()
    }

    /// Record one completed job.
    pub fn record(&mut self, user: &str, core_ticks: u64, wait_ticks: u64) {
        let u = self.users.entry(user.to_string()).or_default();
        u.jobs_completed += 1;
        u.core_ticks += core_ticks;
        u.wait_ticks += wait_ticks;
    }

    /// Usage for one user.
    pub fn usage(&self, user: &str) -> Option<&UserUsage> {
        self.users.get(user)
    }

    /// All users' usage, name-ordered.
    pub fn all(&self) -> impl Iterator<Item = (&str, &UserUsage)> {
        self.users.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total core-ticks across users.
    pub fn total_core_ticks(&self) -> u64 {
        self.users.values().map(|u| u.core_ticks).sum()
    }

    /// A user's share of total consumption, in `[0, 1]`.
    pub fn share(&self, user: &str) -> f64 {
        let total = self.total_core_ticks();
        if total == 0 {
            return 0.0;
        }
        self.usage(user).map(|u| u.core_ticks as f64 / total as f64).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut a = Accounting::new();
        a.record("alice", 100, 5);
        a.record("alice", 50, 0);
        a.record("bob", 50, 10);
        let alice = a.usage("alice").unwrap();
        assert_eq!(alice.jobs_completed, 2);
        assert_eq!(alice.core_ticks, 150);
        assert_eq!(alice.wait_ticks, 5);
        assert_eq!(a.total_core_ticks(), 200);
        assert!((a.share("alice") - 0.75).abs() < 1e-12);
        assert_eq!(a.share("nobody"), 0.0);
        assert_eq!(a.all().count(), 2);
    }

    #[test]
    fn empty_ledger_shares_zero() {
        let a = Accounting::new();
        assert_eq!(a.share("x"), 0.0);
        assert!(a.usage("x").is_none());
    }
}
