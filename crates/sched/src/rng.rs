//! A tiny deterministic RNG with serializable state.
//!
//! The scheduler's only randomness is retry-backoff jitter. For crash
//! recovery the RNG state must round-trip through a snapshot so a recovered
//! scheduler draws the same jitter sequence the original would have — a
//! `StdRng` cannot be serialized, so the WAL work replaced it with this
//! splitmix64 stream: one `u64` of state, trivially snapshot-able, and
//! statistically far better than backoff jitter needs.

/// Deterministic jitter source; the whole state is one `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitterRng {
    state: u64,
}

impl JitterRng {
    /// Seed a fresh stream.
    pub fn seed(seed: u64) -> JitterRng {
        JitterRng { state: seed }
    }

    /// Resume a stream from a snapshotted [`JitterRng::state`].
    pub fn from_state(state: u64) -> JitterRng {
        JitterRng { state }
    }

    /// The raw state, for snapshots.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next value in the splitmix64 sequence.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..=bound`. The modulo bias is at most
    /// `bound / 2^64` — irrelevant for backoff jitter, which is what this
    /// RNG exists for.
    pub fn gen_inclusive(&mut self, bound: u64) -> u64 {
        if bound == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (bound + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = JitterRng::seed(42);
        let mut b = JitterRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_sequence() {
        let mut a = JitterRng::seed(7);
        a.next_u64();
        a.next_u64();
        let mut b = JitterRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = JitterRng::seed(3);
        for bound in [0u64, 1, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(r.gen_inclusive(bound) <= bound);
            }
        }
        // Degenerate full-range bound must not overflow.
        let _ = r.gen_inclusive(u64::MAX);
    }

    #[test]
    fn draws_are_not_constant() {
        let mut r = JitterRng::seed(0);
        let draws: Vec<u64> = (0..16).map(|_| r.gen_inclusive(7)).collect();
        assert!(draws.iter().any(|&d| d != draws[0]), "{draws:?}");
    }
}
