//! # sched — the cluster job distributor
//!
//! The portal's backend "contacts a job distributor to allocate resources
//! on the cluster and finally dispatch the job onto those resources" (§II).
//! This crate is that distributor:
//!
//! * [`job`] — job specifications (sequential / parallel / interactive),
//!   lifecycle states, stdio stream buffers with interactive stdin;
//! * [`policy`] — queueing policies: FIFO, round-robin across segments,
//!   best-fit, and EASY backfill;
//! * [`queue`] — the scheduler proper: submit → allocate → dispatch →
//!   complete, driven by a logical clock, with node-failure recovery,
//!   per-job timeouts and admin drain/undrain;
//! * [`retry`] — bounded-attempt retry with deterministic exponential
//!   backoff for jobs that lose their node;
//! * [`accounting`] — per-user usage records and fair-share statistics;
//! * [`journal`] — command log records and snapshot codecs so the whole
//!   scheduler survives a crash via the portal's write-ahead log;
//! * [`rng`] — the serializable jitter RNG whose state snapshots cleanly.
//!
//! ```
//! use sched::{JobSpec, Scheduler, SchedPolicyKind};
//! use cluster::{Cluster, ClusterSpec};
//!
//! let cluster = Cluster::new(ClusterSpec::small(2, 2));
//! let mut sched = Scheduler::new(cluster, SchedPolicyKind::Fifo);
//! let id = sched.submit(JobSpec::sequential("alice", "a.out", 100)).unwrap();
//! sched.tick();                       // dispatches the job
//! assert!(sched.job(id).unwrap().state.is_running());
//! ```

pub mod accounting;
pub mod job;
pub mod journal;
pub mod policy;
pub mod queue;
pub mod retry;
pub mod rng;
pub mod workload;

pub use accounting::{Accounting, UserUsage};
pub use job::{JobId, JobKind, JobRecord, JobSpec, JobState, StdStreams};
pub use journal::SchedRecord;
pub use policy::SchedPolicyKind;
pub use queue::{SchedError, Scheduler};
pub use retry::RetryPolicy;
pub use rng::JitterRng;
pub use workload::{replay, Arrival, ReplayReport, WorkloadSpec};
