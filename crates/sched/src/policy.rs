//! Queueing policies: which pending job runs next, and where.
//!
//! Policies answer two questions given the queue and the cluster state:
//! pick the next job to try, and (optionally) constrain placement. Backfill
//! additionally lets short jobs jump the queue when they cannot delay the
//! head job's earliest possible start.

use crate::job::JobRecord;
use cluster::Cluster;
use serde::{Deserialize, Serialize};

/// The available policies (the `scheduler_policies` ablation bench sweeps
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicyKind {
    /// Strict first-in first-out: the head job blocks everything behind it.
    Fifo,
    /// FIFO order, but placement rotates across segments to spread load.
    RoundRobinSegments,
    /// Pick the queued job whose core request best fits the free cores
    /// (smallest non-negative slack), FIFO among ties.
    BestFit,
    /// FIFO head job reserved; shorter jobs may backfill into the gap if
    /// their estimate fits before the head's earliest start (EASY backfill).
    Backfill,
}

impl SchedPolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [SchedPolicyKind; 4] = [
        SchedPolicyKind::Fifo,
        SchedPolicyKind::RoundRobinSegments,
        SchedPolicyKind::BestFit,
        SchedPolicyKind::Backfill,
    ];

    /// Short name for report rows.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicyKind::Fifo => "fifo",
            SchedPolicyKind::RoundRobinSegments => "rr-segments",
            SchedPolicyKind::BestFit => "best-fit",
            SchedPolicyKind::Backfill => "backfill",
        }
    }

    /// Choose the indices (into `pending`, which is FIFO-ordered) of jobs to
    /// attempt to start now, in order. `free` is the currently free core
    /// count; `now` the clock; `running_release` the (tick, cores) release
    /// schedule of running jobs (for backfill's reservation math).
    pub fn pick(
        self,
        pending: &[&JobRecord],
        free: u32,
        now: u64,
        running_release: &[(u64, u32)],
    ) -> Vec<usize> {
        match self {
            SchedPolicyKind::Fifo | SchedPolicyKind::RoundRobinSegments => {
                // Start as many head-of-queue jobs as fit, in order; stop at
                // the first that does not fit (no skipping).
                let mut out = Vec::new();
                let mut budget = free;
                for (i, j) in pending.iter().enumerate() {
                    let need = j.spec.cores_needed();
                    if need <= budget {
                        out.push(i);
                        budget -= need;
                    } else {
                        break;
                    }
                }
                out
            }
            SchedPolicyKind::BestFit => {
                // Repeatedly pick the job minimizing (free - need) >= 0.
                let mut out = Vec::new();
                let mut budget = free;
                let mut remaining: Vec<usize> = (0..pending.len()).collect();
                loop {
                    let mut best: Option<(u32, usize)> = None; // (slack, idx-in-remaining)
                    for (ri, &pi) in remaining.iter().enumerate() {
                        let need = pending[pi].spec.cores_needed();
                        if need <= budget {
                            let slack = budget - need;
                            if best.map(|(s, _)| slack < s).unwrap_or(true) {
                                best = Some((slack, ri));
                            }
                        }
                    }
                    match best {
                        Some((_, ri)) => {
                            let pi = remaining.remove(ri);
                            budget -= pending[pi].spec.cores_needed();
                            out.push(pi);
                        }
                        None => break,
                    }
                }
                out
            }
            SchedPolicyKind::Backfill => {
                let mut out = Vec::new();
                let mut budget = free;
                // Start head jobs FIFO while they fit.
                let mut i = 0;
                while i < pending.len() {
                    let need = pending[i].spec.cores_needed();
                    if need <= budget {
                        out.push(i);
                        budget -= need;
                        i += 1;
                    } else {
                        break;
                    }
                }
                if i >= pending.len() {
                    return out;
                }
                // Head job `i` does not fit: compute its earliest start by
                // walking the release schedule.
                let head_need = pending[i].spec.cores_needed();
                let mut avail = budget;
                let mut shadow_time = u64::MAX;
                let mut releases: Vec<(u64, u32)> = running_release.to_vec();
                releases.sort_unstable();
                for &(t, c) in &releases {
                    avail += c;
                    if avail >= head_need {
                        shadow_time = t;
                        break;
                    }
                }
                // Backfill candidates behind the head: must fit in current
                // budget AND finish (by estimate) before the shadow time.
                for (k, j) in pending.iter().enumerate().skip(i + 1) {
                    let need = j.spec.cores_needed();
                    let fits_now = need <= budget;
                    let ends_by = now.saturating_add(j.spec.estimated_ticks);
                    if fits_now && ends_by <= shadow_time {
                        out.push(k);
                        budget -= need;
                    }
                }
                out
            }
        }
    }

    /// Placement hint: for [`SchedPolicyKind::RoundRobinSegments`], which
    /// segment to prefer for the `n`-th dispatch.
    pub fn preferred_segment(self, dispatch_count: u64, cluster: &Cluster) -> Option<usize> {
        match self {
            SchedPolicyKind::RoundRobinSegments => {
                let segs = cluster.spec().segment_count();
                if segs == 0 {
                    None
                } else {
                    Some((dispatch_count % segs as u64) as usize)
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobRecord, JobSpec, JobState, StdStreams};

    fn rec(id: u64, cores: u32, est: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            spec: JobSpec::parallel("u", "x", cores, est),
            state: JobState::Pending,
            submitted_at: 0,
            allocation: None,
            started_at: None,
            streams: StdStreams::default(),
            attempt: 0,
            last_failure: None,
            node_losses: 0,
            requeued_at: None,
            recovery_wait_ticks: 0,
        }
    }

    #[test]
    fn fifo_stops_at_first_blocker() {
        let jobs = [rec(1, 4, 10), rec(2, 16, 10), rec(3, 1, 10)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        let picked = SchedPolicyKind::Fifo.pick(&refs, 8, 0, &[]);
        // Job 1 fits (4), job 2 (16) blocks; job 3 must NOT jump the queue.
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn best_fit_minimizes_slack() {
        let jobs = [rec(1, 3, 10), rec(2, 8, 10), rec(3, 7, 10)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        let picked = SchedPolicyKind::BestFit.pick(&refs, 8, 0, &[]);
        // 8 free: job 2 (8 cores) has zero slack and goes first; nothing
        // else fits afterwards.
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn best_fit_packs_multiple() {
        let jobs = [rec(1, 5, 10), rec(2, 2, 10), rec(3, 3, 10)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        let picked = SchedPolicyKind::BestFit.pick(&refs, 8, 0, &[]);
        // 8 free: best fit is 5 (slack 3)? No: slacks are 3,6,5 -> picks 5-core
        // job (idx 0, slack 3); 3 left -> picks 3-core (idx 2, slack 0); 0 left.
        assert_eq!(picked, vec![0, 2]);
    }

    #[test]
    fn backfill_lets_short_jobs_through() {
        // Head needs 8 cores, frees at t=100 (one running job releasing 8).
        // A 1-core job estimated at 50 ticks fits before then; one at 200
        // does not.
        let jobs = [rec(1, 8, 100), rec(2, 1, 200), rec(3, 1, 50)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        let picked = SchedPolicyKind::Backfill.pick(&refs, 4, 0, &[(100, 8)]);
        assert_eq!(picked, vec![2]);
    }

    #[test]
    fn backfill_respects_shadow_time() {
        let jobs = [rec(1, 8, 100), rec(2, 1, 101)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        // Head can start at t=100; the 101-tick job would push it back.
        let picked = SchedPolicyKind::Backfill.pick(&refs, 4, 0, &[(100, 8)]);
        assert!(picked.is_empty());
    }

    #[test]
    fn backfill_behaves_like_fifo_when_everything_fits() {
        let jobs = [rec(1, 2, 10), rec(2, 2, 10)];
        let refs: Vec<&JobRecord> = jobs.iter().collect();
        assert_eq!(SchedPolicyKind::Backfill.pick(&refs, 8, 0, &[]), vec![0, 1]);
    }

    #[test]
    fn policy_names() {
        for p in SchedPolicyKind::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
