//! Job specifications, lifecycle and stdio streams.

use crate::retry::RetryPolicy;
use cluster::Allocation;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Unique job identifier (monotonic per scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What kind of execution the job needs — the portal's distinction between
/// "sequential or parallel in nature" (§II), plus interactive jobs whose
/// stdin the web UI can feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// One core on one node.
    Sequential,
    /// `cores` cores, possibly spanning nodes (an MPI-style job).
    Parallel {
        /// Total cores requested.
        cores: u32,
    },
    /// Sequential, but stays attached for stdin/stdout streaming.
    Interactive,
}

/// A job submission.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Submitting user.
    pub user: String,
    /// Executable name (artifact id from the toolchain).
    pub executable: String,
    /// Execution shape.
    pub kind: JobKind,
    /// Estimated runtime in scheduler ticks (used by backfill; a wrong
    /// estimate only hurts efficiency, never correctness).
    pub estimated_ticks: u64,
    /// Actual runtime in ticks (known to the simulation driver; in a real
    /// deployment this is when the process exits).
    pub actual_ticks: u64,
    /// Wall-clock budget in ticks, measured from submission across every
    /// attempt (queueing, backoff and reruns included). `None` = no limit.
    pub timeout_ticks: Option<u64>,
    /// Per-job retry policy; `None` falls back to the scheduler default.
    pub retry: Option<RetryPolicy>,
}

impl JobSpec {
    /// A 1-core sequential job.
    pub fn sequential(user: &str, executable: &str, ticks: u64) -> JobSpec {
        JobSpec {
            user: user.to_string(),
            executable: executable.to_string(),
            kind: JobKind::Sequential,
            estimated_ticks: ticks,
            actual_ticks: ticks,
            timeout_ticks: None,
            retry: None,
        }
    }

    /// A parallel job over `cores` cores.
    pub fn parallel(user: &str, executable: &str, cores: u32, ticks: u64) -> JobSpec {
        JobSpec {
            user: user.to_string(),
            executable: executable.to_string(),
            kind: JobKind::Parallel { cores },
            estimated_ticks: ticks,
            actual_ticks: ticks,
            timeout_ticks: None,
            retry: None,
        }
    }

    /// An interactive job (stays attached).
    pub fn interactive(user: &str, executable: &str) -> JobSpec {
        JobSpec {
            user: user.to_string(),
            executable: executable.to_string(),
            kind: JobKind::Interactive,
            estimated_ticks: u64::MAX,
            actual_ticks: u64::MAX,
            timeout_ticks: None,
            retry: None,
        }
    }

    /// With a (possibly wrong) runtime estimate, for backfill experiments.
    pub fn with_estimate(mut self, estimated: u64) -> JobSpec {
        self.estimated_ticks = estimated;
        self
    }

    /// With a wall-clock budget: the job times out `ticks` after submission
    /// unless it completes first (attempt reruns and backoff count).
    pub fn with_timeout(mut self, ticks: u64) -> JobSpec {
        self.timeout_ticks = Some(ticks.max(1));
        self
    }

    /// With a retry policy overriding the scheduler default.
    pub fn with_retry(mut self, policy: RetryPolicy) -> JobSpec {
        self.retry = Some(policy);
        self
    }

    /// Cores this job needs.
    pub fn cores_needed(&self) -> u32 {
        match self.kind {
            JobKind::Sequential | JobKind::Interactive => 1,
            JobKind::Parallel { cores } => cores.max(1),
        }
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Dispatched; `started_at` is the tick it began.
    Running {
        /// Dispatch tick.
        started_at: u64,
    },
    /// Finished normally at the given tick.
    Completed {
        /// Completion tick.
        at: u64,
    },
    /// Cancelled by the user or an admin.
    Cancelled {
        /// Cancellation tick.
        at: u64,
    },
    /// Failed (e.g. its node went down).
    Failed {
        /// Failure tick.
        at: u64,
        /// Reason string for the portal to display.
        reason: String,
    },
    /// Lost its node and is waiting out a retry backoff; re-enters the
    /// queue (as `Pending`) once `retry_at` is reached.
    Requeued {
        /// Which run this will be once redispatched (2 = first retry).
        attempt: u32,
        /// Tick at which the job becomes eligible to queue again.
        retry_at: u64,
    },
    /// Exceeded its wall-clock budget (`JobSpec::timeout_ticks`).
    TimedOut {
        /// Tick the budget ran out.
        at: u64,
    },
    /// Lost its node with no retry budget left.
    NodeLost {
        /// Tick of the final node loss.
        at: u64,
        /// Total attempts consumed before giving up.
        attempts: u32,
    },
}

impl JobState {
    /// Is the job currently running?
    pub fn is_running(&self) -> bool {
        matches!(self, JobState::Running { .. })
    }

    /// Is the job waiting out a retry backoff?
    pub fn is_requeued(&self) -> bool {
        matches!(self, JobState::Requeued { .. })
    }

    /// Has the job reached a terminal state?
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. }
                | JobState::Cancelled { .. }
                | JobState::Failed { .. }
                | JobState::TimedOut { .. }
                | JobState::NodeLost { .. }
        )
    }
}

/// Captured standard streams plus an interactive stdin queue — the portal
/// "allows the user to monitor the standard streams, and even provide
/// input, if so the target application requires it" (§II).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StdStreams {
    /// Captured stdout.
    pub stdout: String,
    /// Captured stderr.
    pub stderr: String,
    /// Lines queued for the application to consume.
    pub stdin: VecDeque<String>,
}

impl StdStreams {
    /// Queue one line of user input.
    pub fn push_stdin(&mut self, line: impl Into<String>) {
        self.stdin.push_back(line.into());
    }

    /// Application-side: take the next input line.
    pub fn pop_stdin(&mut self) -> Option<String> {
        self.stdin.pop_front()
    }
}

/// A job known to the scheduler: spec + state + placement + streams.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// The submission.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// Submission tick.
    pub submitted_at: u64,
    /// Resources held while running.
    pub allocation: Option<Allocation>,
    /// Tick at which the job first started (None while pending).
    pub started_at: Option<u64>,
    /// Stdio capture.
    pub streams: StdStreams,
    /// Dispatches so far (0 while never run; 1 after the first dispatch).
    pub attempt: u32,
    /// Cause of the most recent failure/requeue, for the portal to show.
    pub last_failure: Option<String>,
    /// How many times this job lost a node mid-run.
    pub node_losses: u32,
    /// Tick the job last lost its node (set while `Requeued`/re-`Pending`,
    /// cleared when the accumulated wait is folded in at re-dispatch).
    pub requeued_at: Option<u64>,
    /// Ticks spent waiting *after* a node loss (backoff + requeue time),
    /// as opposed to first-attempt queue wait.
    pub recovery_wait_ticks: u64,
}

impl JobRecord {
    /// Queue wait so far (or total, once started), given the current tick.
    /// Counts first-attempt wait only; post-failure waiting is tracked
    /// separately in [`JobRecord::recovery_wait_ticks`].
    pub fn wait_ticks(&self, now: u64) -> u64 {
        match (&self.state, self.started_at) {
            (_, Some(started)) => started.saturating_sub(self.submitted_at),
            (JobState::Pending, None) | (JobState::Requeued { .. }, None) => {
                now.saturating_sub(self.submitted_at)
            }
            // Terminal without ever starting (cancelled in queue): full
            // queue residence counts as wait.
            (JobState::Completed { at }, None)
            | (JobState::Cancelled { at }, None)
            | (JobState::Failed { at, .. }, None)
            | (JobState::TimedOut { at }, None)
            | (JobState::NodeLost { at, .. }, None) => at.saturating_sub(self.submitted_at),
            (JobState::Running { started_at }, None) => {
                started_at.saturating_sub(self.submitted_at)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cores_needed_by_kind() {
        assert_eq!(JobSpec::sequential("u", "x", 1).cores_needed(), 1);
        assert_eq!(JobSpec::parallel("u", "x", 16, 1).cores_needed(), 16);
        assert_eq!(JobSpec::parallel("u", "x", 0, 1).cores_needed(), 1);
        assert_eq!(JobSpec::interactive("u", "x").cores_needed(), 1);
    }

    #[test]
    fn state_predicates() {
        assert!(!JobState::Pending.is_terminal());
        assert!(JobState::Running { started_at: 0 }.is_running());
        assert!(JobState::Completed { at: 3 }.is_terminal());
        assert!(JobState::Failed {
            at: 3,
            reason: "node down".into()
        }
        .is_terminal());
        assert!(JobState::TimedOut { at: 9 }.is_terminal());
        assert!(JobState::NodeLost { at: 9, attempts: 3 }.is_terminal());
        let r = JobState::Requeued {
            attempt: 2,
            retry_at: 12,
        };
        assert!(r.is_requeued() && !r.is_terminal() && !r.is_running());
    }

    #[test]
    fn stdin_fifo() {
        let mut s = StdStreams::default();
        s.push_stdin("first");
        s.push_stdin("second");
        assert_eq!(s.pop_stdin().as_deref(), Some("first"));
        assert_eq!(s.pop_stdin().as_deref(), Some("second"));
        assert_eq!(s.pop_stdin(), None);
    }

    #[test]
    fn estimate_override() {
        let j = JobSpec::sequential("u", "x", 100).with_estimate(10);
        assert_eq!(j.estimated_ticks, 10);
        assert_eq!(j.actual_ticks, 100);
    }
}
