//! Workload generation: job-arrival processes for scheduler experiments.
//!
//! Built on [`simnet::Engine`]: arrivals are discrete events on the
//! simulated clock, so a whole arrival-dispatch-completion run is one
//! deterministic event-driven simulation. Interarrival times are
//! geometric (the discrete analogue of Poisson arrivals); widths and
//! runtimes come from configurable discrete distributions.

use crate::job::JobSpec;
use crate::policy::SchedPolicyKind;
use crate::queue::Scheduler;
use cluster::Cluster;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{Engine, SimDuration, SimTime};

/// Parameters of a synthetic arrival process.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Expected interarrival gap in ticks (geometric distribution).
    pub mean_interarrival: f64,
    /// Job width choices, sampled uniformly.
    pub core_choices: Vec<u32>,
    /// Runtime range in ticks (inclusive).
    pub runtime_range: (u64, u64),
    /// Multiplier range applied to the true runtime to form the user's
    /// (possibly wrong) estimate.
    pub estimate_factor: (f64, f64),
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Distinct submitting users (round-robin).
    pub users: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            mean_interarrival: 3.0,
            core_choices: vec![1, 1, 2, 4, 8, 16],
            runtime_range: (2, 40),
            estimate_factor: (0.8, 1.6),
            jobs: 64,
            users: 5,
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival tick.
    pub at_tick: u64,
    /// The job.
    pub spec: JobSpec,
}

impl WorkloadSpec {
    /// Generate the arrival list deterministically from `seed`, using the
    /// discrete-event engine to order arrivals on the simulated clock.
    pub fn generate(&self, seed: u64) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut engine: Engine<JobSpec> = Engine::new();
        let p = (1.0 / self.mean_interarrival.max(1.0)).clamp(0.001, 1.0);
        let mut t = 0u64;
        for i in 0..self.jobs {
            // Geometric interarrival: count Bernoulli(p) failures.
            let mut gap = 1u64;
            while !rng.gen_bool(p) && gap < 10_000 {
                gap += 1;
            }
            t += gap;
            let cores = self.core_choices[rng.gen_range(0..self.core_choices.len().max(1))];
            let ticks = rng
                .gen_range(self.runtime_range.0..=self.runtime_range.1.max(self.runtime_range.0));
            let factor = rng.gen_range(
                self.estimate_factor.0..self.estimate_factor.1.max(self.estimate_factor.0 + 1e-9),
            );
            let est = ((ticks as f64) * factor).round().max(1.0) as u64;
            let user = format!("u{}", i % self.users.max(1));
            let spec =
                JobSpec::parallel(&user, &format!("job-{i}"), cores, ticks).with_estimate(est);
            engine
                .schedule_at(SimTime(t), spec)
                .expect("arrival times are monotone");
            let _ = SimDuration::ZERO;
        }
        let mut arrivals = Vec::with_capacity(self.jobs);
        while let Some((at, spec)) = engine.next_event() {
            arrivals.push(Arrival {
                at_tick: at.nanos(),
                spec,
            });
        }
        arrivals
    }
}

/// Result of replaying a workload against a scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Tick at which the last job completed.
    pub makespan: u64,
    /// Mean queue wait across jobs.
    pub mean_wait: f64,
    /// Peak cluster utilization observed.
    pub peak_utilization: f64,
    /// Jobs completed (== submitted, unless the run was truncated).
    pub completed: usize,
}

/// Replay `arrivals` against a fresh scheduler with `policy` over `cluster`,
/// submitting each job at its arrival tick and ticking until drained.
pub fn replay(
    cluster: Cluster,
    policy: SchedPolicyKind,
    arrivals: &[Arrival],
    max_ticks: u64,
) -> ReplayReport {
    let mut sched = Scheduler::new(cluster, policy);
    let mut next = 0usize;
    let mut peak_util: f64 = 0.0;
    let mut makespan = 0u64;
    for _ in 0..max_ticks {
        let now = sched.now();
        while next < arrivals.len() && arrivals[next].at_tick <= now + 1 {
            sched
                .submit(arrivals[next].spec.clone())
                .expect("fits cluster");
            next += 1;
        }
        sched.tick();
        peak_util = peak_util.max(sched.cluster().utilization());
        let all_in = next >= arrivals.len();
        let all_done = sched.jobs().all(|j| j.state.is_terminal());
        if all_in && all_done {
            makespan = sched.now();
            break;
        }
    }
    let completed = sched.jobs().filter(|j| j.state.is_terminal()).count();
    ReplayReport {
        makespan,
        mean_wait: sched.mean_wait(),
        peak_utilization: peak_util,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let spec = WorkloadSpec::default();
        let a = spec.generate(42);
        let b = spec.generate(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0].at_tick <= w[1].at_tick));
        let c = spec.generate(43);
        assert_ne!(a, c);
    }

    #[test]
    fn interarrival_mean_tracks_spec() {
        let spec = WorkloadSpec {
            mean_interarrival: 5.0,
            jobs: 2000,
            ..WorkloadSpec::default()
        };
        let arrivals = spec.generate(7);
        let span = arrivals.last().unwrap().at_tick - arrivals[0].at_tick;
        let mean = span as f64 / (arrivals.len() - 1) as f64;
        assert!((mean - 5.0).abs() < 0.6, "mean interarrival {mean}");
    }

    #[test]
    fn replay_drains_and_reports() {
        let spec = WorkloadSpec {
            jobs: 30,
            ..WorkloadSpec::default()
        };
        let arrivals = spec.generate(3);
        let report = replay(
            Cluster::new(ClusterSpec::small(2, 4)),
            SchedPolicyKind::Backfill,
            &arrivals,
            100_000,
        );
        assert_eq!(report.completed, 30);
        assert!(report.makespan > 0);
        assert!(report.peak_utilization > 0.0 && report.peak_utilization <= 1.0);
    }

    #[test]
    fn backfill_no_worse_than_fifo_on_bursty_load() {
        let spec = WorkloadSpec {
            mean_interarrival: 1.0,
            jobs: 60,
            ..WorkloadSpec::default()
        };
        let arrivals = spec.generate(11);
        let fifo = replay(
            Cluster::new(ClusterSpec::small(2, 4)),
            SchedPolicyKind::Fifo,
            &arrivals,
            100_000,
        );
        let bf = replay(
            Cluster::new(ClusterSpec::small(2, 4)),
            SchedPolicyKind::Backfill,
            &arrivals,
            100_000,
        );
        assert!(
            bf.mean_wait <= fifo.mean_wait + 1e-9,
            "backfill {} vs fifo {}",
            bf.mean_wait,
            fifo.mean_wait
        );
        assert!(
            bf.makespan <= fifo.makespan,
            "backfill {} vs fifo {}",
            bf.makespan,
            fifo.makespan
        );
    }

    #[test]
    fn empty_workload_is_fine() {
        let spec = WorkloadSpec {
            jobs: 0,
            ..WorkloadSpec::default()
        };
        let arrivals = spec.generate(1);
        assert!(arrivals.is_empty());
        let report = replay(
            Cluster::new(ClusterSpec::small(1, 1)),
            SchedPolicyKind::Fifo,
            &arrivals,
            10,
        );
        assert_eq!(report.completed, 0);
    }
}
