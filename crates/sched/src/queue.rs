//! The scheduler: submit → queue → dispatch → complete, on a logical clock.
//!
//! The driver calls [`Scheduler::tick`] once per time unit; each tick
//! applies any scripted fault events, completes due jobs, enforces
//! wall-clock budgets, recovers jobs off dead nodes (requeueing them with
//! backoff per their [`RetryPolicy`]), then asks the policy which pending
//! jobs to start and allocates cores for them from the [`Cluster`].
//!
//! # Fault tolerance
//!
//! A node transitioning to [`NodeHealth::Down`] kills every run touching
//! it. The scheduler releases the allocation, records the loss, and either
//! requeues the job (state [`JobState::Requeued`], eligible again after a
//! deterministic exponential backoff drawn from the seeded jitter RNG) or —
//! once the attempt budget is spent — terminates it as
//! [`JobState::NodeLost`]. [`NodeHealth::Draining`] nodes refuse new
//! placements but let running jobs finish; admins flip nodes with
//! [`Scheduler::drain_node`] / [`Scheduler::undrain_node`]. A per-job
//! wall-clock budget ([`crate::JobSpec::with_timeout`]) bounds the total
//! time from submission across every attempt.

use crate::accounting::{Accounting, UserUsage};
use crate::job::{JobId, JobKind, JobRecord, JobSpec, JobState, StdStreams};
use crate::journal::{
    dec_alloc, dec_health, dec_node, dec_spec, dec_state, dec_streams, enc_alloc, enc_health,
    enc_node, enc_spec, enc_state, enc_streams, SchedRecord,
};
use crate::policy::SchedPolicyKind;
use crate::retry::RetryPolicy;
use crate::rng::JitterRng;
use cluster::faults::{FaultEvent, FaultPlan};
use cluster::{Cluster, ClusterError, NodeHealth, SlaveId};
use obs::{Obs, TraceContext};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use wal::{Dec, Enc, Journal, Recovered};

/// Scheduler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Unknown job id.
    NoSuchJob(JobId),
    /// Job is in a state that does not allow the operation.
    BadState {
        /// The job.
        job: JobId,
        /// What was attempted.
        op: &'static str,
    },
    /// The job can never run on this cluster (even empty).
    Impossible {
        /// Cores requested.
        requested: u32,
        /// Maximum schedulable cores.
        capacity: u32,
    },
    /// Underlying cluster error.
    Cluster(ClusterError),
    /// The durability log failed (the in-memory mutation already committed;
    /// callers decide whether to surface or degrade to non-durable mode).
    Wal(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoSuchJob(id) => write!(f, "no such job {id}"),
            SchedError::BadState { job, op } => write!(f, "{job}: cannot {op} in current state"),
            SchedError::Impossible {
                requested,
                capacity,
            } => {
                write!(f, "job needs {requested} cores, cluster has {capacity}")
            }
            SchedError::Cluster(e) => write!(f, "cluster error: {e}"),
            SchedError::Wal(msg) => write!(f, "durability log: {msg}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for SchedError {
    fn from(e: ClusterError) -> Self {
        SchedError::Cluster(e)
    }
}

/// Cached `ccp_sched_*` metric handles, rebuilt whenever an [`Obs`] is
/// attached. The per-user [`Accounting`] ledger stays authoritative for
/// quota views; these are the aggregate mirror the exposition reads.
#[derive(Debug, Clone)]
struct SchedMetrics {
    jobs_submitted: obs::Counter,
    submit_rejected: obs::Counter,
    jobs_dispatched: obs::Counter,
    jobs_completed: obs::Counter,
    jobs_cancelled: obs::Counter,
    jobs_timed_out: obs::Counter,
    jobs_node_lost: obs::Counter,
    retries: obs::Counter,
    node_losses: obs::Counter,
    core_ticks: obs::Counter,
    recovery_wait_ticks: obs::Counter,
    queue_depth: obs::Gauge,
    jobs_running: obs::Gauge,
    wait_ticks: obs::Histogram,
    run_ticks: obs::Histogram,
    backoff_ticks: obs::Histogram,
}

impl SchedMetrics {
    fn new(o: &Obs) -> SchedMetrics {
        let m = &o.metrics;
        m.describe(
            "ccp_sched_jobs_submitted_total",
            "jobs accepted into the queue",
        );
        m.describe(
            "ccp_sched_submit_rejected_total",
            "submissions rejected as impossible",
        );
        m.describe(
            "ccp_sched_jobs_dispatched_total",
            "job dispatches (attempts started)",
        );
        m.describe(
            "ccp_sched_jobs_completed_total",
            "jobs that finished successfully",
        );
        m.describe(
            "ccp_sched_jobs_cancelled_total",
            "jobs cancelled by users or admins",
        );
        m.describe(
            "ccp_sched_jobs_timed_out_total",
            "jobs killed by their wall-clock budget",
        );
        m.describe(
            "ccp_sched_jobs_node_lost_total",
            "jobs terminated after exhausting retries",
        );
        m.describe("ccp_sched_retries_total", "requeues after a node loss");
        m.describe(
            "ccp_sched_node_losses_total",
            "running jobs interrupted by a node going down",
        );
        m.describe(
            "ccp_sched_core_ticks_total",
            "core-ticks consumed by completed jobs",
        );
        m.describe(
            "ccp_sched_recovery_wait_ticks_total",
            "ticks jobs spent parked after node losses",
        );
        m.describe("ccp_sched_queue_depth", "jobs currently pending");
        m.describe("ccp_sched_jobs_running", "jobs currently running");
        m.describe(
            "ccp_sched_job_wait_ticks",
            "submission-to-first-dispatch wait per completed job",
        );
        m.describe(
            "ccp_sched_job_run_ticks",
            "final-attempt runtime per completed job",
        );
        m.describe("ccp_sched_retry_backoff_ticks", "backoff drawn per retry");
        SchedMetrics {
            jobs_submitted: m.counter("ccp_sched_jobs_submitted_total", &[]),
            submit_rejected: m.counter("ccp_sched_submit_rejected_total", &[]),
            jobs_dispatched: m.counter("ccp_sched_jobs_dispatched_total", &[]),
            jobs_completed: m.counter("ccp_sched_jobs_completed_total", &[]),
            jobs_cancelled: m.counter("ccp_sched_jobs_cancelled_total", &[]),
            jobs_timed_out: m.counter("ccp_sched_jobs_timed_out_total", &[]),
            jobs_node_lost: m.counter("ccp_sched_jobs_node_lost_total", &[]),
            retries: m.counter("ccp_sched_retries_total", &[]),
            node_losses: m.counter("ccp_sched_node_losses_total", &[]),
            core_ticks: m.counter("ccp_sched_core_ticks_total", &[]),
            recovery_wait_ticks: m.counter("ccp_sched_recovery_wait_ticks_total", &[]),
            queue_depth: m.gauge("ccp_sched_queue_depth", &[]),
            jobs_running: m.gauge("ccp_sched_jobs_running", &[]),
            wait_ticks: m.histogram("ccp_sched_job_wait_ticks", &[], obs::TICK_BOUNDS),
            run_ticks: m.histogram("ccp_sched_job_run_ticks", &[], obs::TICK_BOUNDS),
            backoff_ticks: m.histogram("ccp_sched_retry_backoff_ticks", &[], obs::TICK_BOUNDS),
        }
    }
}

const SCHED_SNAP_VERSION: u32 = 1;

/// The job distributor.
#[derive(Debug)]
pub struct Scheduler {
    cluster: Cluster,
    policy: SchedPolicyKind,
    jobs: BTreeMap<JobId, JobRecord>,
    /// FIFO of pending job ids.
    queue: Vec<JobId>,
    next_id: u64,
    now: u64,
    dispatch_count: u64,
    accounting: Accounting,
    /// Default retry policy for jobs that don't carry their own.
    default_retry: RetryPolicy,
    /// Seeded RNG for backoff jitter — the only randomness in the scheduler,
    /// so whole recovery schedules replay identically per seed (and, because
    /// the state snapshots, identically across a crash/recovery boundary).
    rng: JitterRng,
    /// Scripted health transitions, sorted by tick (applied at tick start).
    faults: Vec<FaultEvent>,
    faults_applied: usize,
    /// Telemetry domain; every lifecycle transition lands here as a metric
    /// movement plus a tracer point-event keyed by `job=<id>`.
    obs: Arc<Obs>,
    metrics: SchedMetrics,
    /// Causal trace contexts per job, for jobs submitted through
    /// [`Scheduler::submit_traced`]: lifecycle events become children of
    /// the propagated span so the whole life renders as one tree. Telemetry
    /// only — never serialized, so recovered jobs fall back to plain
    /// (unparented) events.
    traces: BTreeMap<JobId, TraceContext>,
    /// Context handed to the next [`Scheduler::submit_inner`] call (the job
    /// id does not exist until then).
    pending_trace: Option<TraceContext>,
    /// Durability log; `None` runs fully in memory (the default).
    journal: Option<Journal>,
    /// Most recent WAL failure. Logging degrades rather than panicking or
    /// failing the in-memory operation; the portal surfaces this in health.
    wal_error: Option<String>,
}

impl Scheduler {
    /// A scheduler over `cluster` using `policy`. Jobs default to the
    /// [`RetryPolicy::default`] unless their spec carries one.
    pub fn new(cluster: Cluster, policy: SchedPolicyKind) -> Scheduler {
        let obs = Arc::new(Obs::new());
        let metrics = SchedMetrics::new(&obs);
        Scheduler {
            cluster,
            policy,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            next_id: 1,
            now: 0,
            dispatch_count: 0,
            accounting: Accounting::new(),
            default_retry: RetryPolicy::default(),
            rng: JitterRng::seed(0),
            faults: Vec::new(),
            faults_applied: 0,
            obs,
            metrics,
            traces: BTreeMap::new(),
            pending_trace: None,
            journal: None,
            wal_error: None,
        }
    }

    /// Attach a shared telemetry domain (builder style), replacing the
    /// private one created by [`Scheduler::new`]. Also wires the backing
    /// cluster onto the same registry.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Scheduler {
        self.metrics = SchedMetrics::new(&obs);
        self.cluster.set_obs(&obs);
        self.obs = obs;
        self
    }

    /// The telemetry domain this scheduler records into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Override the default retry policy (builder style).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Scheduler {
        self.default_retry = policy;
        self
    }

    /// Reseed the backoff-jitter RNG (builder style).
    pub fn with_retry_seed(mut self, seed: u64) -> Scheduler {
        self.rng = JitterRng::seed(seed);
        self
    }

    /// Attach a fault script; due events apply at the start of each tick,
    /// before completion/recovery/dispatch. Replaces any previous script.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Scheduler {
        let mut events: Vec<FaultEvent> = plan.events().to_vec();
        events.sort_by_key(|e| e.at_tick);
        self.faults = events;
        self.faults_applied = 0;
        self
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The policy in force.
    pub fn policy(&self) -> SchedPolicyKind {
        self.policy
    }

    /// The default retry policy.
    pub fn default_retry(&self) -> RetryPolicy {
        self.default_retry
    }

    /// The backing cluster (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (fault injection in tests).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Usage accounting.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Admin: stop placing new work on `node`; running jobs finish normally.
    /// Down nodes stay down (undrain is the only way back up).
    pub fn drain_node(&mut self, node: SlaveId) -> Result<(), SchedError> {
        self.drain_node_inner(node)?;
        self.log(|| SchedRecord::DrainNode { node });
        Ok(())
    }

    fn drain_node_inner(&mut self, node: SlaveId) -> Result<(), SchedError> {
        if self.cluster.health(node)? == NodeHealth::Up {
            self.cluster.set_health(node, NodeHealth::Draining)?;
        }
        Ok(())
    }

    /// Admin: return a drained (or recovered) node to service.
    pub fn undrain_node(&mut self, node: SlaveId) -> Result<(), SchedError> {
        self.undrain_node_inner(node)?;
        self.log(|| SchedRecord::UndrainNode { node });
        Ok(())
    }

    fn undrain_node_inner(&mut self, node: SlaveId) -> Result<(), SchedError> {
        self.cluster.set_health(node, NodeHealth::Up)?;
        Ok(())
    }

    /// Submit a job; it enters the pending queue. Admission checks against
    /// the *spec* capacity, not current health: during an outage the portal
    /// keeps accepting work and runs it when nodes return (degraded mode).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SchedError> {
        self.submit_traced(spec, None)
    }

    /// [`Scheduler::submit`] carrying a propagated [`TraceContext`]: every
    /// lifecycle event of the job — queueing, allocation, dispatch, WAL
    /// appends, completion — is recorded as a child of `ctx.parent`, so the
    /// job's whole life hangs off the span minted where the work entered
    /// the system.
    pub fn submit_traced(
        &mut self,
        spec: JobSpec,
        ctx: Option<TraceContext>,
    ) -> Result<JobId, SchedError> {
        let payload = self
            .journal
            .is_some()
            .then(|| SchedRecord::Submit { spec: spec.clone() }.encode());
        self.pending_trace = ctx;
        let id = self.submit_inner(spec);
        self.pending_trace = None;
        let id = id?;
        if let Some(p) = payload {
            if let Some(lsn) = self.log_payload(&p) {
                self.wal_trace_event(id, lsn, "submit");
            }
        }
        Ok(id)
    }

    /// The trace context a job was submitted with, if any.
    pub fn job_trace(&self, id: JobId) -> Option<TraceContext> {
        self.traces.get(&id).copied()
    }

    /// Record a job lifecycle point-event: a child of the job's propagated
    /// trace context when one exists, a plain event otherwise. Associated
    /// fn taking field refs so call sites can hold disjoint borrows.
    fn trace_job_event(
        obs: &Obs,
        traces: &BTreeMap<JobId, TraceContext>,
        id: JobId,
        name: &str,
        at: u64,
        attrs: &[(&str, &str)],
    ) {
        match traces.get(&id) {
            Some(ctx) => obs.tracer.event_child(ctx.parent, name, at, attrs),
            None => obs.tracer.event(name, at, attrs),
        };
    }

    /// Record a `wal.append` child event for a traced job's logged command.
    fn wal_trace_event(&self, id: JobId, lsn: u64, op: &str) {
        if let Some(ctx) = self.traces.get(&id) {
            self.obs.tracer.event_child(
                ctx.parent,
                "wal.append",
                self.now,
                &[
                    ("job", &id.0.to_string()),
                    ("lsn", &lsn.to_string()),
                    ("op", op),
                ],
            );
        }
    }

    fn submit_inner(&mut self, spec: JobSpec) -> Result<JobId, SchedError> {
        let capacity = self.cluster.spec().total_cores();
        if spec.cores_needed() > capacity {
            self.metrics.submit_rejected.inc();
            return Err(SchedError::Impossible {
                requested: spec.cores_needed(),
                capacity,
            });
        }
        let id = JobId(self.next_id);
        if let Some(ctx) = self.pending_trace.take() {
            self.traces.insert(id, ctx);
        }
        self.metrics.jobs_submitted.inc();
        Self::trace_job_event(
            &self.obs,
            &self.traces,
            id,
            "job.submitted",
            self.now,
            &[
                ("job", &id.0.to_string()),
                ("user", &spec.user),
                ("cores", &spec.cores_needed().to_string()),
            ],
        );
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                id,
                spec,
                state: JobState::Pending,
                submitted_at: self.now,
                allocation: None,
                started_at: None,
                streams: StdStreams::default(),
                attempt: 0,
                last_failure: None,
                node_losses: 0,
                requeued_at: None,
                recovery_wait_ticks: 0,
            },
        );
        self.queue.push(id);
        Self::trace_job_event(
            &self.obs,
            &self.traces,
            id,
            "job.queued",
            self.now,
            &[("job", &id.0.to_string())],
        );
        self.publish_gauges();
        Ok(id)
    }

    /// Look a job up.
    pub fn job(&self, id: JobId) -> Result<&JobRecord, SchedError> {
        self.jobs.get(&id).ok_or(SchedError::NoSuchJob(id))
    }

    /// Mutable job access (the portal appends stdin through this).
    pub fn job_mut(&mut self, id: JobId) -> Result<&mut JobRecord, SchedError> {
        self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))
    }

    /// All jobs, id-ordered.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Ids of currently pending jobs, queue-ordered.
    pub fn pending(&self) -> &[JobId] {
        &self.queue
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.jobs.values().filter(|j| j.state.is_running()).count()
    }

    /// Queue a line of interactive stdin for a job.
    pub fn push_stdin(&mut self, id: JobId, line: &str) -> Result<(), SchedError> {
        self.push_stdin_inner(id, line)?;
        if let Some(lsn) = self.log(|| SchedRecord::PushStdin {
            id,
            line: line.to_string(),
        }) {
            self.wal_trace_event(id, lsn, "stdin");
        }
        Ok(())
    }

    fn push_stdin_inner(&mut self, id: JobId, line: &str) -> Result<(), SchedError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))?;
        job.streams.push_stdin(line);
        Ok(())
    }

    /// Record execution-engine results for a job: append captured stream
    /// text and/or revise the actual runtime. The engine's output is not
    /// re-derivable from scheduler state, so it must flow through here (and
    /// thus the WAL) rather than being poked into the record directly.
    pub fn set_outcome(
        &mut self,
        id: JobId,
        stdout: Option<&str>,
        stderr: Option<&str>,
        actual_ticks: Option<u64>,
    ) -> Result<(), SchedError> {
        self.set_outcome_inner(id, stdout, stderr, actual_ticks)?;
        if let Some(lsn) = self.log(|| SchedRecord::SetOutcome {
            id,
            stdout: stdout.map(str::to_string),
            stderr: stderr.map(str::to_string),
            actual_ticks,
        }) {
            self.wal_trace_event(id, lsn, "outcome");
        }
        Ok(())
    }

    fn set_outcome_inner(
        &mut self,
        id: JobId,
        stdout: Option<&str>,
        stderr: Option<&str>,
        actual_ticks: Option<u64>,
    ) -> Result<(), SchedError> {
        let job = self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))?;
        if let Some(s) = stdout {
            job.streams.stdout.push_str(s);
        }
        if let Some(s) = stderr {
            job.streams.stderr.push_str(s);
        }
        if let Some(t) = actual_ticks {
            job.spec.actual_ticks = t;
        }
        Ok(())
    }

    /// Cancel a pending, running, or backoff-waiting job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), SchedError> {
        self.cancel_inner(id)?;
        if let Some(lsn) = self.log(|| SchedRecord::Cancel { id }) {
            self.wal_trace_event(id, lsn, "cancel");
        }
        Ok(())
    }

    fn cancel_inner(&mut self, id: JobId) -> Result<(), SchedError> {
        let now = self.now;
        let job = self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))?;
        let cancelled = match job.state {
            JobState::Pending | JobState::Requeued { .. } => {
                job.state = JobState::Cancelled { at: now };
                job.requeued_at = None;
                self.queue.retain(|&q| q != id);
                Ok(())
            }
            JobState::Running { .. } => {
                job.state = JobState::Cancelled { at: now };
                if let Some(alloc) = job.allocation.take() {
                    self.cluster.release(&alloc);
                }
                Ok(())
            }
            _ => Err(SchedError::BadState {
                job: id,
                op: "cancel",
            }),
        };
        if cancelled.is_ok() {
            self.metrics.jobs_cancelled.inc();
            Self::trace_job_event(
                &self.obs,
                &self.traces,
                id,
                "job.cancelled",
                now,
                &[("job", &id.0.to_string())],
            );
            self.publish_gauges();
        }
        cancelled
    }

    /// Advance time by one tick: apply due fault events, complete due jobs,
    /// enforce timeouts, recover jobs off dead nodes, requeue jobs whose
    /// backoff expired, then dispatch per policy. Returns ids dispatched.
    pub fn tick(&mut self) -> Vec<JobId> {
        let started = self.tick_inner();
        self.log(|| SchedRecord::Tick);
        started
    }

    fn tick_inner(&mut self) -> Vec<JobId> {
        self.now += 1;
        self.apply_due_faults();
        self.complete_due();
        self.enforce_timeouts();
        self.recover_lost_nodes();
        self.requeue_due_retries();
        let started = self.dispatch();
        self.publish_gauges();
        started
    }

    /// Refresh the queue-depth/running gauges (and the cluster's) from
    /// authoritative state. Called at every mutation point; cheap and
    /// idempotent, so exposition readers may also call it defensively.
    pub fn publish_gauges(&self) {
        self.metrics.queue_depth.set(self.queue.len() as i64);
        self.metrics
            .jobs_running
            .set(self.jobs.values().filter(|j| j.state.is_running()).count() as i64);
        self.cluster.publish_gauges();
    }

    /// Run `n` ticks, returning total dispatches.
    pub fn run_ticks(&mut self, n: u64) -> usize {
        let mut total = 0;
        for _ in 0..n {
            total += self.tick().len();
        }
        total
    }

    /// Drive until every submitted job is terminal (or `max_ticks` elapse).
    /// Returns the tick at which the system drained, if it did. Jobs parked
    /// in retry backoff are not terminal, so a recovery schedule that
    /// outlives the horizon yields `None`.
    pub fn drain(&mut self, max_ticks: u64) -> Option<u64> {
        for _ in 0..max_ticks {
            self.tick();
            let all_done = self.jobs.values().all(|j| j.state.is_terminal());
            if all_done {
                return Some(self.now);
            }
        }
        None
    }

    fn apply_due_faults(&mut self) {
        while self.faults_applied < self.faults.len()
            && self.faults[self.faults_applied].at_tick <= self.now
        {
            let ev = self.faults[self.faults_applied];
            // A scripted node may not exist on a smaller cluster; skip it.
            let _ = self.cluster.set_health(ev.node, ev.health);
            self.faults_applied += 1;
        }
    }

    fn complete_due(&mut self) {
        let now = self.now;
        let due: Vec<JobId> = self
            .jobs
            .values()
            .filter_map(|j| match j.state {
                JobState::Running { started_at }
                    if j.spec.actual_ticks != u64::MAX
                        && now >= started_at + j.spec.actual_ticks =>
                {
                    Some(j.id)
                }
                _ => None,
            })
            .collect();
        for id in due {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            let JobState::Running { started_at } = job.state else {
                continue;
            };
            job.state = JobState::Completed { at: now };
            let alloc = job.allocation.take();
            let cores = alloc.as_ref().map(|a| a.total_cores()).unwrap_or(0);
            // First-attempt queue wait only; post-failure waiting was folded
            // into recovery_wait_ticks at each redispatch.
            let wait = job.wait_ticks(now);
            self.accounting
                .record(&job.spec.user, cores as u64 * (now - started_at), wait);
            self.metrics.jobs_completed.inc();
            self.metrics
                .core_ticks
                .add(cores as u64 * (now - started_at));
            self.metrics.wait_ticks.record(wait);
            self.metrics.run_ticks.record(now - started_at);
            Self::trace_job_event(
                &self.obs,
                &self.traces,
                id,
                "job.completed",
                now,
                &[
                    ("job", &id.0.to_string()),
                    ("run_ticks", &(now - started_at).to_string()),
                ],
            );
            if let Some(a) = alloc {
                self.cluster.release(&a);
            }
        }
    }

    fn enforce_timeouts(&mut self) {
        let now = self.now;
        let expired: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| !j.state.is_terminal())
            .filter(|j| {
                j.spec
                    .timeout_ticks
                    .map(|t| now >= j.submitted_at + t)
                    .unwrap_or(false)
            })
            .map(|j| j.id)
            .collect();
        for id in expired {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            let budget = job.spec.timeout_ticks.unwrap_or(0);
            job.state = JobState::TimedOut { at: now };
            job.last_failure = Some(format!("exceeded wall-clock budget of {budget} ticks"));
            job.requeued_at = None;
            if let Some(a) = job.allocation.take() {
                self.cluster.release(&a);
            }
            self.queue.retain(|&q| q != id);
            self.metrics.jobs_timed_out.inc();
            Self::trace_job_event(
                &self.obs,
                &self.traces,
                id,
                "job.timed_out",
                now,
                &[
                    ("job", &id.0.to_string()),
                    ("budget_ticks", &budget.to_string()),
                ],
            );
        }
    }

    fn recover_lost_nodes(&mut self) {
        let now = self.now;
        let dead: Vec<SlaveId> = self
            .cluster
            .slave_ids()
            .into_iter()
            .filter(|&id| self.cluster.health(id) == Ok(NodeHealth::Down))
            .collect();
        if dead.is_empty() {
            return;
        }
        let doomed: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| {
                j.state.is_running()
                    && j.allocation
                        .as_ref()
                        .map(|a| a.cores.keys().any(|n| dead.contains(n)))
                        .unwrap_or(false)
            })
            .map(|j| j.id)
            .collect();
        for id in doomed {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            if let Some(a) = job.allocation.take() {
                // Surviving nodes get their cores back; the dead node's
                // busy count is reconciled too, so it returns clean.
                self.cluster.release(&a);
            }
            job.node_losses += 1;
            job.last_failure = Some("node went down".to_string());
            self.accounting.record_node_loss(&job.spec.user);
            self.metrics.node_losses.inc();
            let policy = job.spec.retry.unwrap_or(self.default_retry);
            let attempts = job.attempt;
            if policy.can_retry(attempts) {
                let backoff = policy.backoff_ticks(attempts, &mut self.rng);
                job.state = JobState::Requeued {
                    attempt: attempts + 1,
                    retry_at: now + backoff,
                };
                job.requeued_at = Some(now);
                self.accounting.record_retry(&job.spec.user);
                self.metrics.retries.inc();
                self.metrics.backoff_ticks.record(backoff);
                Self::trace_job_event(
                    &self.obs,
                    &self.traces,
                    id,
                    "job.requeued",
                    now,
                    &[
                        ("job", &id.0.to_string()),
                        ("attempt", &(attempts + 1).to_string()),
                        ("backoff_ticks", &backoff.to_string()),
                    ],
                );
            } else {
                job.state = JobState::NodeLost { at: now, attempts };
                self.metrics.jobs_node_lost.inc();
                Self::trace_job_event(
                    &self.obs,
                    &self.traces,
                    id,
                    "job.node_lost",
                    now,
                    &[
                        ("job", &id.0.to_string()),
                        ("attempts", &attempts.to_string()),
                    ],
                );
            }
        }
    }

    fn requeue_due_retries(&mut self) {
        let now = self.now;
        let due: Vec<JobId> = self
            .jobs
            .values()
            .filter_map(|j| match j.state {
                JobState::Requeued { retry_at, .. } if retry_at <= now => Some(j.id),
                _ => None,
            })
            .collect();
        for id in due {
            let Some(job) = self.jobs.get_mut(&id) else {
                continue;
            };
            job.state = JobState::Pending;
            // Back of the queue: a recovered job does not preempt work that
            // queued honestly while it was running.
            self.queue.push(id);
            Self::trace_job_event(
                &self.obs,
                &self.traces,
                id,
                "job.queued",
                now,
                &[("job", &id.0.to_string())],
            );
        }
    }

    fn dispatch(&mut self) -> Vec<JobId> {
        let pending_refs: Vec<&JobRecord> = self
            .queue
            .iter()
            .filter_map(|id| self.jobs.get(id))
            .collect();
        if pending_refs.is_empty() {
            return Vec::new();
        }
        let free = self.cluster.free_cores();
        let releases: Vec<(u64, u32)> = self
            .jobs
            .values()
            .filter_map(|j| match (&j.state, &j.allocation) {
                (JobState::Running { started_at }, Some(a)) if j.spec.actual_ticks != u64::MAX => {
                    Some((
                        started_at + j.spec.estimated_ticks.min(j.spec.actual_ticks),
                        a.total_cores(),
                    ))
                }
                _ => None,
            })
            .collect();
        let picks = self.policy.pick(&pending_refs, free, self.now, &releases);
        let pick_ids: Vec<JobId> = picks.iter().map(|&i| pending_refs[i].id).collect();
        drop(pending_refs);

        let mut started = Vec::new();
        for id in pick_ids {
            let Some(j) = self.jobs.get(&id) else {
                continue;
            };
            let (cores_needed, is_interactive) = (
                j.spec.cores_needed(),
                matches!(j.spec.kind, JobKind::Interactive),
            );
            let _ = is_interactive;
            // Placement: round-robin prefers a segment, falling back to any.
            let preferred = self
                .policy
                .preferred_segment(self.dispatch_count, &self.cluster);
            let alloc = match preferred {
                Some(seg) => self
                    .cluster
                    .allocate_cores_filtered(cores_needed, |sid, _| sid.segment == seg)
                    .or_else(|_| self.cluster.allocate_cores(cores_needed)),
                None => self.cluster.allocate_cores(cores_needed),
            };
            match alloc {
                Ok(a) => {
                    let now = self.now;
                    let cores_granted = a.total_cores();
                    let nodes_touched = a.node_count();
                    let Some(job) = self.jobs.get_mut(&id) else {
                        // Queue/job maps out of sync: give the cores back
                        // rather than leaking them (or panicking).
                        self.cluster.release(&a);
                        continue;
                    };
                    job.state = JobState::Running { started_at: now };
                    // First start only: retries keep the original for
                    // first-attempt wait accounting.
                    if job.started_at.is_none() {
                        job.started_at = Some(now);
                    }
                    job.allocation = Some(a);
                    job.attempt += 1;
                    if let Some(lost_at) = job.requeued_at.take() {
                        let recovery = now.saturating_sub(lost_at);
                        job.recovery_wait_ticks += recovery;
                        self.accounting.record_recovery(&job.spec.user, recovery);
                        self.metrics.recovery_wait_ticks.add(recovery);
                    }
                    let attempt = job.attempt;
                    self.queue.retain(|&q| q != id);
                    self.dispatch_count += 1;
                    self.metrics.jobs_dispatched.inc();
                    // The allocation itself is a traced step: which layer
                    // granted how many cores across how many nodes.
                    if let Some(ctx) = self.traces.get(&id) {
                        self.obs.tracer.event_child(
                            ctx.parent,
                            "cluster.alloc",
                            now,
                            &[
                                ("job", &id.0.to_string()),
                                ("cores", &cores_granted.to_string()),
                                ("nodes", &nodes_touched.to_string()),
                            ],
                        );
                    }
                    Self::trace_job_event(
                        &self.obs,
                        &self.traces,
                        id,
                        "job.dispatched",
                        now,
                        &[
                            ("job", &id.0.to_string()),
                            ("attempt", &attempt.to_string()),
                            ("cores", &cores_granted.to_string()),
                            ("nodes", &nodes_touched.to_string()),
                        ],
                    );
                    started.push(id);
                }
                Err(_) => {
                    // Policy thought it fit but placement failed (e.g. the
                    // preferred segment was full and the whole cluster too);
                    // leave it queued.
                }
            }
        }
        started
    }

    // ---- durability ------------------------------------------------------

    /// Attach a durability journal. Subsequent commands are logged; open
    /// the journal (and replay its [`Recovered`] state via
    /// [`Scheduler::recover`]) *before* attaching.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Force buffered log records to stable storage (no-op without journal).
    pub fn flush_wal(&mut self) -> Result<(), SchedError> {
        match self.journal.as_mut() {
            Some(j) => j.flush().map_err(|e| SchedError::Wal(e.to_string())),
            None => Ok(()),
        }
    }

    /// Highest LSN known durable, `None` when no journal is attached.
    pub fn wal_durable_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.durable_lsn())
    }

    /// Highest LSN appended (durable or not), `None` without a journal.
    pub fn wal_last_lsn(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.last_lsn())
    }

    /// The most recent WAL failure, if logging has degraded.
    pub fn wal_error(&self) -> Option<&str> {
        self.wal_error.as_deref()
    }

    /// Log one command, returning its LSN when a journal is attached and
    /// the append succeeded (so traced commands can record it).
    fn log(&mut self, make: impl FnOnce() -> SchedRecord) -> Option<u64> {
        self.journal.as_ref()?;
        let payload = make().encode();
        self.log_payload(&payload)
    }

    fn log_payload(&mut self, payload: &[u8]) -> Option<u64> {
        // Take the journal so a snapshot can borrow `self` while appending.
        let mut j = self.journal.take()?;
        let res = j.append(payload).and_then(|lsn| {
            if j.wants_snapshot() {
                let snap = self.snapshot_bytes();
                j.install_snapshot(&snap)?;
            }
            Ok(lsn)
        });
        self.journal = Some(j);
        match res {
            Ok(lsn) => Some(lsn),
            Err(e) => {
                // Degrade rather than panic or fail the already-committed
                // in-memory mutation; the portal surfaces this via health.
                self.wal_error = Some(e.to_string());
                None
            }
        }
    }

    /// Re-execute one logged command (replay path; nothing is re-logged).
    pub fn apply_record(&mut self, rec: &SchedRecord) -> Result<(), SchedError> {
        match rec {
            SchedRecord::Submit { spec } => self.submit_inner(spec.clone()).map(|_| ()),
            SchedRecord::Cancel { id } => self.cancel_inner(*id),
            SchedRecord::Tick => {
                self.tick_inner();
                Ok(())
            }
            SchedRecord::DrainNode { node } => self.drain_node_inner(*node),
            SchedRecord::UndrainNode { node } => self.undrain_node_inner(*node),
            SchedRecord::PushStdin { id, line } => self.push_stdin_inner(*id, line),
            SchedRecord::SetOutcome {
                id,
                stdout,
                stderr,
                actual_ticks,
            } => self.set_outcome_inner(*id, stdout.as_deref(), stderr.as_deref(), *actual_ticks),
        }
    }

    /// Canonical byte serialization of the full scheduler state — jobs,
    /// queue, clocks, RNG, accounting ledger and node health. Deterministic,
    /// so it doubles as the state-equality witness in recovery tests.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(SCHED_SNAP_VERSION)
            .u64(self.now)
            .u64(self.next_id)
            .u64(self.dispatch_count)
            .u64(self.rng.state())
            .u64(self.faults_applied as u64);
        e.u32(self.queue.len() as u32);
        for id in &self.queue {
            e.u64(id.0);
        }
        e.u32(self.jobs.len() as u32);
        for job in self.jobs.values() {
            e.u64(job.id.0);
            enc_spec(&mut e, &job.spec);
            enc_state(&mut e, &job.state);
            e.u64(job.submitted_at);
            match &job.allocation {
                Some(a) => {
                    e.bool(true);
                    enc_alloc(&mut e, a);
                }
                None => {
                    e.bool(false);
                }
            }
            e.opt_u64(job.started_at);
            enc_streams(&mut e, &job.streams);
            e.u32(job.attempt)
                .opt_str(job.last_failure.as_deref())
                .u32(job.node_losses)
                .opt_u64(job.requeued_at)
                .u64(job.recovery_wait_ticks);
        }
        let users: Vec<(&str, &UserUsage)> = self.accounting.all().collect();
        e.u32(users.len() as u32);
        for (name, u) in users {
            e.str(name)
                .u64(u.jobs_completed)
                .u64(u.core_ticks)
                .u64(u.wait_ticks)
                .u64(u.retry_attempts)
                .u64(u.node_losses)
                .u64(u.recovery_wait_ticks);
        }
        let nodes = self.cluster.slave_ids();
        e.u32(nodes.len() as u32);
        for id in nodes {
            enc_node(&mut e, id);
            enc_health(&mut e, self.cluster.health(id).unwrap_or(NodeHealth::Down));
        }
        e.into_bytes()
    }

    /// Restore state from a [`Scheduler::snapshot_bytes`] payload. Call on
    /// a freshly configured scheduler (same cluster spec, policy, retry
    /// default, seed and fault plan as the instance that snapshotted).
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SchedError> {
        let bad = |_: wal::CodecError| {
            SchedError::Wal("truncated or malformed sched snapshot".to_string())
        };
        let mut d = Dec::new(bytes);
        if d.u32().map_err(bad)? != SCHED_SNAP_VERSION {
            return Err(SchedError::Wal(
                "unsupported sched snapshot version".to_string(),
            ));
        }
        self.now = d.u64().map_err(bad)?;
        self.next_id = d.u64().map_err(bad)?;
        self.dispatch_count = d.u64().map_err(bad)?;
        self.rng = JitterRng::from_state(d.u64().map_err(bad)?);
        self.faults_applied = d.u64().map_err(bad)? as usize;
        let n_queue = d.u32().map_err(bad)?;
        self.queue = Vec::with_capacity(n_queue as usize);
        for _ in 0..n_queue {
            self.queue.push(JobId(d.u64().map_err(bad)?));
        }
        let n_jobs = d.u32().map_err(bad)?;
        self.jobs = BTreeMap::new();
        for _ in 0..n_jobs {
            let id = JobId(d.u64().map_err(bad)?);
            let spec = dec_spec(&mut d).map_err(bad)?;
            let state = dec_state(&mut d).map_err(bad)?;
            let submitted_at = d.u64().map_err(bad)?;
            let allocation = if d.bool().map_err(bad)? {
                Some(dec_alloc(&mut d).map_err(bad)?)
            } else {
                None
            };
            let started_at = d.opt_u64().map_err(bad)?;
            let streams = dec_streams(&mut d).map_err(bad)?;
            let attempt = d.u32().map_err(bad)?;
            let last_failure = d.opt_str().map_err(bad)?;
            let node_losses = d.u32().map_err(bad)?;
            let requeued_at = d.opt_u64().map_err(bad)?;
            let recovery_wait_ticks = d.u64().map_err(bad)?;
            self.jobs.insert(
                id,
                JobRecord {
                    id,
                    spec,
                    state,
                    submitted_at,
                    allocation,
                    started_at,
                    streams,
                    attempt,
                    last_failure,
                    node_losses,
                    requeued_at,
                    recovery_wait_ticks,
                },
            );
        }
        let n_users = d.u32().map_err(bad)?;
        self.accounting = Accounting::new();
        for _ in 0..n_users {
            let name = d.str().map_err(bad)?;
            let usage = UserUsage {
                jobs_completed: d.u64().map_err(bad)?,
                core_ticks: d.u64().map_err(bad)?,
                wait_ticks: d.u64().map_err(bad)?,
                retry_attempts: d.u64().map_err(bad)?,
                node_losses: d.u64().map_err(bad)?,
                recovery_wait_ticks: d.u64().map_err(bad)?,
            };
            self.accounting.set_usage(&name, usage);
        }
        let n_nodes = d.u32().map_err(bad)?;
        for _ in 0..n_nodes {
            let node = dec_node(&mut d).map_err(bad)?;
            let health = dec_health(&mut d).map_err(bad)?;
            // A snapshot from a differently shaped cluster may name nodes
            // that don't exist here; skip them rather than fail recovery.
            let _ = self.cluster.set_health(node, health);
        }
        d.finish().map_err(bad)?;
        // Re-mark the cores running jobs hold; the fresh cluster starts
        // with everything free.
        let allocs: Vec<_> = self
            .jobs
            .values()
            .filter_map(|j| j.allocation.clone())
            .collect();
        for a in allocs {
            self.cluster.occupy(&a);
        }
        self.publish_gauges();
        Ok(())
    }

    /// Rebuild scheduler state from what [`wal::Journal::open`] recovered:
    /// restore the snapshot (if any), then replay the command tail. `self`
    /// must be freshly configured identically to the crashed instance.
    /// Returns how many records failed to replay — bad records are skipped,
    /// not fatal, so one corrupt entry cannot take the whole portal down.
    pub fn recover(&mut self, recovered: &Recovered) -> Result<u64, SchedError> {
        if let Some(snap) = &recovered.snapshot {
            self.restore_snapshot(snap)?;
        }
        let mut errors = 0u64;
        for (_lsn, payload) in &recovered.records {
            match SchedRecord::decode(payload) {
                Ok(rec) => {
                    if self.apply_record(&rec).is_err() {
                        errors += 1;
                    }
                }
                Err(_) => errors += 1,
            }
        }
        self.publish_gauges();
        Ok(errors)
    }

    /// Mean queue wait of completed jobs, in ticks.
    pub fn mean_wait(&self) -> f64 {
        let waits: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.state.is_terminal())
            .map(|j| j.wait_ticks(self.now))
            .collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;

    fn sched(policy: SchedPolicyKind) -> Scheduler {
        // 2 segments x 2 quad-core nodes = 16 cores.
        Scheduler::new(Cluster::new(ClusterSpec::small(2, 2)), policy)
    }

    #[test]
    fn submit_dispatch_complete() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::sequential("alice", "a.out", 3)).unwrap();
        assert_eq!(s.pending(), &[id]);
        let started = s.tick();
        assert_eq!(started, vec![id]);
        assert!(s.job(id).unwrap().state.is_running());
        assert_eq!(s.cluster().free_cores(), 15);
        s.run_ticks(3);
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Completed { .. }
        ));
        assert_eq!(s.cluster().free_cores(), 16);
    }

    #[test]
    fn impossible_job_rejected_at_submit() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let err = s
            .submit(JobSpec::parallel("bob", "x", 1000, 1))
            .unwrap_err();
        assert!(matches!(
            err,
            SchedError::Impossible {
                requested: 1000,
                capacity: 16
            }
        ));
    }

    #[test]
    fn fifo_head_blocks_queue() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let _a = s.submit(JobSpec::parallel("u", "x", 16, 10)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "y", 16, 5)).unwrap();
        let c = s.submit(JobSpec::sequential("u", "z", 1)).unwrap();
        s.tick();
        // a runs, b blocks, c must NOT start under FIFO.
        assert!(matches!(s.job(b).unwrap().state, JobState::Pending));
        assert!(matches!(s.job(c).unwrap().state, JobState::Pending));
        assert_eq!(s.running_count(), 1);
    }

    #[test]
    fn backfill_runs_short_job_in_gap() {
        let mut s = sched(SchedPolicyKind::Backfill);
        let a = s.submit(JobSpec::parallel("u", "a", 12, 100)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "b", 16, 100)).unwrap();
        let c = s.submit(JobSpec::sequential("u", "c", 10)).unwrap();
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        assert!(matches!(s.job(b).unwrap().state, JobState::Pending));
        // c (1 core, 10 ticks) finishes before a releases at ~101.
        assert!(
            s.job(c).unwrap().state.is_running(),
            "backfill should start c"
        );
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let a = s.submit(JobSpec::sequential("u", "a", 100)).unwrap();
        let b = s.submit(JobSpec::sequential("u", "b", 100)).unwrap();
        s.cancel(b).unwrap();
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        s.cancel(a).unwrap();
        assert_eq!(s.cluster().free_cores(), 16);
        assert!(matches!(s.cancel(a), Err(SchedError::BadState { .. })));
    }

    #[test]
    fn interactive_jobs_never_autocomplete() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::interactive("u", "shell")).unwrap();
        s.run_ticks(1000);
        assert!(s.job(id).unwrap().state.is_running());
        s.cancel(id).unwrap();
    }

    #[test]
    fn stdin_reaches_job_record() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::interactive("u", "shell")).unwrap();
        s.tick();
        s.job_mut(id).unwrap().streams.push_stdin("42");
        assert_eq!(
            s.job_mut(id).unwrap().streams.pop_stdin().as_deref(),
            Some("42")
        );
    }

    #[test]
    fn node_failure_without_retry_is_node_lost() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s
            .submit(JobSpec::parallel("u", "x", 16, 1000).with_retry(RetryPolicy::none()))
            .unwrap();
        s.tick();
        assert!(s.job(id).unwrap().state.is_running());
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        let job = s.job(id).unwrap();
        assert!(
            matches!(job.state, JobState::NodeLost { attempts: 1, .. }),
            "{:?}",
            job.state
        );
        assert_eq!(job.last_failure.as_deref(), Some("node went down"));
        assert_eq!(job.node_losses, 1);
        // Cores on surviving nodes were released.
        assert_eq!(s.cluster().free_cores(), 12);
        assert_eq!(s.accounting().usage("u").unwrap().node_losses, 1);
    }

    #[test]
    fn node_failure_with_retry_requeues_and_completes() {
        let mut s = sched(SchedPolicyKind::Fifo)
            .with_retry(RetryPolicy::fixed(3, 2))
            .with_retry_seed(7);
        let id = s.submit(JobSpec::sequential("u", "x", 5)).unwrap();
        s.tick(); // dispatched on first node (packing order)
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        let JobState::Requeued {
            attempt: 2,
            retry_at,
        } = s.job(id).unwrap().state
        else {
            panic!("expected requeue, got {:?}", s.job(id).unwrap().state)
        };
        assert_eq!(retry_at, s.now() + 2, "fixed backoff of 2 ticks");
        // Backoff passes; job restarts on a surviving node and completes.
        let done_at = s.drain(100).expect("should recover and drain");
        let job = s.job(id).unwrap();
        assert!(matches!(job.state, JobState::Completed { .. }));
        assert_eq!(job.attempt, 2);
        assert!(job.recovery_wait_ticks >= 2, "{}", job.recovery_wait_ticks);
        assert!(done_at >= 8);
        let usage = s.accounting().usage("u").unwrap();
        assert_eq!(usage.retry_attempts, 1);
        assert_eq!(usage.node_losses, 1);
        assert!(usage.recovery_wait_ticks >= 2);
        // First-attempt wait is submission→first dispatch (one tick); the
        // outage shows up as recovery wait, not here.
        assert_eq!(usage.wait_ticks, 1);
    }

    #[test]
    fn retries_exhaust_into_node_lost() {
        // One single node: every retry lands back on it, and the fault plan
        // kills it every time.
        let mut s = Scheduler::new(
            Cluster::new(ClusterSpec::small(1, 1)),
            SchedPolicyKind::Fifo,
        )
        .with_retry(RetryPolicy::fixed(3, 1));
        let node = s.cluster().slave_ids()[0];
        let id = s.submit(JobSpec::sequential("u", "x", 50)).unwrap();
        for _ in 0..200 {
            s.tick();
            if s.job(id).unwrap().state.is_running() {
                s.cluster_mut().set_health(node, NodeHealth::Down).unwrap();
                s.tick(); // observe the loss
                s.cluster_mut().set_health(node, NodeHealth::Up).unwrap();
            }
            if s.job(id).unwrap().state.is_terminal() {
                break;
            }
        }
        let job = s.job(id).unwrap();
        assert!(
            matches!(job.state, JobState::NodeLost { attempts: 3, .. }),
            "{:?}",
            job.state
        );
        assert_eq!(job.node_losses, 3);
        assert_eq!(s.cluster().free_cores(), 4, "no leaked cores");
    }

    #[test]
    fn cancel_requeued_job() {
        let mut s = sched(SchedPolicyKind::Fifo).with_retry(RetryPolicy::fixed(3, 50));
        let id = s.submit(JobSpec::sequential("u", "x", 100)).unwrap();
        s.tick();
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        assert!(s.job(id).unwrap().state.is_requeued());
        // Cancel while parked in backoff.
        s.cancel(id).unwrap();
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Cancelled { .. }
        ));
        // The backoff expiring later must not resurrect the job.
        s.run_ticks(60);
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Cancelled { .. }
        ));
        assert!(!s.pending().contains(&id));
    }

    #[test]
    fn cancel_during_backoff_requeue_window() {
        // Backoff of 0: the job re-enters Pending on the very next tick;
        // cancelling in that window goes through the Pending arm.
        let mut s = sched(SchedPolicyKind::Fifo).with_retry(RetryPolicy::fixed(5, 0));
        let id = s.submit(JobSpec::parallel("u", "x", 16, 100)).unwrap();
        s.tick();
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        // 16 cores can't fit on a 12-core degraded cluster: job sits Pending.
        assert!(matches!(s.job(id).unwrap().state, JobState::Pending));
        assert!(s.pending().contains(&id));
        s.cancel(id).unwrap();
        assert!(!s.pending().contains(&id));
        s.cluster_mut().set_health(victim, NodeHealth::Up).unwrap();
        s.run_ticks(20);
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Cancelled { .. }
        ));
    }

    #[test]
    fn drain_returns_none_when_retries_outlive_horizon() {
        let mut s = sched(SchedPolicyKind::Fifo).with_retry(RetryPolicy::fixed(2, 1000));
        let id = s.submit(JobSpec::sequential("u", "x", 10)).unwrap();
        s.tick();
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        assert!(s.job(id).unwrap().state.is_requeued());
        // The retry becomes eligible at ~tick 1002; a 50-tick horizon can't
        // reach it, and a parked job is not terminal.
        assert_eq!(s.drain(50), None);
        assert!(s.job(id).unwrap().state.is_requeued());
    }

    #[test]
    fn timeout_fires_while_queued_and_while_running() {
        let mut s = sched(SchedPolicyKind::Fifo);
        // Hog leaves 1 free core; the 4-core job behind it can never start
        // and times out in the queue. That unblocks the FIFO head for the
        // sequential job, which then times out mid-run (budget 20 < run 100).
        let hog = s.submit(JobSpec::parallel("u", "hog", 15, 200)).unwrap();
        let starved = s
            .submit(JobSpec::parallel("u", "s", 4, 1).with_timeout(10))
            .unwrap();
        let slow = s
            .submit(JobSpec::sequential("u", "slow", 100).with_timeout(20))
            .unwrap();
        s.run_ticks(50);
        assert!(s.job(hog).unwrap().state.is_running());
        assert!(matches!(
            s.job(starved).unwrap().state,
            JobState::TimedOut { at: 10 }
        ));
        assert!(s.job(starved).unwrap().started_at.is_none(), "never ran");
        let job = s.job(slow).unwrap();
        assert!(
            matches!(job.state, JobState::TimedOut { at: 20 }),
            "{:?}",
            job.state
        );
        assert_eq!(
            job.started_at,
            Some(10),
            "dispatched once the 4-core job expired"
        );
        assert!(job.last_failure.as_deref().unwrap().contains("budget"));
        // The timed-out running job's core came back; only the hog remains.
        assert_eq!(s.cluster().free_cores(), 1);
        s.cancel(hog).unwrap();
        assert_eq!(s.cluster().free_cores(), 16);
    }

    #[test]
    fn timeout_caps_retry_loops() {
        // Retries allowed, but the wall-clock budget expires during backoff.
        let mut s = sched(SchedPolicyKind::Fifo).with_retry(RetryPolicy::fixed(10, 100));
        let id = s
            .submit(JobSpec::sequential("u", "x", 50).with_timeout(30))
            .unwrap();
        s.tick();
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        assert!(s.job(id).unwrap().state.is_requeued());
        s.run_ticks(40);
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::TimedOut { at: 30 }
        ));
    }

    #[test]
    fn drain_node_stops_placement_but_finishes_running() {
        let mut s = Scheduler::new(
            Cluster::new(ClusterSpec::small(1, 2)),
            SchedPolicyKind::Fifo,
        );
        let a = s.submit(JobSpec::parallel("u", "a", 4, 10)).unwrap();
        s.tick();
        let node_of_a = *s
            .job(a)
            .unwrap()
            .allocation
            .as_ref()
            .unwrap()
            .cores
            .keys()
            .next()
            .unwrap();
        s.drain_node(node_of_a).unwrap();
        // New work avoids the draining node...
        let b = s.submit(JobSpec::parallel("u", "b", 4, 10)).unwrap();
        s.tick();
        let node_of_b = *s
            .job(b)
            .unwrap()
            .allocation
            .as_ref()
            .unwrap()
            .cores
            .keys()
            .next()
            .unwrap();
        assert_ne!(node_of_a, node_of_b);
        // ...and the draining node's job still completes normally.
        s.run_ticks(15);
        assert!(matches!(
            s.job(a).unwrap().state,
            JobState::Completed { .. }
        ));
        // A 5+ core job cannot be placed while one node drains.
        let c = s.submit(JobSpec::parallel("u", "c", 8, 5)).unwrap();
        s.run_ticks(20);
        assert!(matches!(s.job(c).unwrap().state, JobState::Pending));
        // Undrain restores capacity and the job proceeds.
        s.undrain_node(node_of_a).unwrap();
        s.run_ticks(10);
        assert!(matches!(
            s.job(c).unwrap().state,
            JobState::Completed { .. }
        ));
    }

    #[test]
    fn drain_node_does_not_resurrect_down_nodes() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let node = s.cluster().slave_ids()[0];
        s.cluster_mut().set_health(node, NodeHealth::Down).unwrap();
        s.drain_node(node).unwrap();
        assert_eq!(s.cluster().health(node).unwrap(), NodeHealth::Down);
        s.undrain_node(node).unwrap();
        assert_eq!(s.cluster().health(node).unwrap(), NodeHealth::Up);
    }

    #[test]
    fn fault_plan_drives_scheduler_ticks() {
        let s = sched(SchedPolicyKind::Fifo);
        let node = s.cluster().slave_ids()[0];
        let mut plan = FaultPlan::none();
        plan.push(3, node, NodeHealth::Down);
        plan.push(6, node, NodeHealth::Up);
        let mut s = s.with_fault_plan(plan);
        s.run_ticks(2);
        assert_eq!(s.cluster().health(node).unwrap(), NodeHealth::Up);
        s.tick();
        assert_eq!(s.cluster().health(node).unwrap(), NodeHealth::Down);
        s.run_ticks(3);
        assert_eq!(s.cluster().health(node).unwrap(), NodeHealth::Up);
    }

    #[test]
    fn degraded_mode_accepts_submissions_during_outage() {
        let mut s = sched(SchedPolicyKind::Fifo);
        // Kill a whole segment (2 of 4 nodes).
        let ids = s.cluster().slave_ids();
        s.cluster_mut()
            .set_health(ids[0], NodeHealth::Down)
            .unwrap();
        s.cluster_mut()
            .set_health(ids[1], NodeHealth::Down)
            .unwrap();
        // A 16-core job exceeds *current* capacity (8) but not spec capacity:
        // accepted, parked, and runs once the segment returns.
        let id = s.submit(JobSpec::parallel("u", "x", 16, 5)).unwrap();
        s.run_ticks(10);
        assert!(matches!(s.job(id).unwrap().state, JobState::Pending));
        s.cluster_mut().set_health(ids[0], NodeHealth::Up).unwrap();
        s.cluster_mut().set_health(ids[1], NodeHealth::Up).unwrap();
        s.drain(50).expect("drains after recovery");
        assert!(matches!(
            s.job(id).unwrap().state,
            JobState::Completed { .. }
        ));
    }

    #[test]
    fn drain_reports_completion_tick() {
        let mut s = sched(SchedPolicyKind::Fifo);
        for i in 0..8 {
            s.submit(JobSpec::parallel("u", "x", 4, 5 + i % 3)).unwrap();
        }
        let done_at = s.drain(1000).expect("should drain");
        assert!(done_at >= 5, "{done_at}");
        assert!(s.jobs().all(|j| j.state.is_terminal()));
    }

    #[test]
    fn accounting_accumulates_core_ticks() {
        let mut s = sched(SchedPolicyKind::Fifo);
        s.submit(JobSpec::parallel("alice", "x", 4, 10)).unwrap();
        s.submit(JobSpec::sequential("bob", "y", 10)).unwrap();
        s.drain(100).unwrap();
        let alice = s.accounting().usage("alice").unwrap();
        assert_eq!(alice.core_ticks, 40);
        let bob = s.accounting().usage("bob").unwrap();
        assert_eq!(bob.core_ticks, 10);
    }

    #[test]
    fn round_robin_spreads_segments() {
        let mut s = sched(SchedPolicyKind::RoundRobinSegments);
        let a = s.submit(JobSpec::parallel("u", "a", 4, 100)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "b", 4, 100)).unwrap();
        s.tick();
        let seg_of = |s: &Scheduler, id| {
            s.job(id)
                .unwrap()
                .allocation
                .as_ref()
                .unwrap()
                .cores
                .keys()
                .next()
                .unwrap()
                .segment
        };
        assert_ne!(
            seg_of(&s, a),
            seg_of(&s, b),
            "jobs should land on different segments"
        );
    }

    #[test]
    fn obs_timeline_and_counters_follow_lifecycle() {
        let obs = Arc::new(Obs::new());
        let mut s = sched(SchedPolicyKind::Fifo)
            .with_obs(Arc::clone(&obs))
            .with_retry(RetryPolicy::fixed(3, 2))
            .with_retry_seed(7);
        let id = s.submit(JobSpec::sequential("u", "x", 5)).unwrap();
        s.tick();
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        s.tick();
        s.cluster_mut().set_health(victim, NodeHealth::Up).unwrap();
        s.drain(100).expect("recovers and drains");

        let m = &obs.metrics;
        assert_eq!(m.counter("ccp_sched_jobs_submitted_total", &[]).get(), 1);
        assert_eq!(m.counter("ccp_sched_jobs_completed_total", &[]).get(), 1);
        assert_eq!(m.counter("ccp_sched_retries_total", &[]).get(), 1);
        assert_eq!(m.counter("ccp_sched_node_losses_total", &[]).get(), 1);
        assert_eq!(m.counter("ccp_sched_jobs_dispatched_total", &[]).get(), 2);
        assert_eq!(m.gauge("ccp_sched_queue_depth", &[]).get(), 0);
        assert_eq!(m.gauge("ccp_sched_jobs_running", &[]).get(), 0);
        assert_eq!(
            m.histogram("ccp_sched_job_run_ticks", &[], obs::TICK_BOUNDS)
                .count(),
            1
        );

        // The per-job timeline is ordered and ends in the terminal event.
        let timeline = obs.tracer.find_by_attr("job", &id.0.to_string());
        let names: Vec<&str> = timeline.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "job.submitted",
                "job.queued",
                "job.dispatched",
                "job.requeued",
                "job.queued",
                "job.dispatched",
                "job.completed"
            ]
        );
        assert!(timeline.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(timeline.last().unwrap().attr("run_ticks"), Some("5"));
    }

    #[test]
    fn mean_wait_computed() {
        let mut s = sched(SchedPolicyKind::Fifo);
        s.submit(JobSpec::parallel("u", "a", 16, 10)).unwrap();
        s.submit(JobSpec::parallel("u", "b", 16, 10)).unwrap();
        s.drain(100).unwrap();
        // First job waits ~0, second waits ~10.
        let mw = s.mean_wait();
        assert!(mw > 3.0 && mw < 8.0, "mean wait {mw}");
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let mut s = sched(SchedPolicyKind::Backfill).with_retry_seed(5);
        s.submit(JobSpec::parallel("alice", "a", 8, 30)).unwrap();
        s.submit(JobSpec::sequential("bob", "b", 10)).unwrap();
        s.run_ticks(5);
        let snap = s.snapshot_bytes();
        let mut fresh = sched(SchedPolicyKind::Backfill).with_retry_seed(5);
        fresh.restore_snapshot(&snap).unwrap();
        assert_eq!(fresh.snapshot_bytes(), snap);
        assert_eq!(fresh.now(), s.now());
        assert_eq!(
            fresh.cluster().free_cores(),
            s.cluster().free_cores(),
            "busy cores re-occupied"
        );
    }

    #[test]
    fn corrupt_snapshot_bytes_rejected_not_panic() {
        let mut s = sched(SchedPolicyKind::Fifo);
        assert!(matches!(s.restore_snapshot(&[]), Err(SchedError::Wal(_))));
        let mut snap = s.snapshot_bytes();
        snap.truncate(snap.len() / 2);
        assert!(matches!(s.restore_snapshot(&snap), Err(SchedError::Wal(_))));
    }

    #[test]
    fn journaled_commands_replay_to_identical_state() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        let storage = MemStorage::new();
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 0).unwrap();
        let mut s = sched(SchedPolicyKind::Fifo)
            .with_retry(RetryPolicy::fixed(3, 2))
            .with_retry_seed(7);
        s.attach_journal(j);
        let a = s.submit(JobSpec::sequential("alice", "x", 5)).unwrap();
        let b = s.submit(JobSpec::interactive("bob", "shell")).unwrap();
        s.run_ticks(3);
        s.push_stdin(b, "21").unwrap();
        s.set_outcome(b, Some("21 doubled is 42\n"), None, None)
            .unwrap();
        let node = s.cluster().slave_ids()[3];
        s.drain_node(node).unwrap();
        s.run_ticks(4);
        s.cancel(b).unwrap();
        s.run_ticks(2);
        assert!(matches!(
            s.job(a).unwrap().state,
            JobState::Completed { .. }
        ));
        assert!(s.wal_error().is_none());
        let want = s.snapshot_bytes();
        drop(s); // "crash"

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0).unwrap();
        let mut fresh = sched(SchedPolicyKind::Fifo)
            .with_retry(RetryPolicy::fixed(3, 2))
            .with_retry_seed(7);
        let errors = fresh.recover(&rec).unwrap();
        assert_eq!(errors, 0);
        assert_eq!(fresh.snapshot_bytes(), want);
        assert_eq!(
            fresh.job(b).unwrap().streams.stdout,
            "21 doubled is 42\n",
            "engine output survived via SetOutcome records"
        );
    }

    #[test]
    fn snapshot_compaction_midstream_preserves_state() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        let storage = MemStorage::new();
        // Snapshot every 5 records so compaction fires mid-history.
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 5).unwrap();
        let mut s = sched(SchedPolicyKind::Fifo);
        s.attach_journal(j);
        for i in 0..6 {
            s.submit(JobSpec::sequential("u", "x", 2 + i)).unwrap();
        }
        s.run_ticks(12);
        let want = s.snapshot_bytes();
        drop(s);

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 5).unwrap();
        assert!(rec.report.snapshot_lsn.is_some(), "compaction never fired");
        let mut fresh = sched(SchedPolicyKind::Fifo);
        assert_eq!(fresh.recover(&rec).unwrap(), 0);
        assert_eq!(fresh.snapshot_bytes(), want);
    }

    #[test]
    fn recovered_backoff_jitter_matches_uncrashed_run() {
        use wal::{FsyncPolicy, Journal, MemStorage};
        // Reference run, never crashed: node loss at a known tick, jitter
        // drawn from the seeded RNG.
        let jittery = RetryPolicy {
            max_attempts: 5,
            base_backoff: 2,
            max_backoff: 32,
            jitter: 3,
        };
        let script = |s: &mut Scheduler| {
            s.submit(JobSpec::sequential("u", "x", 50)).unwrap();
            s.run_ticks(2);
            let victim = s.cluster().slave_ids()[0];
            s.cluster_mut()
                .set_health(victim, NodeHealth::Down)
                .unwrap();
            s.run_ticks(1);
        };
        let mut reference = sched(SchedPolicyKind::Fifo)
            .with_retry(jittery)
            .with_retry_seed(99);
        script(&mut reference);

        // Journaled run: crash after the same prefix, recover, then inject
        // the same loss. The recovered RNG must draw the same jitter.
        // (Direct cluster_mut health flips aren't commands, so the fault is
        // injected after recovery in both runs via ticks only.)
        let storage = MemStorage::new();
        let (j, _) = Journal::open(Box::new(storage.clone()), FsyncPolicy::Always, 0).unwrap();
        let mut s = sched(SchedPolicyKind::Fifo)
            .with_retry(jittery)
            .with_retry_seed(99);
        s.attach_journal(j);
        s.submit(JobSpec::sequential("u", "x", 50)).unwrap();
        s.run_ticks(2);
        drop(s); // crash before the outage

        let (_, rec) = Journal::open(Box::new(storage), FsyncPolicy::Always, 0).unwrap();
        let mut recovered = sched(SchedPolicyKind::Fifo)
            .with_retry(jittery)
            .with_retry_seed(99);
        recovered.recover(&rec).unwrap();
        let victim = recovered.cluster().slave_ids()[0];
        recovered
            .cluster_mut()
            .set_health(victim, NodeHealth::Down)
            .unwrap();
        recovered.run_ticks(1);

        let state_of = |s: &Scheduler| s.job(JobId(1)).unwrap().state.clone();
        assert_eq!(
            state_of(&reference),
            state_of(&recovered),
            "same retry_at => same jitter draw after recovery"
        );
    }
}
