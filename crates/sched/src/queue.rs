//! The scheduler: submit → queue → dispatch → complete, on a logical clock.
//!
//! The driver calls [`Scheduler::tick`] once per time unit; each tick
//! completes due jobs, then asks the policy which pending jobs to start and
//! allocates cores for them from the [`Cluster`].

use crate::accounting::Accounting;
use crate::job::{JobId, JobKind, JobRecord, JobSpec, JobState, StdStreams};
use crate::policy::SchedPolicyKind;
use cluster::{Cluster, ClusterError, NodeHealth, SlaveId};
use std::collections::BTreeMap;
use std::fmt;

/// Scheduler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// Unknown job id.
    NoSuchJob(JobId),
    /// Job is in a state that does not allow the operation.
    BadState {
        /// The job.
        job: JobId,
        /// What was attempted.
        op: &'static str,
    },
    /// The job can never run on this cluster (even empty).
    Impossible {
        /// Cores requested.
        requested: u32,
        /// Maximum schedulable cores.
        capacity: u32,
    },
    /// Underlying cluster error.
    Cluster(ClusterError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoSuchJob(id) => write!(f, "no such job {id}"),
            SchedError::BadState { job, op } => write!(f, "{job}: cannot {op} in current state"),
            SchedError::Impossible { requested, capacity } => {
                write!(f, "job needs {requested} cores, cluster has {capacity}")
            }
            SchedError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for SchedError {
    fn from(e: ClusterError) -> Self {
        SchedError::Cluster(e)
    }
}

/// The job distributor.
#[derive(Debug)]
pub struct Scheduler {
    cluster: Cluster,
    policy: SchedPolicyKind,
    jobs: BTreeMap<JobId, JobRecord>,
    /// FIFO of pending job ids.
    queue: Vec<JobId>,
    next_id: u64,
    now: u64,
    dispatch_count: u64,
    accounting: Accounting,
}

impl Scheduler {
    /// A scheduler over `cluster` using `policy`.
    pub fn new(cluster: Cluster, policy: SchedPolicyKind) -> Scheduler {
        Scheduler {
            cluster,
            policy,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            next_id: 1,
            now: 0,
            dispatch_count: 0,
            accounting: Accounting::new(),
        }
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The policy in force.
    pub fn policy(&self) -> SchedPolicyKind {
        self.policy
    }

    /// The backing cluster (read-only).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (fault injection in tests).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Usage accounting.
    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Submit a job; it enters the pending queue.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SchedError> {
        let capacity = self.cluster.spec().total_cores();
        if spec.cores_needed() > capacity {
            return Err(SchedError::Impossible { requested: spec.cores_needed(), capacity });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.jobs.insert(
            id,
            JobRecord {
                id,
                spec,
                state: JobState::Pending,
                submitted_at: self.now,
                allocation: None,
                started_at: None,
                streams: StdStreams::default(),
            },
        );
        self.queue.push(id);
        Ok(id)
    }

    /// Look a job up.
    pub fn job(&self, id: JobId) -> Result<&JobRecord, SchedError> {
        self.jobs.get(&id).ok_or(SchedError::NoSuchJob(id))
    }

    /// Mutable job access (the portal appends stdin through this).
    pub fn job_mut(&mut self, id: JobId) -> Result<&mut JobRecord, SchedError> {
        self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))
    }

    /// All jobs, id-ordered.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// Ids of currently pending jobs, queue-ordered.
    pub fn pending(&self) -> &[JobId] {
        &self.queue
    }

    /// Number of running jobs.
    pub fn running_count(&self) -> usize {
        self.jobs.values().filter(|j| j.state.is_running()).count()
    }

    /// Cancel a pending or running job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), SchedError> {
        let now = self.now;
        let job = self.jobs.get_mut(&id).ok_or(SchedError::NoSuchJob(id))?;
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled { at: now };
                self.queue.retain(|&q| q != id);
                Ok(())
            }
            JobState::Running { .. } => {
                job.state = JobState::Cancelled { at: now };
                if let Some(alloc) = job.allocation.take() {
                    self.cluster.release(&alloc);
                }
                Ok(())
            }
            _ => Err(SchedError::BadState { job: id, op: "cancel" }),
        }
    }

    /// Advance time by one tick: complete due jobs, fail jobs on dead nodes,
    /// then dispatch from the queue per policy. Returns ids dispatched.
    pub fn tick(&mut self) -> Vec<JobId> {
        self.now += 1;
        self.complete_due();
        self.fail_on_dead_nodes();
        self.dispatch()
    }

    /// Run `n` ticks, returning total dispatches.
    pub fn run_ticks(&mut self, n: u64) -> usize {
        let mut total = 0;
        for _ in 0..n {
            total += self.tick().len();
        }
        total
    }

    /// Drive until every submitted job is terminal (or `max_ticks` elapse).
    /// Returns the tick at which the system drained, if it did.
    pub fn drain(&mut self, max_ticks: u64) -> Option<u64> {
        for _ in 0..max_ticks {
            self.tick();
            let all_done = self.jobs.values().all(|j| j.state.is_terminal());
            if all_done {
                return Some(self.now);
            }
        }
        None
    }

    fn complete_due(&mut self) {
        let now = self.now;
        let due: Vec<JobId> = self
            .jobs
            .values()
            .filter_map(|j| match j.state {
                JobState::Running { started_at }
                    if j.spec.actual_ticks != u64::MAX && now >= started_at + j.spec.actual_ticks =>
                {
                    Some(j.id)
                }
                _ => None,
            })
            .collect();
        for id in due {
            let job = self.jobs.get_mut(&id).expect("listed above");
            let started_at = match job.state {
                JobState::Running { started_at } => started_at,
                _ => unreachable!(),
            };
            job.state = JobState::Completed { at: now };
            let alloc = job.allocation.take();
            let cores = alloc.as_ref().map(|a| a.total_cores()).unwrap_or(0);
            self.accounting.record(
                &job.spec.user,
                cores as u64 * (now - started_at),
                now - job.submitted_at - (now - started_at),
            );
            if let Some(a) = alloc {
                self.cluster.release(&a);
            }
        }
    }

    fn fail_on_dead_nodes(&mut self) {
        let now = self.now;
        let dead: Vec<SlaveId> = self
            .cluster
            .slave_ids()
            .into_iter()
            .filter(|&id| self.cluster.health(id) == Ok(NodeHealth::Down))
            .collect();
        if dead.is_empty() {
            return;
        }
        let doomed: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| {
                j.state.is_running()
                    && j.allocation
                        .as_ref()
                        .map(|a| a.cores.keys().any(|n| dead.contains(n)))
                        .unwrap_or(false)
            })
            .map(|j| j.id)
            .collect();
        for id in doomed {
            let job = self.jobs.get_mut(&id).expect("listed above");
            job.state = JobState::Failed { at: now, reason: "node went down".to_string() };
            if let Some(a) = job.allocation.take() {
                self.cluster.release(&a);
            }
        }
    }

    fn dispatch(&mut self) -> Vec<JobId> {
        let pending_refs: Vec<&JobRecord> =
            self.queue.iter().map(|id| &self.jobs[id]).collect();
        if pending_refs.is_empty() {
            return Vec::new();
        }
        let free = self.cluster.free_cores();
        let releases: Vec<(u64, u32)> = self
            .jobs
            .values()
            .filter_map(|j| match (&j.state, &j.allocation) {
                (JobState::Running { started_at }, Some(a)) if j.spec.actual_ticks != u64::MAX => {
                    Some((started_at + j.spec.estimated_ticks.min(j.spec.actual_ticks), a.total_cores()))
                }
                _ => None,
            })
            .collect();
        let picks = self.policy.pick(&pending_refs, free, self.now, &releases);
        let pick_ids: Vec<JobId> = picks.iter().map(|&i| pending_refs[i].id).collect();
        drop(pending_refs);

        let mut started = Vec::new();
        for id in pick_ids {
            let (cores_needed, is_interactive) = {
                let j = &self.jobs[&id];
                (j.spec.cores_needed(), matches!(j.spec.kind, JobKind::Interactive))
            };
            let _ = is_interactive;
            // Placement: round-robin prefers a segment, falling back to any.
            let preferred = self.policy.preferred_segment(self.dispatch_count, &self.cluster);
            let alloc = match preferred {
                Some(seg) => self
                    .cluster
                    .allocate_cores_filtered(cores_needed, |sid, _| sid.segment == seg)
                    .or_else(|_| self.cluster.allocate_cores(cores_needed)),
                None => self.cluster.allocate_cores(cores_needed),
            };
            match alloc {
                Ok(a) => {
                    let now = self.now;
                    let job = self.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running { started_at: now };
                    job.started_at = Some(now);
                    job.allocation = Some(a);
                    self.queue.retain(|&q| q != id);
                    self.dispatch_count += 1;
                    started.push(id);
                }
                Err(_) => {
                    // Policy thought it fit but placement failed (e.g. the
                    // preferred segment was full and the whole cluster too);
                    // leave it queued.
                }
            }
        }
        started
    }

    /// Mean queue wait of completed jobs, in ticks.
    pub fn mean_wait(&self) -> f64 {
        let waits: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.state.is_terminal())
            .map(|j| j.wait_ticks(self.now))
            .collect();
        if waits.is_empty() {
            return 0.0;
        }
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;

    fn sched(policy: SchedPolicyKind) -> Scheduler {
        // 2 segments x 2 quad-core nodes = 16 cores.
        Scheduler::new(Cluster::new(ClusterSpec::small(2, 2)), policy)
    }

    #[test]
    fn submit_dispatch_complete() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::sequential("alice", "a.out", 3)).unwrap();
        assert_eq!(s.pending(), &[id]);
        let started = s.tick();
        assert_eq!(started, vec![id]);
        assert!(s.job(id).unwrap().state.is_running());
        assert_eq!(s.cluster().free_cores(), 15);
        s.run_ticks(3);
        assert!(matches!(s.job(id).unwrap().state, JobState::Completed { .. }));
        assert_eq!(s.cluster().free_cores(), 16);
    }

    #[test]
    fn impossible_job_rejected_at_submit() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let err = s.submit(JobSpec::parallel("bob", "x", 1000, 1)).unwrap_err();
        assert!(matches!(err, SchedError::Impossible { requested: 1000, capacity: 16 }));
    }

    #[test]
    fn fifo_head_blocks_queue() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let _a = s.submit(JobSpec::parallel("u", "x", 16, 10)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "y", 16, 5)).unwrap();
        let c = s.submit(JobSpec::sequential("u", "z", 1)).unwrap();
        s.tick();
        // a runs, b blocks, c must NOT start under FIFO.
        assert!(matches!(s.job(b).unwrap().state, JobState::Pending));
        assert!(matches!(s.job(c).unwrap().state, JobState::Pending));
        assert_eq!(s.running_count(), 1);
    }

    #[test]
    fn backfill_runs_short_job_in_gap() {
        let mut s = sched(SchedPolicyKind::Backfill);
        let a = s.submit(JobSpec::parallel("u", "a", 12, 100)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "b", 16, 100)).unwrap();
        let c = s.submit(JobSpec::sequential("u", "c", 10)).unwrap();
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        assert!(matches!(s.job(b).unwrap().state, JobState::Pending));
        // c (1 core, 10 ticks) finishes before a releases at ~101.
        assert!(s.job(c).unwrap().state.is_running(), "backfill should start c");
    }

    #[test]
    fn cancel_pending_and_running() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let a = s.submit(JobSpec::sequential("u", "a", 100)).unwrap();
        let b = s.submit(JobSpec::sequential("u", "b", 100)).unwrap();
        s.cancel(b).unwrap();
        s.tick();
        assert!(s.job(a).unwrap().state.is_running());
        s.cancel(a).unwrap();
        assert_eq!(s.cluster().free_cores(), 16);
        assert!(matches!(s.cancel(a), Err(SchedError::BadState { .. })));
    }

    #[test]
    fn interactive_jobs_never_autocomplete() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::interactive("u", "shell")).unwrap();
        s.run_ticks(1000);
        assert!(s.job(id).unwrap().state.is_running());
        s.cancel(id).unwrap();
    }

    #[test]
    fn stdin_reaches_job_record() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::interactive("u", "shell")).unwrap();
        s.tick();
        s.job_mut(id).unwrap().streams.push_stdin("42");
        assert_eq!(s.job_mut(id).unwrap().streams.pop_stdin().as_deref(), Some("42"));
    }

    #[test]
    fn node_failure_fails_running_jobs() {
        let mut s = sched(SchedPolicyKind::Fifo);
        let id = s.submit(JobSpec::parallel("u", "x", 16, 1000)).unwrap();
        s.tick();
        assert!(s.job(id).unwrap().state.is_running());
        let victim = s.cluster().slave_ids()[0];
        s.cluster_mut().set_health(victim, NodeHealth::Down).unwrap();
        s.tick();
        let JobState::Failed { ref reason, .. } = s.job(id).unwrap().state else {
            panic!("expected failure")
        };
        assert!(reason.contains("node"));
        // Cores on surviving nodes were released.
        assert_eq!(s.cluster().free_cores(), 12);
    }

    #[test]
    fn drain_reports_completion_tick() {
        let mut s = sched(SchedPolicyKind::Fifo);
        for i in 0..8 {
            s.submit(JobSpec::parallel("u", "x", 4, 5 + i % 3)).unwrap();
        }
        let done_at = s.drain(1000).expect("should drain");
        assert!(done_at >= 5, "{done_at}");
        assert!(s.jobs().all(|j| j.state.is_terminal()));
    }

    #[test]
    fn accounting_accumulates_core_ticks() {
        let mut s = sched(SchedPolicyKind::Fifo);
        s.submit(JobSpec::parallel("alice", "x", 4, 10)).unwrap();
        s.submit(JobSpec::sequential("bob", "y", 10)).unwrap();
        s.drain(100).unwrap();
        let alice = s.accounting().usage("alice").unwrap();
        assert_eq!(alice.core_ticks, 40);
        let bob = s.accounting().usage("bob").unwrap();
        assert_eq!(bob.core_ticks, 10);
    }

    #[test]
    fn round_robin_spreads_segments() {
        let mut s = sched(SchedPolicyKind::RoundRobinSegments);
        let a = s.submit(JobSpec::parallel("u", "a", 4, 100)).unwrap();
        let b = s.submit(JobSpec::parallel("u", "b", 4, 100)).unwrap();
        s.tick();
        let seg_of = |s: &Scheduler, id| {
            s.job(id).unwrap().allocation.as_ref().unwrap().cores.keys().next().unwrap().segment
        };
        assert_ne!(seg_of(&s, a), seg_of(&s, b), "jobs should land on different segments");
    }

    #[test]
    fn mean_wait_computed() {
        let mut s = sched(SchedPolicyKind::Fifo);
        s.submit(JobSpec::parallel("u", "a", 16, 10)).unwrap();
        s.submit(JobSpec::parallel("u", "b", 16, 10)).unwrap();
        s.drain(100).unwrap();
        // First job waits ~0, second waits ~10.
        let mw = s.mean_wait();
        assert!(mw > 3.0 && mw < 8.0, "mean wait {mw}");
    }
}
