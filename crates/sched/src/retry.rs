//! Retry policy: bounded attempts with deterministic exponential backoff.
//!
//! When a node dies under a running job the scheduler consults the
//! [`RetryPolicy`] to decide whether the job goes back into the queue
//! (after a backoff computed here) or terminates as lost. Backoff is
//! exponential in the attempt number with an optional jitter term drawn
//! from the scheduler's seeded [`JitterRng`], so whole recovery schedules
//! replay identically for a given seed — and, because the RNG state is
//! snapshot-able, identically across a crash/recovery boundary too.

use crate::rng::JitterRng;
use serde::{Deserialize, Serialize};

/// How (and how often) a job is retried after losing its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed, including the first run (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in ticks.
    pub base_backoff: u64,
    /// Upper bound on any single backoff, in ticks.
    pub max_backoff: u64,
    /// Maximum extra ticks of seeded jitter added to each backoff
    /// (0 disables jitter).
    pub jitter: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, backoff 2 → 4 → 8 ticks (capped at 64), ±2 jitter.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: 2,
            max_backoff: 64,
            jitter: 2,
        }
    }
}

impl RetryPolicy {
    /// No retries: the first node loss is fatal (the seed's old behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0,
            max_backoff: 0,
            jitter: 0,
        }
    }

    /// A fixed-backoff policy (no growth, no jitter).
    pub fn fixed(max_attempts: u32, backoff: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff: backoff,
            max_backoff: backoff,
            jitter: 0,
        }
    }

    /// May a job that has already used `attempts` attempts run again?
    pub fn can_retry(&self, attempts: u32) -> bool {
        attempts < self.max_attempts.max(1)
    }

    /// Backoff in ticks before retry number `attempt` (1 = first retry).
    /// Deterministic given the RNG state: exponential growth from
    /// [`RetryPolicy::base_backoff`], capped at [`RetryPolicy::max_backoff`],
    /// plus up to [`RetryPolicy::jitter`] extra ticks.
    pub fn backoff_ticks(&self, attempt: u32, rng: &mut JitterRng) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        let exp = self.base_backoff.saturating_mul(1u64 << shift);
        let capped = exp.min(self.max_backoff.max(self.base_backoff));
        if self.jitter == 0 {
            capped
        } else {
            capped + rng.gen_inclusive(self.jitter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: 2,
            max_backoff: 16,
            jitter: 0,
        };
        let mut rng = JitterRng::seed(0);
        assert_eq!(p.backoff_ticks(1, &mut rng), 2);
        assert_eq!(p.backoff_ticks(2, &mut rng), 4);
        assert_eq!(p.backoff_ticks(3, &mut rng), 8);
        assert_eq!(p.backoff_ticks(4, &mut rng), 16);
        assert_eq!(p.backoff_ticks(9, &mut rng), 16, "capped at max_backoff");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_backoff: 4,
            max_backoff: 64,
            jitter: 3,
        };
        let draws: Vec<u64> = (0..32)
            .map(|i| p.backoff_ticks(1, &mut JitterRng::seed(i)))
            .collect();
        assert!(draws.iter().all(|&b| (4..=7).contains(&b)), "{draws:?}");
        let again: Vec<u64> = (0..32)
            .map(|i| p.backoff_ticks(1, &mut JitterRng::seed(i)))
            .collect();
        assert_eq!(draws, again);
    }

    #[test]
    fn attempt_budget() {
        let p = RetryPolicy::none();
        assert!(p.can_retry(0));
        assert!(!p.can_retry(1));
        let p = RetryPolicy::fixed(3, 5);
        assert!(p.can_retry(2));
        assert!(!p.can_retry(3));
    }

    #[test]
    fn degenerate_policy_never_panics() {
        let p = RetryPolicy {
            max_attempts: 0,
            base_backoff: 0,
            max_backoff: 0,
            jitter: 0,
        };
        assert!(p.can_retry(0), "max_attempts is clamped to 1");
        assert!(!p.can_retry(1));
        let mut rng = JitterRng::seed(9);
        assert_eq!(p.backoff_ticks(40, &mut rng), 0);
    }
}
