//! Criterion-free entry point for the telemetry-overhead comparison:
//!
//! ```text
//! cargo run --release -p ccp-bench --example obs_overhead
//! ```
//!
//! Prints the telemetry-on-vs-off table to stderr and one
//! `BENCH_OBS_JSON {...}` line that `scripts/bench_smoke.sh` captures into
//! `BENCH_obs.json`.

fn main() {
    ccp_bench::banner("Observability overhead: 4-worker pool, telemetry on vs off");
    let row = ccp_bench::obs_overhead::measure(ccp_bench::obs_overhead::DEFAULT_REPS);
    let line = ccp_bench::obs_overhead::report(&row);
    eprintln!("{line}");
}
