//! Criterion-free entry point for the VM fast-path comparison:
//!
//! ```text
//! cargo run --release -p ccp-bench --example vm_fastpath
//! ```
//!
//! Prints the snapshot-vs-stateless table to stderr and one
//! `BENCH_VM_JSON {...}` line that `scripts/bench_smoke.sh` captures into
//! `BENCH_vm.json`.

fn main() {
    ccp_bench::banner("VM fast path: snapshot/prefix reuse vs stateless replay");
    let rows = ccp_bench::vm_fastpath::rows(3);
    let line = ccp_bench::vm_fastpath::report(&rows);
    eprintln!("{line}");
}
