//! Criterion-free entry point for the portal lock contention comparison:
//!
//! ```text
//! cargo run --release -p ccp-bench --example portal_lock
//! ```
//!
//! Runs the mixed heavy/light workload (a few students looping `POST
//! /api/analyze` while others poll jobs/whoami/dashboard) over real
//! sockets against the global-mutex baseline and the fine-grained lock
//! design, then prints the comparison table to stderr and one
//! `BENCH_PORTAL_LOCK_JSON {...}` line that `scripts/bench_smoke.sh`
//! captures into `BENCH_portal_lock.json` (and
//! `scripts/check_contention.sh` gates on).

fn main() {
    ccp_bench::banner("Portal lock: light reads vs heavy analyses, global mutex vs fine-grained");
    let report = ccp_bench::portal_lock::compare();
    let line = ccp_bench::portal_lock::report(&report);
    eprintln!("{line}");
}
