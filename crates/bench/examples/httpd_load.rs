//! Criterion-free entry point for the front-end load comparison:
//!
//! ```text
//! cargo run --release -p ccp-bench --example httpd_load
//! ```
//!
//! Replays the closed-loop semester workload (login, edit, compile,
//! submit, poll `/api/jobs`) against the reactor engine at class scale and
//! the thread-per-connection baseline, then prints the comparison table to
//! stderr and one `BENCH_HTTPD_JSON {...}` line that
//! `scripts/bench_smoke.sh` captures into `BENCH_httpd.json` (and
//! `scripts/check_httpd_load.sh` gates on).

fn main() {
    ccp_bench::banner("Portal front end: closed-loop semester load, reactor vs threads");
    let (reactor, threads) = ccp_bench::httpd_load::smoke_pair();
    let line = ccp_bench::httpd_load::report(&reactor, &threads);
    eprintln!("{line}");
}
