//! Criterion-free entry point for the partial-order-reduction comparison:
//!
//! ```text
//! cargo run --release -p ccp-bench --example dpor
//! ```
//!
//! Prints the DFS-vs-DPOR-vs-bounded table to stderr and one
//! `BENCH_DPOR_JSON {...}` line that `scripts/bench_smoke.sh` captures
//! into `BENCH_dpor.json` (and `scripts/check_dpor.sh` gates on).

fn main() {
    ccp_bench::banner("Partial-order reduction: sleep-set DFS vs DPOR vs preemption bound");
    let rows = ccp_bench::dpor::rows();
    let line = ccp_bench::dpor::report(&rows);
    eprintln!("{line}");
}
