//! Partial-order reduction measurement: the unreduced sleep-set DFS
//! against DPOR and DPOR with a preemption bound, on deep-DFS clean
//! archetypes both engines can exhaust.
//!
//! The differential suite (`tests/dpor_equivalence.rs`) proves the engines
//! agree on verdicts; this module measures what the reduction buys — how
//! many schedules each engine needs to exhaust the same tree, and whether
//! the bounded run still certifies `exhaustive_within_bound`. Used by the
//! `checker_parallel` bench and the `dpor` example (which
//! `scripts/bench_smoke.sh` and `scripts/check_dpor.sh` run to emit
//! `BENCH_dpor.json`).

use checker::{CheckConfig, Strategy};

/// The preemption bound the bounded column runs at: empirically every
/// seeded lab bug still surfaces at 2 preemptions, per the CHESS
/// small-bound hypothesis.
pub const BOUND: u32 = 2;

/// One archetype's DFS-vs-DPOR-vs-bounded comparison.
#[derive(Debug, Clone)]
pub struct DporRow {
    pub name: &'static str,
    /// Schedules the unreduced sleep-set DFS ran to exhaust the tree.
    pub schedules_dfs: u64,
    /// Schedules DPOR ran to exhaust the same tree.
    pub schedules_dpor: u64,
    /// Schedules the DFS phase ran under `preemption_bound: Some(BOUND)`
    /// (walk fill excluded — the bound makes the DFS phase incomplete by
    /// design, and the walk phase's size is the budget, not the search).
    pub schedules_bounded: u64,
    /// `schedules_dfs / schedules_dpor` — the reduction ratio.
    pub reduction: f64,
    /// Both engines exhausted the tree within the budget.
    pub both_complete: bool,
    /// The bounded run certified every <=BOUND-preemption schedule seen.
    pub bounded_exhaustive: bool,
    /// All three runs returned the same verdict.
    pub verdicts_agree: bool,
    /// Backtrack points DPOR inserted (unbounded run).
    pub backtracks: u64,
    /// Sibling branches DPOR never had to earn (unbounded run).
    pub pruned_siblings: u64,
}

/// Deep-DFS archetypes (see `checker::archetypes`): clean, so no failure
/// short-circuits either engine and the schedule counts measure tree size,
/// not luck; small enough that the unreduced DFS exhausts each within the
/// budget, so every ratio compares completed enumerations.
fn workloads() -> Vec<(&'static str, minilang::Program)> {
    [
        (
            "locked_counter_x2",
            checker::archetypes::mini_locked_counter().to_string(),
        ),
        (
            "locked_counter_x3",
            checker::archetypes::scaled_locked_counter(3),
        ),
        (
            "semaphore_pingpong_x2",
            checker::archetypes::mini_semaphore_pingpong().to_string(),
        ),
        (
            "semaphore_pingpong_x4",
            checker::archetypes::scaled_semaphore_pingpong(4),
        ),
    ]
    .into_iter()
    .map(|(name, src)| (name, minilang::compile(&src).expect("archetype compiles")))
    .collect()
}

/// Pure-DFS configuration with a budget big enough for the unreduced
/// engine to exhaust every workload tree (the deepest needs ~420
/// schedules), yet modest enough that the bounded run's walk fill stays
/// cheap.
pub fn reduction_cfg(dpor: bool, bound: Option<u32>) -> CheckConfig {
    CheckConfig {
        max_schedules: 4_096,
        max_steps: 1_000_000_000,
        minimize: false,
        seed: 42,
        strategy: Strategy::Dfs,
        dfs_depth: 10_000,
        dpor,
        preemption_bound: bound,
        ..CheckConfig::default()
    }
}

/// Run the three engines on every workload.
pub fn rows() -> Vec<DporRow> {
    workloads()
        .iter()
        .map(|(name, program)| {
            let (dfs, dfs_stats) = checker::check_with_stats(program, &reduction_cfg(false, None));
            let (dpor, dpor_stats) = checker::check_with_stats(program, &reduction_cfg(true, None));
            let (bounded, bounded_stats) =
                checker::check_with_stats(program, &reduction_cfg(true, Some(BOUND)));
            DporRow {
                name,
                schedules_dfs: dfs_stats.dfs_schedules,
                schedules_dpor: dpor_stats.dfs_schedules,
                schedules_bounded: bounded_stats.dfs_schedules,
                reduction: dfs_stats.dfs_schedules as f64 / dpor_stats.dfs_schedules.max(1) as f64,
                both_complete: dfs.complete && dpor.complete,
                bounded_exhaustive: bounded.exhaustive_within_bound,
                verdicts_agree: dfs.verdict == dpor.verdict && dfs.verdict == bounded.verdict,
                backtracks: dpor_stats.dpor_backtracks,
                pruned_siblings: dpor_stats.dpor_pruned_siblings,
            }
        })
        .collect()
}

/// Print the human table to stderr and return the machine-readable
/// `BENCH_DPOR_JSON ...` line.
pub fn report(rows: &[DporRow]) -> String {
    let mut min_reduction = f64::INFINITY;
    let mut all_sound = true;
    for r in rows {
        min_reduction = min_reduction.min(r.reduction);
        all_sound &= r.both_complete && r.bounded_exhaustive && r.verdicts_agree;
        eprintln!(
            "  {:<24} {:>6} DFS  {:>5} DPOR  {:>5} bound<={}  \
             ({:.1}x reduction, {} backtracks, {} pruned, complete={} exhaustive={})",
            r.name,
            r.schedules_dfs,
            r.schedules_dpor,
            r.schedules_bounded,
            BOUND,
            r.reduction,
            r.backtracks,
            r.pruned_siblings,
            r.both_complete,
            r.bounded_exhaustive,
        );
    }
    let per_arch = rows
        .iter()
        .map(|r| {
            format!(
                "\"{}\":{{\"schedules_dfs\":{},\"schedules_dpor\":{},\
                 \"schedules_bounded\":{},\"reduction\":{:.2},\
                 \"both_complete\":{},\"bounded_exhaustive\":{},\
                 \"backtracks\":{},\"pruned_siblings\":{}}}",
                r.name,
                r.schedules_dfs,
                r.schedules_dpor,
                r.schedules_bounded,
                r.reduction,
                r.both_complete,
                r.bounded_exhaustive,
                r.backtracks,
                r.pruned_siblings
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "BENCH_DPOR_JSON {{\"bench\":\"dpor\",\"preemption_bound\":{BOUND},\
         \"per_arch\":{{{per_arch}}},\"min_reduction\":{min_reduction:.2},\
         \"all_sound\":{all_sound}}}"
    )
}
