//! Portal lock contention: light read-mostly routes racing heavy analyses.
//!
//! The question this workload answers: when a few students hit "analyze"
//! (seconds of checker CPU each), does everyone else's dashboard still
//! load? Under the old global portal mutex the answer was no — every
//! `GET /api/jobs` queued behind whichever analysis held the lock. The
//! fine-grained design runs the heavy middle of compile/run/analyze with
//! no portal lock held, so light requests only contend for a read guard.
//!
//! Both designs are measured back to back over real sockets on the
//! reactor engine: [`LockMode::Global`] reproduces the old
//! one-big-mutex behaviour (every access takes the write guard),
//! [`LockMode::Fine`] is the shipped design. The summary feeds one
//! `BENCH_PORTAL_LOCK_JSON {...}` line that `scripts/bench_smoke.sh`
//! extracts into `BENCH_portal_lock.json` and gates on: light-route p99
//! must improve at least 5x, with zero error responses in either run.

use crate::httpd_load::{parse_response, request_bytes};
use ccp_core::{Portal, PortalConfig};
use cluster::ClusterSpec;
use httpd::json::Json;
use httpd::{Engine, Method, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webportal::app::{dispatch, serve_with_config};
use webportal::{build_router, App, LockMode};

/// Threads looping heavy `POST /api/analyze` calls.
const HEAVY_CLIENTS: usize = 3;
/// Threads looping light reads (jobs / whoami / dashboard).
const LIGHT_CLIENTS: usize = 4;
/// Reactor pool: enough workers that the heavy requests cannot starve the
/// light ones of threads — any queueing we measure is lock queueing.
const WORKERS: usize = HEAVY_CLIENTS + LIGHT_CLIENTS + 2;
/// Wall-clock per mode. Long enough that dozens of analyses complete;
/// short enough for a smoke run.
const RUN_FOR: Duration = Duration::from_secs(4);
/// Schedule budget per analysis: a few hundred milliseconds of checker
/// CPU, so each heavy request holds (or in fine mode, *doesn't* hold)
/// the portal for a human-noticeable span.
const ANALYZE_BUDGET: u64 = 192;

/// A deadlock-free program whose schedule tree comfortably exceeds the
/// analyze budget, so every analysis burns its full budget of checker CPU.
fn program() -> String {
    labs::lab6_philosophers::ordered_source(2)
}

/// One lock mode's measurements.
#[derive(Debug, Clone)]
pub struct ModeSummary {
    pub mode: &'static str,
    /// Light requests completed (jobs + whoami + dashboard).
    pub light_requests: u64,
    pub light_p50_ms: f64,
    pub light_p99_ms: f64,
    /// Heavy analyses completed within the window.
    pub heavy_ops: u64,
    /// Non-2xx responses across both request classes.
    pub errors: u64,
    /// `ccp_lock_wait_us{site="portal.lock"}` p99 from the portal's own
    /// registry (upper bucket edge, µs) and the number of waits recorded.
    pub lock_wait_p99_us: f64,
    pub lock_waits: u64,
}

/// The pair the smoke gate compares.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    pub global: ModeSummary,
    pub fine: ModeSummary,
}

impl ContentionReport {
    /// Light-route p99 improvement: global-mutex latency over fine-grained.
    pub fn light_p99_improvement(&self) -> f64 {
        self.global.light_p99_ms / self.fine.light_p99_ms.max(1e-6)
    }

    pub fn errors(&self) -> u64 {
        self.global.errors + self.fine.errors
    }
}

/// One blocking keep-alive HTTP exchange; returns `(status, body)`.
fn exchange(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    stream.write_all(&request_bytes(method, path, token, body))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some((status, body, consumed)) = parse_response(&buf) {
            debug_assert_eq!(consumed, buf.len());
            return Ok((status, body));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Portal with one student who has already compiled [`program`]; returns
/// the app, the student's token and the artifact id.
fn boot(mode: LockMode) -> (Arc<App>, String, String) {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "grader-pass99").unwrap();
    let app = App::with_mode(portal, mode);
    let router = build_router(Arc::clone(&app));
    let post = |path: &str, body: &[u8], tok: Option<&str>| {
        let resp = dispatch(&router, Method::Post, path, body, tok);
        assert!(
            (200..300).contains(&resp.status.0),
            "{path}: {}",
            resp.body_str()
        );
        Json::parse(resp.body_str()).unwrap_or(Json::Null)
    };
    let admin = post(
        "/api/login",
        br#"{"user":"admin","password":"grader-pass99"}"#,
        None,
    )
    .get("token")
    .unwrap()
    .as_str()
    .unwrap()
    .to_string();
    post(
        "/api/admin/users",
        br#"{"name":"lock","password":"contend-pass1","role":"student"}"#,
        Some(&admin),
    );
    let token = post(
        "/api/login",
        br#"{"user":"lock","password":"contend-pass1"}"#,
        None,
    )
    .get("token")
    .unwrap()
    .as_str()
    .unwrap()
    .to_string();
    post(
        "/api/file?path=contend.mini",
        program().as_bytes(),
        Some(&token),
    );
    let artifact = post("/api/compile?path=contend.mini", b"", Some(&token))
        .get("artifact")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    (app, token, artifact)
}

/// Run the mixed workload against one lock mode.
pub fn run_mode(mode: LockMode) -> ModeSummary {
    let (app, token, artifact) = boot(mode);
    let handle = serve_with_config(
        Arc::clone(&app),
        "127.0.0.1:0",
        ServerConfig {
            engine: Engine::Reactor,
            workers: WORKERS,
            max_inflight: 4096,
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("spawn contention server");
    let addr: SocketAddr = handle.addr();

    let stop = AtomicBool::new(false);
    let heavy_ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mut light_lats: Vec<Vec<f64>> = Vec::new();

    std::thread::scope(|s| {
        for _ in 0..HEAVY_CLIENTS {
            let (stop, heavy_ops, errors, token, artifact) =
                (&stop, &heavy_ops, &errors, &token, &artifact);
            s.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("heavy connect");
                stream.set_nodelay(true).unwrap();
                let path = format!("/api/analyze?artifact={artifact}&budget={ANALYZE_BUDGET}");
                while !stop.load(Ordering::Relaxed) {
                    match exchange(&mut stream, "POST", &path, Some(token), b"") {
                        Ok((status, _)) if (200..300).contains(&status) => {
                            heavy_ops.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            let Ok(fresh) = TcpStream::connect(addr) else {
                                return;
                            };
                            stream = fresh;
                        }
                    }
                }
            });
        }
        let light_handles: Vec<_> = (0..LIGHT_CLIENTS)
            .map(|_| {
                let (stop, errors, token) = (&stop, &errors, &token);
                s.spawn(move || {
                    let mut lats = Vec::new();
                    let mut stream = TcpStream::connect(addr).expect("light connect");
                    stream.set_nodelay(true).unwrap();
                    let routes = ["/api/jobs", "/api/whoami", "/api/dashboard"];
                    let mut i = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let route = routes[i % routes.len()];
                        i += 1;
                        let sent = Instant::now();
                        match exchange(&mut stream, "GET", route, Some(token), b"") {
                            Ok((status, _)) if (200..300).contains(&status) => {
                                lats.push(sent.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                let Ok(fresh) = TcpStream::connect(addr) else {
                                    return lats;
                                };
                                stream = fresh;
                            }
                        }
                    }
                    lats
                })
            })
            .collect();

        std::thread::sleep(RUN_FOR);
        stop.store(true, Ordering::Relaxed);
        for h in light_handles {
            light_lats.push(h.join().expect("light client"));
        }
    });
    handle.shutdown();

    let mut lats: Vec<f64> = light_lats.into_iter().flatten().collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        if lats.is_empty() {
            return 0.0;
        }
        let i = (p * (lats.len() - 1) as f64).round() as usize;
        lats[i.min(lats.len() - 1)]
    };
    let lock_hist = app.obs().metrics.histogram(
        "ccp_lock_wait_us",
        &[("site", "portal.lock")],
        obs::DURATION_US_BOUNDS,
    );
    ModeSummary {
        mode: match mode {
            LockMode::Fine => "fine",
            LockMode::Global => "global",
        },
        light_requests: lats.len() as u64,
        light_p50_ms: pct(0.50),
        light_p99_ms: pct(0.99),
        heavy_ops: heavy_ops.into_inner(),
        errors: errors.into_inner(),
        lock_wait_p99_us: lock_hist.quantile(0.99).unwrap_or(0.0),
        lock_waits: lock_hist.count(),
    }
}

/// Both modes, global-mutex baseline first.
pub fn compare() -> ContentionReport {
    ContentionReport {
        global: run_mode(LockMode::Global),
        fine: run_mode(LockMode::Fine),
    }
}

fn summary_json(s: &ModeSummary) -> String {
    format!(
        "{{\"mode\":\"{}\",\"light_requests\":{},\"light_p50_ms\":{:.2},\
         \"light_p99_ms\":{:.2},\"heavy_ops\":{},\"errors\":{},\
         \"lock_wait_p99_us\":{:.0},\"lock_waits\":{}}}",
        s.mode,
        s.light_requests,
        s.light_p50_ms,
        s.light_p99_ms,
        s.heavy_ops,
        s.errors,
        s.lock_wait_p99_us,
        s.lock_waits
    )
}

/// Print the human table to stderr and return the machine-readable
/// `BENCH_PORTAL_LOCK_JSON ...` line.
pub fn report(r: &ContentionReport) -> String {
    for s in [&r.global, &r.fine] {
        eprintln!(
            "  {:<6} lock: {:>5} light reqs p50 {:>8.2}ms p99 {:>8.2}ms | \
             {:>3} analyses | {} errors | portal.lock p99 <= {:.0}us over {} waits",
            s.mode,
            s.light_requests,
            s.light_p50_ms,
            s.light_p99_ms,
            s.heavy_ops,
            s.errors,
            s.lock_wait_p99_us,
            s.lock_waits
        );
    }
    let improvement = r.light_p99_improvement();
    eprintln!(
        "  light-route p99: {:.2}ms (global) -> {:.2}ms (fine), {improvement:.1}x better",
        r.global.light_p99_ms, r.fine.light_p99_ms
    );
    format!(
        "BENCH_PORTAL_LOCK_JSON {{\"bench\":\"portal_lock\",\"heavy_clients\":{HEAVY_CLIENTS},\
         \"light_clients\":{LIGHT_CLIENTS},\"global\":{},\"fine\":{},\
         \"light_p99_improvement\":{improvement:.2},\"errors\":{}}}",
        summary_json(&r.global),
        summary_json(&r.fine),
        r.errors(),
    )
}
