//! VM fast-path measurement: the snapshot/prefix-reuse DFS engine against
//! the stateless reference explorer, on deep-DFS lab archetypes.
//!
//! Both engines produce bit-identical `CheckReport`s (the determinism
//! suite asserts it); this module measures what the snapshot engine buys —
//! schedules/sec, VM steps/sec, and the fraction of stateless replay work
//! the restores eliminated. Used by the `checker_parallel` bench and the
//! `vm_fastpath` example (which `scripts/bench_smoke.sh` runs to emit
//! `BENCH_vm.json`).

use checker::{CheckConfig, CheckStats, Strategy};
use std::hint::black_box;
use std::time::Instant;

/// One archetype's snapshot-vs-stateless comparison.
#[derive(Debug, Clone)]
pub struct VmFastpathRow {
    pub name: &'static str,
    /// Schedules/sec with snapshot/prefix reuse (the default engine).
    pub sps_snapshot: f64,
    /// Schedules/sec with the stateless reference explorer (the pre-PR
    /// baseline, kept in-tree behind `snapshot_prefix: false`).
    pub sps_stateless: f64,
    /// Executed VM steps/sec on the snapshot engine.
    pub steps_per_sec: f64,
    /// `sps_snapshot / sps_stateless`.
    pub speedup: f64,
    /// Fraction of the work a stateless run performs that the snapshot
    /// engine skipped: `saved / (saved + executed)`. This is the snapshot
    /// hit ratio — how much of the tree was prefix the restores replaced.
    pub saved_ratio: f64,
    /// VM steps the snapshot engine executed per check.
    pub executed_steps: u64,
    /// Prefix replay steps the restores eliminated per check. The
    /// invariant `executed + saved == stateless executed` holds exactly —
    /// snapshotting removes work, never reorders it.
    pub saved_steps: u64,
}

/// Deep-DFS grading archetypes: clean (no failure short-circuits the
/// search) so both engines consume the full schedule budget, and branchy
/// enough that prefix replay dominates the stateless engine's time.
fn workloads() -> Vec<(&'static str, minilang::Program)> {
    [
        (
            "philosophers_ordered",
            labs::lab6_philosophers::ordered_source(4),
        ),
        (
            "bank_locked",
            labs::lab5_bank::source(labs::lab5_bank::BankStep::ConcurrentLocked),
        ),
        (
            "boundedbuffer_semaphore",
            labs::lab7_boundedbuffer::semaphore_source(),
        ),
    ]
    .into_iter()
    .map(|(name, src)| (name, minilang::compile(&src).expect("lab source compiles")))
    .collect()
}

/// Pure-DFS configuration so every schedule exercises the branching
/// explorer (Hybrid would hand DFS only a quarter of the budget and fill
/// the rest with walks, which snapshotting does not accelerate).
pub fn deep_dfs_cfg(snapshot: bool) -> CheckConfig {
    CheckConfig {
        max_schedules: 192,
        max_steps: 100_000_000,
        minimize: false,
        seed: 42,
        strategy: Strategy::Dfs,
        // Deep enumeration: branch all the way down instead of handing the
        // tail to the round-robin finisher at depth 50. The deeper the
        // branch path, the more prefix a stateless engine re-executes per
        // schedule — exactly the regime snapshotting targets.
        dfs_depth: 2_000,
        snapshot_prefix: snapshot,
        // This comparison is about prefix reuse, not reduction: DPOR forces
        // the snapshot engine and prunes the tree, which would collapse
        // both sides onto the same engine. `dpor.rs` measures reduction.
        dpor: false,
        ..CheckConfig::default()
    }
}

fn measure(program: &minilang::Program, snapshot: bool, reps: u32) -> (f64, f64, CheckStats) {
    let cfg = deep_dfs_cfg(snapshot);
    let (warm, stats) = checker::check_with_stats(program, &cfg);
    let start = Instant::now();
    for _ in 0..reps {
        black_box(checker::check_with_stats(program, &cfg));
    }
    let secs = start.elapsed().as_secs_f64();
    let reps = f64::from(reps);
    (
        (warm.schedules as f64) * reps / secs,
        (stats.vm_steps as f64) * reps / secs,
        stats,
    )
}

/// Run the comparison on every workload. `reps` timed repetitions per
/// engine per archetype (plus one warm-up run that also provides stats).
pub fn rows(reps: u32) -> Vec<VmFastpathRow> {
    workloads()
        .iter()
        .map(|(name, program)| {
            let (sps_snapshot, steps_per_sec, stats) = measure(program, true, reps);
            let (sps_stateless, _, _) = measure(program, false, reps);
            let saved = stats.replay_steps_saved as f64;
            VmFastpathRow {
                name,
                sps_snapshot,
                sps_stateless,
                steps_per_sec,
                speedup: sps_snapshot / sps_stateless,
                saved_ratio: saved / (saved + stats.vm_steps as f64),
                executed_steps: stats.vm_steps,
                saved_steps: stats.replay_steps_saved,
            }
        })
        .collect()
}

/// Print the human table to stderr and return the machine-readable
/// `BENCH_VM_JSON ...` line (the caller prints it so each entry point
/// controls its own stream).
pub fn report(rows: &[VmFastpathRow]) -> String {
    let mut min_speedup = f64::INFINITY;
    for r in rows {
        min_speedup = min_speedup.min(r.speedup);
        eprintln!(
            "  {:<24} {:>8.0} sched/s snapshot  {:>8.0} stateless  \
             (speedup {:.2}x, {:>10.0} steps/s, {:.1}% replay saved)",
            r.name,
            r.sps_snapshot,
            r.sps_stateless,
            r.speedup,
            r.steps_per_sec,
            r.saved_ratio * 100.0
        );
    }
    let per_arch = rows
        .iter()
        .map(|r| {
            format!(
                "\"{}\":{{\"schedules_per_sec_snapshot\":{:.1},\
                 \"schedules_per_sec_stateless\":{:.1},\"steps_per_sec\":{:.0},\
                 \"speedup\":{:.2},\"snapshot_hit_ratio\":{:.3},\
                 \"executed_steps\":{},\"replay_steps_saved\":{}}}",
                r.name,
                r.sps_snapshot,
                r.sps_stateless,
                r.steps_per_sec,
                r.speedup,
                r.saved_ratio,
                r.executed_steps,
                r.saved_steps
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "BENCH_VM_JSON {{\"bench\":\"vm_fastpath\",\"per_arch\":{{{per_arch}}},\
         \"min_speedup\":{min_speedup:.2}}}"
    )
}
