//! Closed-loop load generator for the portal front end: a whole-semester
//! workload (login, edit, compile, submit, poll `/api/jobs`) replayed over
//! hundreds of concurrent keep-alive connections against a real socket.
//!
//! The client side is a single thread driving nonblocking sockets off the
//! same `httpd::sys::Epoll` readiness layer the server's reactor uses, so
//! one generator sustains far more connections than it has threads — the
//! point being measured. Two runs are compared:
//!
//! * the **reactor** engine holding a few hundred concurrent sessions on a
//!   fixed worker pool, and
//! * the **thread-per-connection** engine, where every open session costs
//!   a 2 MiB-stack OS thread.
//!
//! [`report`] folds both into one `BENCH_HTTPD_JSON {...}` line with the
//! equal-memory capacity ratio `scripts/bench_smoke.sh` gates on: memory a
//! thread engine would need for the sustained concurrency divided by what
//! the reactor actually used (worker stacks + per-connection buffers).

use ccp_core::{Portal, PortalConfig};
use cluster::ClusterSpec;
use httpd::json::Json;
use httpd::sys::{self, Epoll, Interest};
use httpd::{Engine, Method, ServerConfig, ServerHandle};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webportal::app::{dispatch, serve_with_config};
use webportal::{build_router, App};

/// Default stack reservation per OS thread — what each connection costs
/// the thread engine and each pool worker costs the reactor.
pub const THREAD_STACK_BYTES: u64 = 2 * 1024 * 1024;
/// Reactor cost per parked connection: a 16 KiB read buffer, a 16 KiB
/// retained write buffer, and slack for the slab/wheel/epoll bookkeeping.
pub const REACTOR_CONN_BYTES: u64 = 48 * 1024;

/// The program every connection "writes" in its editor and compiles —
/// identical source across the class, so the compile cache sees the
/// resubmission pattern the toolchain was built for.
const PROGRAM: &str = "fn main() { println(\"semester\"); }";

const STUDENT: &str = "load";
const PASSWORD: &str = "semester-pass1";
/// Overall wall-clock budget for one engine's run.
const RUN_DEADLINE: Duration = Duration::from_secs(120);

/// One engine's run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    pub engine: Engine,
    /// Concurrent keep-alive connections (each is one "browser session").
    pub connections: usize,
    /// Requests each connection issues over its lifetime.
    pub requests_per_conn: usize,
    /// Server worker threads (reactor engine; ignored by the thread one).
    pub workers: usize,
    /// Server connection budget; kept above `connections` so the run
    /// measures capacity, not the shedding path.
    pub max_inflight: usize,
}

impl LoadConfig {
    /// The reactor-engine smoke run: hundreds of sessions on 4 workers.
    pub fn reactor_default() -> LoadConfig {
        LoadConfig {
            engine: Engine::Reactor,
            connections: 192,
            requests_per_conn: 12,
            workers: 4,
            max_inflight: 4096,
        }
    }

    /// The thread-engine baseline: same script, fewer sessions — every
    /// one of these is a dedicated OS thread on the server.
    pub fn threads_default() -> LoadConfig {
        LoadConfig {
            engine: Engine::Threads,
            connections: 24,
            requests_per_conn: 12,
            workers: 0,
            max_inflight: 4096,
        }
    }
}

/// What one engine's run measured.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    pub engine: &'static str,
    pub connections: usize,
    /// Connections that completed their whole script on a single socket
    /// (no reconnect) — the concurrency actually sustained.
    pub sustained: usize,
    /// Peak of the server's open-connections gauge during the run.
    pub peak_open: usize,
    pub requests: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub reconnects: u64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// OS threads serving: pool workers (reactor) or peak connections
    /// (thread engine, one thread each).
    pub server_threads: usize,
    pub elapsed_ms: u64,
}

/// Build a request on the wire. Every request opts into keep-alive —
/// connection reuse is the behaviour under test. (Shared with the
/// `portal_lock` contention workload.)
pub(crate) fn request_bytes(method: &str, path: &str, token: Option<&str>, body: &[u8]) -> Vec<u8> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: portal\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\n",
        body.len()
    );
    if let Some(t) = token {
        head.push_str(&format!("Cookie: sid={t}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Parse one complete response out of `buf`: `(status, body, consumed)`.
/// `None` until the head and the declared body have both arrived.
pub(crate) fn parse_response(buf: &[u8]) -> Option<(u16, String, usize)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let status: u16 = head.get(9..12)?.parse().ok()?;
    let mut len = 0usize;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                len = v.trim().parse().ok()?;
            }
        }
    }
    let total = head_end + 4 + len;
    if buf.len() < total {
        return None;
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
    Some((status, body, total))
}

/// One simulated browser session working through the semester script.
struct Client {
    idx: usize,
    stream: TcpStream,
    token: Option<String>,
    artifact: Option<String>,
    job: Option<u64>,
    /// A handful of sessions per class actually submit batch jobs; the
    /// rest browse, edit and poll (the realistic mix, and it keeps the
    /// 4-core simulated cluster from drowning in queued jobs).
    submitter: bool,
    step: usize,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    sent_at: Instant,
    done: bool,
    reconnected: bool,
}

/// What the driver must do next for a client after pumping it.
enum Need {
    Write,
    Read,
    Done,
    /// The server closed (or shed) this socket mid-script: dial again and
    /// retry the current step.
    Reconnect,
}

impl Client {
    fn connect(idx: usize, addr: SocketAddr, nonblocking: bool) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(nonblocking)?;
        Ok(Client {
            idx,
            stream,
            token: None,
            artifact: None,
            job: None,
            submitter: idx.is_multiple_of(32),
            step: 0,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            sent_at: Instant::now(),
            done: false,
            reconnected: false,
        })
    }

    /// The semester script, one request per step: login, edit, compile,
    /// then (submitters) submit + pump the distributor, and poll the job
    /// list / stdout tail for the rest of the session.
    fn build_request(&self, total: usize) -> Option<Vec<u8>> {
        if self.step >= total {
            return None;
        }
        let tok = self.token.as_deref();
        Some(match self.step {
            0 => request_bytes(
                "POST",
                "/api/login",
                None,
                format!(r#"{{"user":"{STUDENT}","password":"{PASSWORD}"}}"#).as_bytes(),
            ),
            1 => request_bytes(
                "POST",
                &format!("/api/file?path=sem{}.mini", self.idx),
                tok,
                PROGRAM.as_bytes(),
            ),
            2 => request_bytes(
                "POST",
                &format!("/api/compile?path=sem{}.mini", self.idx),
                tok,
                b"",
            ),
            3 if self.submitter && self.artifact.is_some() => {
                let body = format!(
                    r#"{{"artifact":"{}","cores":1,"estimated_ticks":2}}"#,
                    self.artifact.as_deref().unwrap()
                );
                request_bytes("POST", "/api/jobs", tok, body.as_bytes())
            }
            4 if self.submitter => request_bytes("POST", "/api/tick", tok, b""),
            n if n % 2 == 1 => request_bytes("GET", "/api/jobs", tok, b""),
            _ => match self.job {
                Some(id) => {
                    request_bytes("GET", &format!("/api/jobs/{id}/stdout?from=0"), tok, b"")
                }
                None => request_bytes("GET", "/api/health", tok, b""),
            },
        })
    }

    /// Queue the current step's request for sending.
    fn start_step(&mut self, total: usize) -> bool {
        match self.build_request(total) {
            Some(req) => {
                self.out = req;
                self.out_pos = 0;
                self.inbuf.clear();
                self.sent_at = Instant::now();
                true
            }
            None => {
                self.done = true;
                false
            }
        }
    }

    /// Capture what later steps need out of a successful response body.
    fn absorb(&mut self, body: &str) {
        let json = Json::parse(body).unwrap_or(Json::Null);
        match self.step {
            0 => {
                self.token = json.get("token").and_then(Json::as_str).map(str::to_string);
            }
            2 => {
                self.artifact = json
                    .get("artifact")
                    .and_then(Json::as_str)
                    .map(str::to_string);
            }
            3 if self.submitter => {
                self.job = json.get("job").and_then(Json::as_num).map(|n| n as u64);
            }
            _ => {}
        }
    }
}

/// Outcome counters for one run.
#[derive(Default)]
struct Tally {
    ok: u64,
    shed: u64,
    errors: u64,
    reconnects: u64,
    peak_open: usize,
    first_error: Option<String>,
}

impl Tally {
    /// Classify a completed response. Returns `true` when the step is
    /// finished (advance), `false` when it must be retried (shed).
    fn classify(&mut self, status: u16, body: &str) -> bool {
        if status == 503 {
            self.shed += 1;
            return false;
        }
        if (200..300).contains(&status) {
            self.ok += 1;
        } else {
            self.errors += 1;
            if self.first_error.is_none() {
                self.first_error = Some(format!("{status}: {body}"));
            }
        }
        true
    }
}

/// Pump one nonblocking client as far as it will go without blocking.
fn advance(c: &mut Client, total: usize, lats: &mut Vec<f64>, tally: &mut Tally) -> Need {
    loop {
        if c.out_pos < c.out.len() {
            match c.stream.write(&c.out[c.out_pos..]) {
                Ok(0) => return Need::Reconnect,
                Ok(n) => {
                    c.out_pos += n;
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Need::Write,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Need::Reconnect,
            }
        }
        if c.done {
            return Need::Done;
        }
        let mut chunk = [0u8; 16 * 1024];
        match c.stream.read(&mut chunk) {
            Ok(0) => return Need::Reconnect,
            Ok(n) => {
                c.inbuf.extend_from_slice(&chunk[..n]);
                let Some((status, body, consumed)) = parse_response(&c.inbuf) else {
                    continue;
                };
                c.inbuf.drain(..consumed);
                lats.push(c.sent_at.elapsed().as_secs_f64() * 1e3);
                if !tally.classify(status, &body) {
                    return Need::Reconnect; // shed: server half-closed
                }
                c.absorb(&body);
                c.step += 1;
                if !c.start_step(total) {
                    return Need::Done;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Need::Read,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Need::Reconnect,
        }
    }
}

/// The epoll driver: every configured connection concurrently, one thread.
fn drive_epoll(
    cfg: &LoadConfig,
    addr: SocketAddr,
    handle: &ServerHandle,
    lats: &mut Vec<f64>,
) -> (Tally, usize) {
    use std::os::fd::AsRawFd;

    let total = cfg.requests_per_conn;
    let ep = Epoll::new().expect("epoll available when sys::SUPPORTED");
    let mut tally = Tally::default();
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(cfg.connections);
    for i in 0..cfg.connections {
        let mut c = Client::connect(i, addr, true).expect("connect load client");
        ep.register(c.stream.as_raw_fd(), i as u64)
            .expect("register load client");
        c.start_step(total);
        clients.push(Some(c));
    }
    let mut live = cfg.connections;
    // First pump: freshly connected sockets are writable, so most clients
    // get their login on the wire before the first epoll wait.
    for slot in &mut clients {
        pump_one(&ep, slot, total, lats, &mut tally, &mut live, addr);
    }

    let deadline = Instant::now() + RUN_DEADLINE;
    let mut events = Vec::new();
    while live > 0 && Instant::now() < deadline {
        ep.wait(&mut events, 50).expect("epoll wait");
        tally.peak_open = tally.peak_open.max(handle.open_connections());
        let tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
        for t in tokens {
            let i = t as usize;
            if i < clients.len() {
                pump_one(
                    &ep,
                    &mut clients[i],
                    total,
                    lats,
                    &mut tally,
                    &mut live,
                    addr,
                );
            }
        }
    }
    // Anything still unfinished at the deadline is an error, once each.
    tally.errors += live as u64;

    let sustained = clients
        .iter()
        .flatten()
        .filter(|c| c.done && !c.reconnected)
        .count();
    (tally, sustained)
}

/// Pump one client slot, rearming or reconnecting per its verdict.
#[allow(clippy::too_many_arguments)]
fn pump_one(
    ep: &Epoll,
    slot: &mut Option<Client>,
    total: usize,
    lats: &mut Vec<f64>,
    tally: &mut Tally,
    live: &mut usize,
    addr: SocketAddr,
) {
    use std::os::fd::AsRawFd;

    loop {
        let Some(c) = slot.as_mut() else { return };
        if c.done {
            return;
        }
        match advance(c, total, lats, tally) {
            Need::Write => {
                let _ = ep.rearm(c.stream.as_raw_fd(), Interest::Write, c.idx as u64);
                return;
            }
            Need::Read => {
                let _ = ep.rearm(c.stream.as_raw_fd(), Interest::Read, c.idx as u64);
                return;
            }
            Need::Done => {
                // Leave the socket open: the session lingers (as browsers
                // do) so the run's peak concurrency includes it.
                *live -= 1;
                return;
            }
            Need::Reconnect => {
                let _ = ep.deregister(c.stream.as_raw_fd());
                let idx = c.idx;
                let (token, artifact, job, step, submitter) = (
                    c.token.clone(),
                    c.artifact.clone(),
                    c.job,
                    c.step,
                    c.submitter,
                );
                match Client::connect(idx, addr, true) {
                    Ok(mut fresh) => {
                        fresh.token = token;
                        fresh.artifact = artifact;
                        fresh.job = job;
                        fresh.step = step;
                        fresh.submitter = submitter;
                        fresh.reconnected = true;
                        tally.reconnects += 1;
                        if ep.register(fresh.stream.as_raw_fd(), idx as u64).is_err() {
                            tally.errors += 1;
                            *live -= 1;
                            *slot = None;
                            return;
                        }
                        fresh.start_step(total);
                        *slot = Some(fresh);
                        // Loop: pump the fresh socket immediately.
                    }
                    Err(_) => {
                        tally.errors += 1;
                        *live -= 1;
                        *slot = None;
                        return;
                    }
                }
            }
        }
    }
}

/// Portable fallback when the platform has no epoll: the same script run
/// one connection at a time over blocking sockets. Measures correctness,
/// not concurrency — callers mark the run unsupported.
fn drive_blocking(
    cfg: &LoadConfig,
    addr: SocketAddr,
    handle: &ServerHandle,
    lats: &mut Vec<f64>,
) -> (Tally, usize) {
    let total = cfg.requests_per_conn;
    let mut tally = Tally::default();
    let mut sustained = 0usize;
    for i in 0..cfg.connections {
        let Ok(mut c) = Client::connect(i, addr, false) else {
            tally.errors += 1;
            continue;
        };
        c.start_step(total);
        while !c.done {
            match advance(&mut c, total, lats, &mut tally) {
                Need::Done => break,
                Need::Reconnect => {
                    let step = c.step;
                    let Ok(mut fresh) = Client::connect(i, addr, false) else {
                        tally.errors += 1;
                        break;
                    };
                    fresh.token = c.token.clone();
                    fresh.artifact = c.artifact.clone();
                    fresh.job = c.job;
                    fresh.step = step;
                    fresh.reconnected = true;
                    tally.reconnects += 1;
                    fresh.start_step(total);
                    c = fresh;
                }
                // Blocking sockets never report WouldBlock.
                Need::Write | Need::Read => unreachable!("blocking socket signalled readiness"),
            }
        }
        if c.done && !c.reconnected {
            sustained += 1;
        }
        tally.peak_open = tally.peak_open.max(handle.open_connections());
    }
    (tally, sustained)
}

/// In-process setup: a portal with one admin, one shared student account,
/// served over the configured engine on an ephemeral port.
fn boot_portal(cfg: &LoadConfig) -> (Arc<App>, ServerHandle) {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 2),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "grader-pass99").unwrap();
    let app = App::new(portal);
    let router = build_router(Arc::clone(&app));
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"grader-pass99"}"#,
        None,
    );
    let admin = Json::parse(resp.body_str())
        .unwrap()
        .get("token")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let body = format!(r#"{{"name":"{STUDENT}","password":"{PASSWORD}","role":"student"}}"#);
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/users",
        body.as_bytes(),
        Some(&admin),
    );
    assert_eq!(
        resp.status,
        httpd::Status::CREATED,
        "student creation: {}",
        resp.body_str()
    );

    let handle = serve_with_config(
        Arc::clone(&app),
        "127.0.0.1:0",
        ServerConfig {
            engine: cfg.engine,
            workers: cfg.workers,
            max_inflight: cfg.max_inflight,
            // Under closed-loop load on few cores a session can sit a
            // while between its turns; the run deadline is the real cap.
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("spawn load-test server");
    (app, handle)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[i.min(sorted.len() - 1)]
}

/// Run the semester workload against one engine and summarise it.
pub fn run(cfg: &LoadConfig) -> LoadSummary {
    let (_app, handle) = boot_portal(cfg);
    let addr = handle.addr();
    let start = Instant::now();
    let mut lats = Vec::with_capacity(cfg.connections * cfg.requests_per_conn);
    let (tally, sustained) = if sys::SUPPORTED {
        drive_epoll(cfg, addr, &handle, &mut lats)
    } else {
        drive_blocking(cfg, addr, &handle, &mut lats)
    };
    let elapsed_ms = start.elapsed().as_millis() as u64;
    if let Some(err) = &tally.first_error {
        eprintln!("  first error response: {err}");
    }
    handle.shutdown();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (engine, server_threads) = match cfg.engine {
        Engine::Threads => ("threads", tally.peak_open.max(1)),
        _ => ("reactor", cfg.workers.max(1)),
    };
    LoadSummary {
        engine,
        connections: cfg.connections,
        sustained,
        peak_open: tally.peak_open,
        requests: lats.len() as u64,
        ok: tally.ok,
        shed: tally.shed,
        errors: tally.errors,
        reconnects: tally.reconnects,
        p50_ms: percentile(&lats, 0.50),
        p99_ms: percentile(&lats, 0.99),
        server_threads,
        elapsed_ms,
    }
}

/// The smoke pair `checker_parallel` and the `httpd_load` example run:
/// reactor at class scale, threads at thread-per-connection scale.
pub fn smoke_pair() -> (LoadSummary, LoadSummary) {
    let reactor = run(&LoadConfig::reactor_default());
    let threads = run(&LoadConfig::threads_default());
    (reactor, threads)
}

fn summary_json(s: &LoadSummary) -> String {
    format!(
        "{{\"engine\":\"{}\",\"connections\":{},\"sustained\":{},\"peak_open\":{},\
         \"requests\":{},\"ok\":{},\"shed\":{},\"errors\":{},\"reconnects\":{},\
         \"p50_ms\":{:.2},\"p99_ms\":{:.2},\"server_threads\":{},\"elapsed_ms\":{}}}",
        s.engine,
        s.connections,
        s.sustained,
        s.peak_open,
        s.requests,
        s.ok,
        s.shed,
        s.errors,
        s.reconnects,
        s.p50_ms,
        s.p99_ms,
        s.server_threads,
        s.elapsed_ms
    )
}

/// The equal-memory capacity ratio: bytes a thread-per-connection front
/// end needs to hold the reactor's sustained concurrency (a 2 MiB stack
/// per session) over the bytes the reactor actually used (worker stacks
/// plus per-connection buffers).
pub fn capacity_ratio(reactor: &LoadSummary) -> f64 {
    let reactor_mem = reactor.server_threads as u64 * THREAD_STACK_BYTES
        + reactor.sustained as u64 * REACTOR_CONN_BYTES;
    let thread_mem = reactor.sustained as u64 * THREAD_STACK_BYTES;
    thread_mem as f64 / reactor_mem.max(1) as f64
}

/// Print the human table to stderr and return the machine-readable
/// `BENCH_HTTPD_JSON ...` line.
pub fn report(reactor: &LoadSummary, threads: &LoadSummary) -> String {
    for s in [reactor, threads] {
        eprintln!(
            "  {:<8} {:>4} conns ({} sustained, peak open {}) on {} server thread(s): \
             {} ok / {} shed / {} errors, p50 {:.1}ms p99 {:.1}ms in {}ms",
            s.engine,
            s.connections,
            s.sustained,
            s.peak_open,
            s.server_threads,
            s.ok,
            s.shed,
            s.errors,
            s.p50_ms,
            s.p99_ms,
            s.elapsed_ms
        );
    }
    let ratio = capacity_ratio(reactor);
    eprintln!(
        "  equal-memory capacity: {} sessions on {} worker stacks + {} KiB/conn \
         vs 2 MiB/thread -> {ratio:.1}x",
        reactor.sustained,
        reactor.server_threads,
        REACTOR_CONN_BYTES / 1024,
    );
    format!(
        "BENCH_HTTPD_JSON {{\"bench\":\"httpd_load\",\"reactor_supported\":{},\
         \"reactor\":{},\"threads\":{},\"mem_model\":{{\"thread_stack_bytes\":{},\
         \"reactor_conn_bytes\":{}}},\"capacity_ratio\":{ratio:.2}}}",
        sys::SUPPORTED,
        summary_json(reactor),
        summary_json(threads),
        THREAD_STACK_BYTES,
        REACTOR_CONN_BYTES,
    )
}
