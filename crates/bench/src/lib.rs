//! # ccp-bench — the benchmark harness
//!
//! One Criterion bench target per table/figure in the paper plus the
//! ablations DESIGN.md calls out. Each bench prints the corresponding
//! report rows once (paper value beside reproduced value where the paper
//! reports numbers), then measures the regenerating computation so
//! `cargo bench` both reproduces and times every experiment.
//!
//! | Bench target | Experiment |
//! |---|---|
//! | `table1_labs` | Table 1 — assignment passing rates |
//! | `table2_exams` | Table 2 — exam passing rates |
//! | `table3_survey` | Table 3 — survey means |
//! | `uma_numa` | Lab 3's measured UMA/NUMA access times |
//! | `spinlock_coherence` | Lab 2's TAS/TTAS invalidation traffic + native contention |
//! | `mpi_collectives` | §III.A topology/latency/routing sweep |
//! | `portal_throughput` | §I access claim: portal request + dispatch throughput |
//! | `scheduler_policies` | Ablation: FIFO vs best-fit vs backfill vs RR |
//! | `vm_scheduler` | Ablation: VM quantum/policy vs race exposure |
//! | `ablations` | Coherence protocol + auth hash stretching |

/// Print a section header once per bench process.
pub fn banner(title: &str) {
    eprintln!("\n=============== {title} ===============");
}

pub mod dpor;
pub mod httpd_load;
pub mod obs_overhead;
pub mod portal_lock;
pub mod vm_fastpath;
