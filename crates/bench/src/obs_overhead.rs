//! Telemetry-overhead measurement: the 4-worker exploration hot path with
//! the continuous-observability pipeline attached (metrics registry +
//! contention profiler on the steal loop and every task) against the same
//! pool running bare.
//!
//! The acceptance budget from DESIGN.md §12 is <5% throughput overhead.
//! Used by the `checker_parallel` bench and the `obs_overhead` example
//! (which `scripts/bench_smoke.sh` runs to emit `BENCH_obs.json`).

use checker::{CheckConfig, Pool};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Repetitions both entry points use: ~1s of measured time per side, small
/// enough for a CI smoke run, long enough to keep noise inside the budget.
pub const DEFAULT_REPS: u32 = 50;

/// One telemetry-on-vs-off comparison on the grading workload.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverheadRow {
    /// Schedules/sec on a bare 4-worker pool.
    pub obs_off_sps: f64,
    /// Schedules/sec with `Obs` attached (registry + profiler).
    pub obs_on_sps: f64,
    /// `(off - on) / off * 100`; negative values are run-to-run noise.
    pub overhead_pct: f64,
}

/// The same clean philosophers workload `checker_parallel` times, so the
/// overhead figure is measured against the speedup table's throughput.
fn workload() -> (minilang::Program, CheckConfig) {
    let src = labs::lab6_philosophers::ordered_source(4);
    let program = minilang::compile(&src).expect("lab source compiles");
    let cfg = CheckConfig {
        max_schedules: 64,
        max_steps: 100_000_000,
        minimize: false,
        seed: 42,
        ..CheckConfig::default()
    };
    (program, cfg)
}

/// Time both pools. `reps` timed repetitions per pool (plus one warm-up
/// each). The repetitions interleave bare/instrumented in pairs so clock
/// drift and competing load bias both sides equally instead of whichever
/// happened to run second.
pub fn measure(reps: u32) -> ObsOverheadRow {
    let (program, cfg) = workload();
    let plain = Pool::new(4);
    let obs = Arc::new(obs::Obs::new());
    let instrumented = Pool::new(4).with_obs(obs);
    let warm = plain.check(&program, &cfg);
    black_box(instrumented.check(&program, &cfg));
    let mut off_secs = 0.0;
    let mut on_secs = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(plain.check(&program, &cfg));
        off_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        black_box(instrumented.check(&program, &cfg));
        on_secs += t.elapsed().as_secs_f64();
    }
    let schedules = (warm.schedules * u64::from(reps)) as f64;
    let obs_off_sps = schedules / off_secs;
    let obs_on_sps = schedules / on_secs;
    ObsOverheadRow {
        obs_off_sps,
        obs_on_sps,
        overhead_pct: (obs_off_sps - obs_on_sps) / obs_off_sps * 100.0,
    }
}

/// Print the human table to stderr and return the machine-readable
/// `BENCH_OBS_JSON ...` line (the caller prints it so each entry point
/// controls its own stream).
pub fn report(row: &ObsOverheadRow) -> String {
    eprintln!("  telemetry off: {:>9.0} schedules/sec", row.obs_off_sps);
    eprintln!(
        "  telemetry on:  {:>9.0} schedules/sec  (overhead {:+.2}%)",
        row.obs_on_sps, row.overhead_pct
    );
    format!(
        "BENCH_OBS_JSON {{\"bench\":\"obs_overhead\",\"obs_off_sps\":{:.1},\
         \"obs_on_sps\":{:.1},\"overhead_pct\":{:.2}}}",
        row.obs_off_sps, row.obs_on_sps, row.overhead_pct
    )
}
