//! Table 3 — entrance vs exit survey means.
//!
//! Prints paper-vs-reproduced means with a Welch t-test per question
//! (entrance vs exit), then benchmarks survey generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Table 3: survey means (paper vs reproduced)");
    eprintln!("{}", assess::table3(2012).render());
    let (entrance, exit) = assess::SurveyModel::default().run(2012);
    eprintln!("per-question Welch t (entrance vs exit, negative = exit higher):");
    for (i, q) in assess::survey::questions().iter().enumerate() {
        let e: Vec<f64> = entrance.responses[i].iter().map(|v| *v as f64).collect();
        let x: Vec<f64> = exit.responses[i].iter().map(|v| *v as f64).collect();
        let (t, df) = assess::stats::welch_t(&e, &x);
        eprintln!("  Q{}: t={t:.2} (df~{df:.0})", q.number);
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("table3");
    g.bench_function("survey_generation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(assess::SurveyModel::default().run(seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
