//! The message-passing module's levers: topology, latency, routing.
//!
//! Prints allreduce virtual-time by topology and message size, then
//! benchmarks the collectives over real threads.

use criterion::{criterion_group, criterion_main, Criterion};
use mpik::{Reduce, World};
use simnet::{LinkProfile, Topology};
use std::hint::black_box;

fn topologies(n: usize) -> Vec<(&'static str, Topology)> {
    vec![
        ("ring", Topology::ring(n)),
        ("mesh", Topology::mesh2d(2, n / 2)),
        ("hypercube", Topology::hypercube((n as f64).log2() as usize)),
        ("star", Topology::star(n)),
        ("clique", Topology::fully_connected(n)),
    ]
}

fn report() {
    ccp_bench::banner("MPI collectives: virtual time by topology (8 ranks)");
    eprintln!(
        "  {:<12} {:>16} {:>16}",
        "topology", "allreduce (ns)", "bcast 4KiB (ns)"
    );
    for (name, topo) in topologies(8) {
        let w = World::new(8, topo.clone(), LinkProfile::gigabit_ethernet());
        let (_, s1) = w
            .run_stats(|p| p.allreduce_i64(1, Reduce::Sum).unwrap())
            .unwrap();
        let w = World::new(8, topo, LinkProfile::gigabit_ethernet());
        let (_, s2) = w
            .run_stats(|p| {
                let data = (p.rank() == 0).then(|| vec![0u8; 4096]);
                p.bcast(0, data).unwrap().len()
            })
            .unwrap();
        let vt = |st: &[mpik::RankStats]| st.iter().map(|s| s.virtual_time_ns).max().unwrap_or(0);
        eprintln!("  {:<12} {:>16} {:>16}", name, vt(&s1), vt(&s2));
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("mpi");
    g.sample_size(10);

    for (name, topo) in topologies(8) {
        g.bench_function(format!("allreduce_8r_{name}"), |b| {
            b.iter(|| {
                let w = World::new(8, topo.clone(), LinkProfile::backplane());
                black_box(
                    w.run(|p| p.allreduce_i64(p.rank() as i64, Reduce::Sum).unwrap())
                        .unwrap(),
                )
            })
        });
    }

    g.bench_function("alltoall_8r_clique", |b| {
        b.iter(|| {
            let w = World::new(8, Topology::fully_connected(8), LinkProfile::backplane());
            black_box(
                w.run(|p| {
                    let blocks: Vec<Vec<i64>> = (0..8).map(|d| vec![d as i64; 16]).collect();
                    p.alltoall_i64(&blocks).unwrap().len()
                })
                .unwrap(),
            )
        })
    });

    g.bench_function("barrier_16r", |b| {
        b.iter(|| {
            let w = World::new(16, Topology::fully_connected(16), LinkProfile::backplane());
            black_box(w.run(|p| p.barrier().unwrap()).unwrap())
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
