//! The paper's §I claim: the portal "tremendously increases the access to
//! harness the computational power of the cluster". Quantified: requests
//! per second through the full HTTP stack, end-to-end submit→compile→run
//! latency, and job-dispatch throughput.

use auth::Role;
use ccp_core::{Portal, PortalConfig};
use cluster::ClusterSpec;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use httpd::Method;
use std::hint::black_box;
use std::sync::Arc;
use webportal::{app::dispatch, build_router, App};

fn portal_with_student() -> (Arc<App>, httpd::Router, String) {
    let mut portal = Portal::new(PortalConfig {
        cluster: ClusterSpec::small(2, 4),
        ..PortalConfig::default()
    });
    portal.bootstrap_admin("admin", "super-secret9").unwrap();
    let app = App::new(portal);
    let router = build_router(Arc::clone(&app));
    // Sessions must be minted through the HTTP layer so their clocks match
    // the wall-clock `now()` the dispatcher validates against.
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"admin","password":"super-secret9"}"#,
        None,
    );
    let admin = resp
        .body_str()
        .split("\"token\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("admin login succeeds")
        .to_string();
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/admin/users",
        br#"{"name":"alice","password":"password99","role":"student"}"#,
        Some(&admin),
    );
    assert_eq!(resp.status.0, 201, "student created: {}", resp.body_str());
    let resp = dispatch(
        &router,
        Method::Post,
        "/api/login",
        br#"{"user":"alice","password":"password99"}"#,
        None,
    );
    let token = resp
        .body_str()
        .split("\"token\":\"")
        .nth(1)
        .and_then(|s| s.split('"').next())
        .expect("student login succeeds")
        .to_string();
    (app, router, token)
}

fn report() {
    ccp_bench::banner("Portal throughput (see Criterion timings below)");
    eprintln!("end-to-end flow measured: HTTP upload -> compile -> interactive run");
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("portal");
    g.sample_size(20);

    // Read-only request through the whole router.
    let (_app, router, token) = portal_with_student();
    dispatch(
        &router,
        Method::Post,
        "/api/file?path=p.mini",
        b"fn main() { println(1); }",
        Some(&token),
    );
    g.bench_function("http_status_request", |b| {
        b.iter(|| black_box(dispatch(&router, Method::Get, "/api/status", b"", None)))
    });
    g.bench_function("http_file_listing", |b| {
        b.iter(|| {
            black_box(dispatch(
                &router,
                Method::Get,
                "/api/files",
                b"",
                Some(&token),
            ))
        })
    });
    g.bench_function("http_upload_compile_run", |b| {
        b.iter(|| {
            dispatch(
                &router,
                Method::Post,
                "/api/file?path=p.mini",
                b"fn main() { println(1); }",
                Some(&token),
            );
            let resp = dispatch(
                &router,
                Method::Post,
                "/api/compile?path=p.mini",
                b"",
                Some(&token),
            );
            let body = resp.body_str().to_string();
            let artifact = body
                .split("\"artifact\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .unwrap()
                .to_string();
            black_box(dispatch(
                &router,
                Method::Post,
                &format!("/api/run?artifact={artifact}"),
                b"",
                Some(&token),
            ))
        })
    });

    // Batch path: submit N jobs and drain the distributor.
    g.bench_function("submit_and_drain_16_jobs", |b| {
        b.iter_batched(
            || {
                let mut portal = Portal::new(PortalConfig {
                    cluster: ClusterSpec::small(2, 4),
                    ..PortalConfig::default()
                });
                portal.bootstrap_admin("admin", "super-secret9").unwrap();
                let admin = portal.login("admin", "super-secret9", 0).unwrap();
                portal
                    .create_user(&admin, "alice", "password99", Role::Student, 0)
                    .unwrap();
                let tok = portal.login("alice", "password99", 0).unwrap();
                portal
                    .write_file(&tok, "j.mini", b"fn main() { }".to_vec(), 0)
                    .unwrap();
                let art = portal
                    .compile(&tok, "j.mini", 0)
                    .unwrap()
                    .artifact
                    .unwrap()
                    .to_string();
                (portal, tok, art)
            },
            |(mut portal, tok, art)| {
                for _ in 0..16 {
                    portal.submit_job(&tok, &art, 2, 3, 0).unwrap();
                }
                black_box(portal.drain_jobs(500))
            },
            BatchSize::PerIteration,
        )
    });

    // Login cost is dominated by password stretching — by design.
    g.sample_size(10);
    g.bench_function("login_password_stretch", |b| {
        let (app, router, _) = portal_with_student();
        let _ = app;
        b.iter(|| {
            black_box(dispatch(
                &router,
                Method::Post,
                "/api/login",
                br#"{"user":"alice","password":"password99"}"#,
                None,
            ))
        })
    });

    g.finish();

    // Registry-derived latency digest: every dispatch above recorded into
    // ccp_httpd_request_duration_us{route}; read the quantiles back out of
    // the same registry /api/metrics would serve.
    let obs = Arc::clone(_app.obs());
    ccp_bench::banner("HTTP request latency from the telemetry registry");
    for route in [
        "/api/status",
        "/api/files",
        "/api/file",
        "/api/compile",
        "/api/run",
        "/api/login",
    ] {
        let h = obs.metrics.histogram(
            "ccp_httpd_request_duration_us",
            &[("route", route)],
            obs::DURATION_US_BOUNDS,
        );
        if let (Some(p50), Some(p99)) = (h.quantile(0.50), h.quantile(0.99)) {
            eprintln!(
                "  {route:<14} n={:<6} p50 <= {p50:.0}us  p99 <= {p99:.0}us",
                h.count()
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
