//! Table 2 — exam passing rates (all students / course passers).
//!
//! Prints the paper-vs-reproduced rows (plus the seed-sensitivity spread),
//! then benchmarks the exam simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Table 2: exam passing rates (paper vs reproduced)");
    eprintln!("{}", assess::table2(2012).render());
    // Seed sensitivity: the class is 19 students, so rates are grainy;
    // show the spread over 10 cohorts.
    let mut mids = Vec::new();
    let mut fins = Vec::new();
    for seed in 0..10u64 {
        let cohort = assess::Cohort::new(seed);
        let outcomes = cohort.run_labs();
        let exams = assess::ExamModel::default().run(&cohort, &outcomes, seed);
        mids.push(exams.midterm_rate_all());
        fins.push(exams.final_rate_passers());
    }
    let fmt = |xs: &[f64]| {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        format!("{:.0}%..{:.0}%", lo * 100.0, hi * 100.0)
    };
    eprintln!("seed sensitivity over 10 cohorts:");
    eprintln!("  midterm-all spread: {} (paper 17%)", fmt(&mids));
    eprintln!("  final-among-passers spread: {} (paper 80%)", fmt(&fins));
}

fn bench(c: &mut Criterion) {
    report();
    let cohort = assess::Cohort::new(3);
    let outcomes = cohort.run_labs();
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("exam_simulation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(assess::ExamModel::default().run(&cohort, &outcomes, seed))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
