//! Ablation: how the VM's preemption quantum and policy change race
//! exposure (how often the buggy Lab 1 counter actually loses updates)
//! and execution cost.

use criterion::{criterion_group, criterion_main, Criterion};
use minilang::{compile, SchedPolicy, Value, Vm, VmConfig};
use std::hint::black_box;

fn race_exposure(quantum: u32, policy: SchedPolicy, seeds: u64) -> f64 {
    let program = compile(labs::lab1_sync::BUGGY_SOURCE).expect("compiles");
    let mut wrong = 0u64;
    for seed in 0..seeds {
        let mut vm = Vm::new(
            program.clone(),
            VmConfig {
                seed,
                quantum,
                policy,
                ..VmConfig::default()
            },
        );
        if let Ok(out) = vm.run() {
            if out.main_result != Value::Int(labs::lab1_sync::EXPECTED) {
                wrong += 1;
            }
        }
    }
    wrong as f64 / seeds as f64
}

fn report() {
    ccp_bench::banner("VM scheduler ablation: race exposure of the buggy Lab 1 counter");
    eprintln!(
        "  {:<14} {:>8} {:>14}",
        "policy", "quantum", "races exposed"
    );
    for (pname, policy) in [
        ("round-robin", SchedPolicy::RoundRobin),
        ("random", SchedPolicy::RandomPreempt),
    ] {
        for quantum in [1u32, 4, 8, 32, 128] {
            let rate = race_exposure(quantum, policy, 20);
            eprintln!("  {:<14} {:>8} {:>13.0}%", pname, quantum, rate * 100.0);
        }
    }
}

fn bench(c: &mut Criterion) {
    report();
    let program = compile(labs::lab1_sync::FIXED_SOURCE).expect("compiles");
    let mut g = c.benchmark_group("vm");
    for quantum in [1u32, 8, 64] {
        g.bench_function(format!("locked_counter_q{quantum}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut vm = Vm::new(
                    program.clone(),
                    VmConfig {
                        seed,
                        quantum,
                        ..VmConfig::default()
                    },
                );
                black_box(vm.run().unwrap().executed)
            })
        });
    }
    g.bench_function("compile_lab1", |b| {
        b.iter(|| black_box(compile(labs::lab1_sync::FIXED_SOURCE).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
