//! Ablation: the job-distribution policies under a bursty workload.
//!
//! Prints makespan + mean wait per policy on the same trace, then
//! benchmarks a full drain per policy.

use cluster::{Cluster, ClusterSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched::{JobSpec, SchedPolicyKind, Scheduler};
use std::hint::black_box;

/// A reproducible bursty trace: mixed widths and runtimes.
fn trace(seed: u64, n: usize) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cores = [1u32, 1, 2, 4, 8, 16][rng.gen_range(0..6)];
            let ticks = rng.gen_range(2..40);
            let est = (ticks as f64 * rng.gen_range(0.8..1.6)) as u64;
            JobSpec::parallel(&format!("u{}", i % 5), "a.out", cores, ticks)
                .with_estimate(est.max(1))
        })
        .collect()
}

fn drain(policy: SchedPolicyKind, jobs: &[JobSpec]) -> (u64, f64) {
    let mut s = Scheduler::new(Cluster::new(ClusterSpec::small(2, 4)), policy);
    for j in jobs {
        s.submit(j.clone()).unwrap();
    }
    let makespan = s.drain(100_000).expect("drains");
    (makespan, s.mean_wait())
}

fn report() {
    ccp_bench::banner("Scheduler policy ablation (64-job bursty trace, 32 cores)");
    eprintln!("  {:<14} {:>10} {:>12}", "policy", "makespan", "mean wait");
    let jobs = trace(42, 64);
    for p in SchedPolicyKind::ALL {
        let (makespan, wait) = drain(p, &jobs);
        eprintln!("  {:<14} {:>10} {:>12.1}", p.name(), makespan, wait);
    }

    ccp_bench::banner("Arrival-process replay (geometric arrivals, 64 jobs)");
    eprintln!(
        "  {:<14} {:>10} {:>12} {:>10}",
        "policy", "makespan", "mean wait", "peak util"
    );
    let arrivals = sched::WorkloadSpec::default().generate(42);
    for p in SchedPolicyKind::ALL {
        let r = sched::replay(
            Cluster::new(ClusterSpec::small(2, 4)),
            p,
            &arrivals,
            1_000_000,
        );
        eprintln!(
            "  {:<14} {:>10} {:>12.1} {:>9.0}%",
            p.name(),
            r.makespan,
            r.mean_wait,
            r.peak_utilization * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let jobs = trace(42, 64);
    let mut g = c.benchmark_group("sched");
    for p in SchedPolicyKind::ALL {
        g.bench_function(format!("drain_64jobs_{}", p.name()), |b| {
            b.iter_batched(
                || jobs.clone(),
                |jobs| black_box(drain(p, &jobs)),
                BatchSize::PerIteration,
            )
        });
    }
    let arrivals = sched::WorkloadSpec::default().generate(42);
    g.bench_function("replay_arrival_process_backfill", |b| {
        b.iter(|| {
            black_box(sched::replay(
                Cluster::new(ClusterSpec::small(2, 4)),
                SchedPolicyKind::Backfill,
                &arrivals,
                1_000_000,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
