//! Lab 3's measured quantity: UMA vs NUMA access times.
//!
//! Prints the four-domain access-time table and the payload sweep, then
//! benchmarks the memory-system model and the real-thread MPI pull.

use cluster::{AccessKind, MemorySystem};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Lab 3: UMA/NUMA access times (simulated ns/access)");
    for row in labs::lab3_numa::full_table(2048, 4096) {
        eprintln!("  {:<24} {:>12.1}", row.domain.to_string(), row.mean_ns);
    }
    eprintln!("remote-node payload sweep:");
    for shift in [6u32, 12, 18, 20] {
        let row = labs::lab3_numa::measure_remote_node(64, 1 << shift);
        eprintln!("  {:>8} bytes {:>14.0} ns", 1u64 << shift, row.mean_ns);
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("uma_numa");

    g.bench_function("on_node_access_model", |b| {
        b.iter_batched(
            || MemorySystem::new(2, 2),
            |mut mem| black_box(mem.sweep(0, 0, 4096, 64, AccessKind::Read)),
            BatchSize::PerIteration,
        )
    });

    g.bench_function("remote_node_cost_query", |b| {
        let mem = MemorySystem::new(1, 2);
        let net = simnet::Network::uhd_cluster();
        let a = net.topology().segment_slave(0, 0).unwrap();
        let z = net.topology().segment_slave(3, 0).unwrap();
        b.iter(|| {
            black_box(
                mem.access_remote_node(&net, a, z, 4096, AccessKind::Read)
                    .unwrap(),
            )
        })
    });

    g.sample_size(10);
    g.bench_function("mpi_pull_4ranks_real_threads", |b| {
        b.iter(|| black_box(labs::lab3_numa::mpi_pull_experiment(4, 1024)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
