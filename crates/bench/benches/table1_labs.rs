//! Table 1 — passing rates of the programming assignments.
//!
//! Prints the paper-vs-reproduced table (through the real autograder),
//! then benchmarks the three cost centres behind it: grading one
//! submission, grading a full cohort, and the buggy-vs-fixed lab runs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Table 1: assignment passing rates (paper vs reproduced)");
    eprintln!("{}", assess::table1(2012).render());
}

fn bench(c: &mut Criterion) {
    report();

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    g.bench_function("grade_one_submission_lab1", |b| {
        b.iter(|| {
            let r = labs::grade(labs::LabId::Sync, black_box(labs::lab1_sync::FIXED_SOURCE));
            black_box(r.score)
        })
    });

    g.bench_function("autograde_full_cohort_19x7", |b| {
        b.iter_batched(
            || assess::Cohort::new(7),
            |cohort| {
                let outcomes = cohort.run_labs();
                black_box(assess::Cohort::lab_passing_rates(&outcomes))
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("lab1_buggy_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(labs::lab1_sync::run_counter(
                labs::lab1_sync::BUGGY_SOURCE,
                seed,
            ))
        })
    });

    g.bench_function("lab1_fixed_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(labs::lab1_sync::run_counter(
                labs::lab1_sync::FIXED_SOURCE,
                seed,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
