//! Lab 2's observable: TAS-lock cache-invalidation traffic, plus real-
//! hardware contention between the native TAS and TTAS locks.

use cluster::CoherenceProtocol;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Lab 2: coherence traffic, TAS vs TTAS vs ticket (MESI)");
    eprintln!(
        "  {:<8} {:>8} {:>16} {:>16} {:>10}",
        "lock", "threads", "invalidations", "bus txns", "hit rate"
    );
    for threads in [2usize, 4, 8, 16] {
        for (name, ttas) in [("TAS", false), ("TTAS", true)] {
            let s = labs::lab2_spinlock::coherence_trace(
                threads,
                100,
                10,
                ttas,
                CoherenceProtocol::Mesi,
            );
            eprintln!(
                "  {:<8} {:>8} {:>16} {:>16} {:>9.1}%",
                name,
                threads,
                s.invalidations,
                s.bus_transactions,
                s.hit_rate() * 100.0
            );
        }
        let s =
            labs::lab2_spinlock::ticket_coherence_trace(threads, 100, 10, CoherenceProtocol::Mesi);
        eprintln!(
            "  {:<8} {:>8} {:>16} {:>16} {:>9.1}%",
            "ticket",
            threads,
            s.invalidations,
            s.bus_transactions,
            s.hit_rate() * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("spinlock");

    g.bench_function("mesi_trace_tas_4t", |b| {
        b.iter(|| {
            black_box(labs::lab2_spinlock::coherence_trace(
                4,
                100,
                10,
                false,
                CoherenceProtocol::Mesi,
            ))
        })
    });
    g.bench_function("mesi_trace_ttas_4t", |b| {
        b.iter(|| {
            black_box(labs::lab2_spinlock::coherence_trace(
                4,
                100,
                10,
                true,
                CoherenceProtocol::Mesi,
            ))
        })
    });

    g.sample_size(10);
    for threads in [2usize, 4] {
        g.bench_function(format!("native_tas_{threads}threads"), |b| {
            b.iter(|| black_box(labs::lab2_spinlock::native_contend(threads, 2_000, false)))
        });
        g.bench_function(format!("native_ttas_{threads}threads"), |b| {
            b.iter(|| black_box(labs::lab2_spinlock::native_contend(threads, 2_000, true)))
        });
    }

    g.bench_function("native_ticket_4threads", |b| {
        b.iter(|| black_box(labs::lab2_spinlock::native_ticket_contend(4, 2_000)))
    });

    g.bench_function("vm_tas_spinlock_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(labs::lab2_spinlock::run_spinlock(
                labs::lab2_spinlock::TAS_SOURCE,
                seed,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
