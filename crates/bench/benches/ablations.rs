//! Remaining design-choice ablations from DESIGN.md:
//! coherence protocol (MESI vs write-through) and the auth crate's
//! password-stretch iteration count.

use auth::{PasswordHash, PasswordPolicy};
use cluster::CoherenceProtocol;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    ccp_bench::banner("Ablation: MESI vs write-through bus traffic (TAS trace, 4 threads)");
    eprintln!(
        "  {:<16} {:>14} {:>16}",
        "protocol", "invalidations", "bus txns"
    );
    for (name, proto) in [
        ("MESI", CoherenceProtocol::Mesi),
        ("write-through", CoherenceProtocol::WriteThrough),
    ] {
        let s = labs::lab2_spinlock::coherence_trace(4, 100, 10, false, proto);
        eprintln!(
            "  {:<16} {:>14} {:>16}",
            name, s.invalidations, s.bus_transactions
        );
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("ablations");

    for (name, proto) in [
        ("mesi", CoherenceProtocol::Mesi),
        ("wt", CoherenceProtocol::WriteThrough),
    ] {
        g.bench_function(format!("coherence_trace_{name}"), |b| {
            b.iter(|| {
                black_box(labs::lab2_spinlock::coherence_trace(
                    4, 100, 10, false, proto,
                ))
            })
        });
    }

    g.sample_size(10);
    for iters in [1_000u32, 10_000, 50_000] {
        g.bench_function(format!("password_stretch_{iters}"), |b| {
            let policy = PasswordPolicy {
                iterations: iters,
                min_length: 8,
            };
            b.iter(|| {
                black_box(PasswordHash::create_seeded(
                    "correct horse battery",
                    policy,
                    7,
                ))
            })
        });
    }

    g.bench_function("sha256_1mib", |b| {
        let data = vec![0xABu8; 1 << 20];
        b.iter(|| black_box(auth::Sha256::digest(&data)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
