//! Parallel exploration engine: serial vs pooled schedules/sec on a real
//! grading workload, plus the compile cache's hit-path latency and the
//! 30-student resubmission hit-rate scenario.
//!
//! Besides the Criterion timings, this bench prints a registry-derived
//! digest (steal counts, busy/idle time from `ccp_pool_*`) and two
//! machine-readable lines that `scripts/bench_smoke.sh` extracts:
//! `BENCH_JSON {...}` into `BENCH_checker.json` and `BENCH_VM_JSON {...}`
//! (the snapshot-vs-stateless VM fast-path comparison) into
//! `BENCH_vm.json`.

use checker::{CheckConfig, Pool};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use toolchain::{ArtifactStore, CompileCache, CompileRequest, LanguageId};

/// The exploration workload: a clean (deadlock-free) philosophers program,
/// so no schedule short-circuits on a failure and every worker consumes its
/// full share of the budget — the honest case for a speedup table.
fn workload() -> (minilang::Program, CheckConfig) {
    let src = labs::lab6_philosophers::ordered_source(4);
    let program = minilang::compile(&src).expect("lab source compiles");
    let cfg = CheckConfig {
        max_schedules: 64,
        max_steps: 100_000_000,
        minimize: false,
        seed: 42,
        ..CheckConfig::default()
    };
    (program, cfg)
}

/// Schedules/sec over `reps` repetitions on a pool of `workers`.
fn schedules_per_sec(
    program: &minilang::Program,
    cfg: &CheckConfig,
    pool: &Pool,
    reps: u32,
) -> f64 {
    let warm = pool.check(program, cfg);
    let start = Instant::now();
    for _ in 0..reps {
        black_box(pool.check(program, cfg));
    }
    let secs = start.elapsed().as_secs_f64();
    (warm.schedules * u64::from(reps)) as f64 / secs
}

fn speedup_table() -> (Vec<(usize, f64)>, f64) {
    let (program, cfg) = workload();
    ccp_bench::banner("Checker throughput: serial vs work-stealing pool");
    let obs = Arc::new(obs::Obs::new());
    let reps = 6;
    let serial = schedules_per_sec(&program, &cfg, &Pool::new(1), reps);
    let mut rows = vec![(1usize, serial)];
    for workers in [2usize, 4, 8] {
        let pool = Pool::new(workers).with_obs(Arc::clone(&obs));
        rows.push((workers, schedules_per_sec(&program, &cfg, &pool, reps)));
    }
    for (workers, sps) in &rows {
        eprintln!(
            "  {workers} worker(s): {sps:>9.0} schedules/sec  (speedup {:.2}x)",
            sps / serial
        );
    }
    let steals = obs.metrics.counter("ccp_pool_steals_total", &[]).get();
    let tasks = obs.metrics.counter("ccp_pool_tasks_total", &[]).get();
    eprintln!("  pool registry: {tasks} tasks, {steals} steals");
    (rows, serial)
}

/// Hit-path latency and the class-resubmission hit rate, from the cache's
/// own counters.
fn cache_scenario() -> (f64, f64) {
    ccp_bench::banner("Compile cache: 30 students x 5 resubmissions");
    let mut fs = vfs::Vfs::new();
    let mut store = ArtifactStore::new();
    let mut cache = CompileCache::new(64);
    let starter = labs::lab5_bank::source(labs::lab5_bank::BankStep::ConcurrentLocked);
    for s in 0..30 {
        let user = format!("student{s}");
        fs.add_user(&user, 1 << 20).unwrap();
        fs.write(
            &user,
            &format!("/home/{user}/bank.mini"),
            starter.clone().into_bytes(),
        )
        .unwrap();
    }
    for _round in 0..5 {
        for s in 0..30 {
            let user = format!("student{s}");
            let report = CompileRequest::new(&user, &format!("/home/{user}/bank.mini"))
                .run_cached(&fs, &mut store, &mut cache);
            assert!(report.success());
        }
    }
    let stats = cache.stats();
    eprintln!(
        "  {} hits / {} misses  (hit rate {:.1}%)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );

    // Hit-path latency: lookup of an already-cached source, measured alone.
    let n = 10_000u32;
    let start = Instant::now();
    for _ in 0..n {
        black_box(cache.lookup(LanguageId::MiniLang, "", &starter));
    }
    let hit_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(n);
    eprintln!("  hit-path lookup: {hit_us:.2} us/op");
    (stats.hit_rate(), hit_us)
}

fn bench(c: &mut Criterion) {
    let (rows, serial) = speedup_table();
    ccp_bench::banner("Observability overhead: 4-worker pool, telemetry on vs off");
    let obs_row = ccp_bench::obs_overhead::measure(ccp_bench::obs_overhead::DEFAULT_REPS);
    let (hit_rate, hit_us) = cache_scenario();

    // VM fast path: snapshot engine vs the stateless reference, on the
    // deep-DFS archetypes. Also available without Criterion as
    // `cargo run --release -p ccp-bench --example vm_fastpath`.
    ccp_bench::banner("VM fast path: snapshot/prefix reuse vs stateless replay");
    let vm_rows = ccp_bench::vm_fastpath::rows(3);
    eprintln!("{}", ccp_bench::vm_fastpath::report(&vm_rows));

    // Partial-order reduction: schedules to exhaust the same trees with
    // and without DPOR, plus the preemption-bounded certificate. Also
    // available as `cargo run --release -p ccp-bench --example dpor`.
    ccp_bench::banner("Partial-order reduction: sleep-set DFS vs DPOR vs preemption bound");
    let dpor_rows = ccp_bench::dpor::rows();
    eprintln!("{}", ccp_bench::dpor::report(&dpor_rows));

    // Front-end capacity: the semester workload over real sockets on the
    // reactor vs the thread-per-connection baseline. Also available as
    // `cargo run --release -p ccp-bench --example httpd_load`.
    ccp_bench::banner("Portal front end: closed-loop semester load, reactor vs threads");
    let (httpd_reactor, httpd_threads) = ccp_bench::httpd_load::smoke_pair();
    eprintln!(
        "{}",
        ccp_bench::httpd_load::report(&httpd_reactor, &httpd_threads)
    );

    // Lock contention: light read routes racing heavy analyses, global
    // portal mutex vs the fine-grained design. Also available as
    // `cargo run --release -p ccp-bench --example portal_lock`.
    ccp_bench::banner("Portal lock: light reads vs heavy analyses, global mutex vs fine-grained");
    let contention = ccp_bench::portal_lock::compare();
    eprintln!("{}", ccp_bench::portal_lock::report(&contention));

    // One line the smoke script lifts verbatim into BENCH_checker.json.
    let workers_json = rows
        .iter()
        .map(|(w, sps)| format!("\"{w}\":{sps:.1}"))
        .collect::<Vec<_>>()
        .join(",");
    let speedup_4w = rows
        .iter()
        .find(|(w, _)| *w == 4)
        .map(|(_, sps)| sps / serial)
        .unwrap_or(0.0);
    eprintln!(
        "BENCH_JSON {{\"bench\":\"checker_parallel\",\"schedules_per_sec\":{{{workers_json}}},\
         \"speedup_4w\":{speedup_4w:.2},\"cache_hit_rate\":{hit_rate:.3},\
         \"cache_hit_us\":{hit_us:.2}}}"
    );
    // And one for BENCH_obs.json: telemetry overhead on the hot path.
    eprintln!("{}", ccp_bench::obs_overhead::report(&obs_row));

    let (program, cfg) = workload();
    let mut g = c.benchmark_group("checker");
    g.sample_size(10);
    g.bench_function("check_serial", |b| {
        let pool = Pool::new(1);
        b.iter(|| black_box(pool.check(&program, &cfg)))
    });
    g.bench_function("check_dfs_snapshot", |b| {
        let cfg = ccp_bench::vm_fastpath::deep_dfs_cfg(true);
        b.iter(|| black_box(checker::check(&program, &cfg)))
    });
    g.bench_function("check_dfs_stateless", |b| {
        let cfg = ccp_bench::vm_fastpath::deep_dfs_cfg(false);
        b.iter(|| black_box(checker::check(&program, &cfg)))
    });
    g.bench_function("check_dpor_reduced", |b| {
        let prog = minilang::compile(&checker::archetypes::scaled_locked_counter(3)).unwrap();
        let cfg = ccp_bench::dpor::reduction_cfg(true, None);
        b.iter(|| black_box(checker::check(&prog, &cfg)))
    });
    g.bench_function("check_dpor_unreduced", |b| {
        let prog = minilang::compile(&checker::archetypes::scaled_locked_counter(3)).unwrap();
        let cfg = ccp_bench::dpor::reduction_cfg(false, None);
        b.iter(|| black_box(checker::check(&prog, &cfg)))
    });
    g.bench_function("check_4_workers", |b| {
        let pool = Pool::new(4);
        b.iter(|| black_box(pool.check(&program, &cfg)))
    });
    g.bench_function("compile_cache_hit", |b| {
        let mut cache = CompileCache::new(4);
        let src = "fn main() { println(7); }".to_string();
        let prog = minilang::compile(&src).unwrap();
        cache.insert(LanguageId::MiniLang, "", &src, prog);
        b.iter(|| black_box(cache.lookup(LanguageId::MiniLang, "", &src)))
    });
    g.bench_function("compile_cache_miss_and_compile", |b| {
        let mut cache = CompileCache::new(4);
        let src = "fn main() { println(7); }".to_string();
        b.iter(|| {
            let prog = match cache.lookup(LanguageId::MiniLang, "", &src) {
                Some(p) => p,
                None => minilang::compile(&src).unwrap(),
            };
            cache = CompileCache::new(4); // stay on the miss path
            black_box(prog)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
