//! Lab for Deadlock (Chapter 10) — dining philosophers.
//!
//! "The program should use five Pthreads to simulate five philosophers and
//! declare an array of five semaphores to represent five forks. ...
//! Repeatedly run the program to see that deadlock occurs when the
//! philosophers run to a cyclic hold and wait situation. ... Then, write
//! another program that makes Philosopher 4 request the forks in the other
//! order so that the cyclic hold and wait condition is prevented"
//! (§III.B.6).

use minilang::{compile_and_run, LangError, RuntimeError};

/// Number of philosophers (and forks).
pub const N: usize = 5;

fn program(fixed: bool, rounds: usize) -> String {
    // Philosopher i takes fork i then fork (i+1)%5. In the fixed version,
    // philosopher 4 takes them in the opposite order, breaking the cycle.
    let order = if fixed {
        r#"
    var first = id;
    var second = (id + 1) % 5;
    if (id == 4) {
        // Philosopher 4 requests the forks in the other order.
        first = 0;
        second = 4;
    }"#
    } else {
        r#"
    var first = id;
    var second = (id + 1) % 5;"#
    };
    format!(
        r#"
var forks;          // array of five binary semaphores
var meals = 0;

fn philosopher(id, rounds) {{
    for (var r = 0; r < rounds; r = r + 1) {{
        {order}
        println("phil ", id, " requests fork ", first);
        sem_wait(forks[first]);
        println("phil ", id, " acquired fork ", first);
        yield_now();    // widen the window for the cyclic hold-and-wait
        yield_now();
        yield_now();
        println("phil ", id, " requests fork ", second);
        sem_wait(forks[second]);
        println("phil ", id, " acquired fork ", second);
        // eat
        atomic_add(meals, 1);
        println("phil ", id, " releases fork ", second);
        sem_post(forks[second]);
        println("phil ", id, " releases fork ", first);
        sem_post(forks[first]);
    }}
}}

fn main() {{
    forks = [semaphore(1), semaphore(1), semaphore(1), semaphore(1), semaphore(1)];
    var ts = [0, 0, 0, 0, 0];
    for (var i = 0; i < 5; i = i + 1) {{
        ts[i] = spawn philosopher(i, {rounds});
    }}
    for (var i = 0; i < 5; i = i + 1) {{
        join(ts[i]);
    }}
    println("all philosophers done, meals = ", meals);
    return meals;
}}
"#
    )
}

/// The deadlock-prone handout.
pub fn naive_source(rounds: usize) -> String {
    program(false, rounds)
}

/// The resource-ordering fix.
pub fn ordered_source(rounds: usize) -> String {
    program(true, rounds)
}

/// What one run produced.
#[derive(Debug, Clone, PartialEq)]
pub enum DinnerOutcome {
    /// Everyone finished `rounds` meals; payload is total meals.
    Completed(i64),
    /// The VM detected the cyclic wait; payload is the blocked-thread report.
    Deadlocked(Vec<String>),
    /// Some other failure (should not happen).
    Other(String),
}

/// Run a philosophers program under `seed`.
pub fn dine(source: &str, seed: u64) -> DinnerOutcome {
    match compile_and_run(source, seed) {
        Ok(out) => match out.main_result {
            minilang::Value::Int(v) => DinnerOutcome::Completed(v),
            other => DinnerOutcome::Other(format!("unexpected result {other}")),
        },
        Err(LangError::Runtime(RuntimeError::Deadlock { blocked })) => {
            DinnerOutcome::Deadlocked(blocked)
        }
        Err(e) => DinnerOutcome::Other(e.to_string()),
    }
}

/// "Repeatedly run the program": fraction of `seeds` that deadlock.
pub fn deadlock_rate(source: &str, seeds: std::ops::Range<u64>) -> f64 {
    let total = seeds.end - seeds.start;
    let deadlocks = seeds
        .filter(|&s| matches!(dine(source, s), DinnerOutcome::Deadlocked(_)))
        .count();
    deadlocks as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_version_deadlocks_often() {
        let rate = deadlock_rate(&naive_source(20), 0..12);
        assert!(rate >= 0.5, "deadlock rate only {rate}");
    }

    #[test]
    fn ordered_version_never_deadlocks() {
        let src = ordered_source(8);
        for seed in 0..12 {
            match dine(&src, seed) {
                DinnerOutcome::Completed(meals) => assert_eq!(meals, 40, "seed {seed}"),
                other => panic!("seed {seed}: {other:?}"),
            }
        }
    }

    #[test]
    fn deadlock_report_names_semaphores() {
        let src = naive_source(10);
        for seed in 0..20 {
            if let DinnerOutcome::Deadlocked(blocked) = dine(&src, seed) {
                assert!(
                    blocked.iter().any(|b| b.contains("semaphore")),
                    "{blocked:?}"
                );
                return;
            }
        }
        panic!("no deadlock observed in 20 seeds");
    }

    #[test]
    fn event_log_shows_request_allocation_release() {
        // The lab asks for a message at every event.
        let src = ordered_source(1);
        let out = minilang::compile_and_run(&src, 3).unwrap();
        for verb in ["requests", "acquired", "releases"] {
            assert!(
                out.stdout.contains(verb),
                "missing `{verb}` events:\n{}",
                out.stdout
            );
        }
    }
}
