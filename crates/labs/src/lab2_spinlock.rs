//! Multicore Lab 2 — Spin Lock and Cache Coherence.
//!
//! "Simulate cache invalidation and updating using TAS Lock. ... A shared
//! variable was used to simulate the main copy of the shared data in the
//! main memory and each thread has a local copy of the shared variable,
//! which represents the copy in the local cache" (§III.B.2).
//!
//! Three layers here:
//! 1. minilang TAS and TTAS spin locks (what students write);
//! 2. native TAS/TTAS locks over real atomics (what benches contend on);
//! 3. a MESI trace experiment quantifying why TTAS beats TAS: invalidation
//!    counts from [`cluster::CacheSystem`].

use cluster::{AccessKind, CacheSystem, CoherenceProtocol, CoherenceStats};
use minilang::{compile_and_run, Value};
use std::sync::atomic::{AtomicBool, Ordering};

/// Students' first version: plain test-and-set spin lock.
pub const TAS_SOURCE: &str = r#"
var flag = 0;       // the lock word: the "main copy" in memory
var counter = 0;

fn acquire() {
    // Spin on tas: EVERY attempt writes the lock word, invalidating all
    // other caches' copies even when the lock is held.
    while (tas(flag) == 1) { }
}

fn release() { flag = 0; }

fn worker(n) {
    for (var i = 0; i < n; i = i + 1) {
        acquire();
        counter = counter + 1;
        release();
    }
}

fn main() {
    var t1 = spawn worker(150);
    var t2 = spawn worker(150);
    var t3 = spawn worker(150);
    join(t1); join(t2); join(t3);
    return counter;
}
"#;

/// The improved version: test-and-test-and-set — spin on a read.
pub const TTAS_SOURCE: &str = r#"
var flag = 0;
var counter = 0;

fn acquire() {
    while (true) {
        while (flag == 1) { }          // local spin: reads hit the cache
        if (tas(flag) == 0) { return; } // only write when it looks free
    }
}

fn release() { flag = 0; }

fn worker(n) {
    for (var i = 0; i < n; i = i + 1) {
        acquire();
        counter = counter + 1;
        release();
    }
}

fn main() {
    var t1 = spawn worker(150);
    var t2 = spawn worker(150);
    var t3 = spawn worker(150);
    join(t1); join(t2); join(t3);
    return counter;
}
"#;

/// Run either spin-lock program; returns the final counter (450 expected).
pub fn run_spinlock(source: &str, seed: u64) -> Option<i64> {
    match compile_and_run(source, seed).ok()?.main_result {
        Value::Int(v) => Some(v),
        _ => None,
    }
}

/// The coherence experiment: replay the memory-access pattern of `threads`
/// cores fighting over one lock word under MESI (or write-through), and
/// report the event counters. `spins_while_held` models how long the lock
/// stays contended per acquisition.
pub fn coherence_trace(
    threads: usize,
    acquisitions: usize,
    spins_while_held: usize,
    ttas: bool,
    protocol: CoherenceProtocol,
) -> CoherenceStats {
    let mut sys = CacheSystem::new(threads.max(2), 64, protocol);
    let lock_addr = 0x1000u64;
    for a in 0..acquisitions {
        let holder = a % threads;
        // Holder takes the lock: an atomic RMW = read + write of the line.
        sys.access(holder, lock_addr, AccessKind::Read);
        sys.access(holder, lock_addr, AccessKind::Write);
        // Everyone else spins while it is held.
        for _ in 0..spins_while_held {
            for t in 0..threads {
                if t == holder {
                    continue;
                }
                if ttas {
                    // TTAS: spin on a read; the line settles into Shared.
                    sys.access(t, lock_addr, AccessKind::Read);
                } else {
                    // TAS: every spin is a write (failed RMW still writes).
                    sys.access(t, lock_addr, AccessKind::Read);
                    sys.access(t, lock_addr, AccessKind::Write);
                }
            }
        }
        // Holder releases: one more write.
        sys.access(holder, lock_addr, AccessKind::Write);
    }
    sys.stats().clone()
}

/// A native TAS spin lock (the real-hardware mirror).
#[derive(Debug, Default)]
pub struct TasLock {
    flag: AtomicBool,
}

impl TasLock {
    /// A new unlocked lock.
    pub fn new() -> TasLock {
        TasLock {
            flag: AtomicBool::new(false),
        }
    }

    /// Spin with test-and-set until acquired.
    pub fn lock(&self) {
        while self.flag.swap(true, Ordering::Acquire) {
            std::hint::spin_loop();
        }
    }

    /// Release.
    pub fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// A native TTAS spin lock.
#[derive(Debug, Default)]
pub struct TtasLock {
    flag: AtomicBool,
}

impl TtasLock {
    /// A new unlocked lock.
    pub fn new() -> TtasLock {
        TtasLock {
            flag: AtomicBool::new(false),
        }
    }

    /// Spin reading until the lock looks free, then try the swap.
    pub fn lock(&self) {
        loop {
            while self.flag.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            if !self.flag.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    /// Release.
    pub fn unlock(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Drive `threads` OS threads through `n` guarded increments with a TAS or
/// TTAS lock; returns the final counter (correctness harness for benches).
pub fn native_contend(threads: usize, per_thread: u64, ttas: bool) -> u64 {
    use std::sync::Arc;
    let lock = Arc::new((TasLock::new(), TtasLock::new()));
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                if ttas {
                    lock.1.lock();
                } else {
                    lock.0.lock();
                }
                // The critical section: a plain RMW, safe under the lock.
                let v = counter.load(Ordering::Relaxed);
                counter.store(v + 1, Ordering::Relaxed);
                if ttas {
                    lock.1.unlock();
                } else {
                    lock.0.unlock();
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    counter.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_vm_locks_are_correct() {
        for seed in [0u64, 7, 99] {
            assert_eq!(run_spinlock(TAS_SOURCE, seed), Some(450), "TAS seed {seed}");
            assert_eq!(
                run_spinlock(TTAS_SOURCE, seed),
                Some(450),
                "TTAS seed {seed}"
            );
        }
    }

    #[test]
    fn tas_generates_more_invalidations_than_ttas() {
        let tas = coherence_trace(4, 50, 10, false, CoherenceProtocol::Mesi);
        let ttas = coherence_trace(4, 50, 10, true, CoherenceProtocol::Mesi);
        assert!(
            tas.invalidations > 3 * ttas.invalidations,
            "TAS {} vs TTAS {} invalidations",
            tas.invalidations,
            ttas.invalidations
        );
        assert!(tas.bus_transactions > ttas.bus_transactions);
    }

    #[test]
    fn ttas_spins_hit_cache() {
        let ttas = coherence_trace(4, 20, 20, true, CoherenceProtocol::Mesi);
        // Spinning reads should mostly hit after the first pull.
        assert!(ttas.hit_rate() > 0.8, "hit rate {}", ttas.hit_rate());
    }

    #[test]
    fn write_through_is_worse_for_both() {
        let mesi = coherence_trace(4, 30, 10, false, CoherenceProtocol::Mesi);
        let wt = coherence_trace(4, 30, 10, false, CoherenceProtocol::WriteThrough);
        assert!(wt.bus_transactions > mesi.bus_transactions);
    }

    #[test]
    fn native_locks_correct_under_contention() {
        assert_eq!(native_contend(4, 5_000, false), 20_000);
        assert_eq!(native_contend(4, 5_000, true), 20_000);
    }
}

/// The third lock of the lecture's taxonomy: a ticket (queue) lock — FIFO
/// fair, one release wakes exactly the next waiter, and waiters spin on a
/// *read* of `now_serving`, so coherence traffic stays TTAS-like while
/// adding fairness TAS/TTAS lack.
pub const TICKET_SOURCE: &str = r#"
var next_ticket = 0;
var now_serving = 0;
var counter = 0;

fn acquire() {
    var my = atomic_add(next_ticket, 1);  // take a ticket
    while (now_serving != my) { }          // spin on a read
}

fn release() { atomic_add(now_serving, 1); }

fn worker(n) {
    for (var i = 0; i < n; i = i + 1) {
        acquire();
        counter = counter + 1;
        release();
    }
}

fn main() {
    var t1 = spawn worker(150);
    var t2 = spawn worker(150);
    var t3 = spawn worker(150);
    join(t1); join(t2); join(t3);
    return counter;
}
"#;

/// Native ticket lock over two atomics.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: std::sync::atomic::AtomicU64,
    serving: std::sync::atomic::AtomicU64,
}

impl TicketLock {
    /// A new unlocked lock.
    pub fn new() -> TicketLock {
        TicketLock::default()
    }

    /// Take a ticket, spin until served.
    pub fn lock(&self) {
        let my = self.next.fetch_add(1, Ordering::Relaxed);
        while self.serving.load(Ordering::Acquire) != my {
            std::hint::spin_loop();
        }
    }

    /// Serve the next ticket.
    pub fn unlock(&self) {
        self.serving.fetch_add(1, Ordering::Release);
    }
}

/// Ticket-lock coherence trace: waiters spin reading `now_serving` (one
/// shared line); acquisition RMWs `next_ticket` (another line); release
/// writes `now_serving` once.
pub fn ticket_coherence_trace(
    threads: usize,
    acquisitions: usize,
    spins_while_held: usize,
    protocol: CoherenceProtocol,
) -> CoherenceStats {
    let mut sys = CacheSystem::new(threads.max(2), 64, protocol);
    let next_ticket = 0x1000u64;
    let now_serving = 0x2000u64; // different line: no false sharing
    for a in 0..acquisitions {
        let holder = a % threads;
        // Holder takes a ticket: RMW on next_ticket.
        sys.access(holder, next_ticket, AccessKind::Read);
        sys.access(holder, next_ticket, AccessKind::Write);
        // Everyone else spins reading now_serving.
        for _ in 0..spins_while_held {
            for t in 0..threads {
                if t != holder {
                    sys.access(t, now_serving, AccessKind::Read);
                }
            }
        }
        // Release: one write to now_serving.
        sys.access(holder, now_serving, AccessKind::Write);
    }
    sys.stats().clone()
}

/// Drive the native ticket lock (correctness + bench harness).
pub fn native_ticket_contend(threads: usize, per_thread: u64) -> u64 {
    use std::sync::Arc;
    let lock = Arc::new(TicketLock::new());
    let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                lock.lock();
                let v = counter.load(Ordering::Relaxed);
                counter.store(v + 1, Ordering::Relaxed);
                lock.unlock();
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    counter.load(Ordering::SeqCst)
}

#[cfg(test)]
mod ticket_tests {
    use super::*;

    #[test]
    fn vm_ticket_lock_correct() {
        for seed in [0u64, 3, 17] {
            assert_eq!(run_spinlock(TICKET_SOURCE, seed), Some(450), "seed {seed}");
        }
    }

    #[test]
    fn native_ticket_lock_correct() {
        assert_eq!(native_ticket_contend(4, 5_000), 20_000);
    }

    #[test]
    fn ticket_traffic_between_ttas_and_tas() {
        let tas = coherence_trace(8, 60, 10, false, CoherenceProtocol::Mesi);
        let ticket = ticket_coherence_trace(8, 60, 10, CoherenceProtocol::Mesi);
        assert!(
            ticket.invalidations < tas.invalidations / 2,
            "ticket {} vs TAS {}",
            ticket.invalidations,
            tas.invalidations
        );
        assert!(
            ticket.hit_rate() > 0.8,
            "ticket waiters should spin in cache"
        );
    }
}
