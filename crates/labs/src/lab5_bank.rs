//! Lab for Basic Synchronization Methods (Chapter 8) — the banking account.
//!
//! The lab walks six steps (§III.B.5): (i) sequential deposit/withdraw;
//! (ii) refactor into functions; (iii) one-dollar-at-a-time loops;
//! (iv) two pthreads serialized with `pthread_join`; (v) both threads
//! concurrent — "Do you see different result?" — and (vi) mutex-protected,
//! restoring the correct balance. Each step is a runnable program below.

use minilang::{compile_and_run, Value};

/// Steps of the lab, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankStep {
    /// (i)+(ii)+(iii): sequential one-dollar loops.
    Sequential,
    /// (iv): threads, but joined one after the other (still serialized).
    SerializedThreads,
    /// (v): threads truly concurrent — the race.
    ConcurrentRacy,
    /// (vi): concurrent with a mutex — correct again.
    ConcurrentLocked,
}

/// Starting balance (the paper uses 1,000,000; scaled down 1000x so VM runs
/// stay fast — the race is about interleaving, not magnitude).
pub const START: i64 = 1_000;
/// Withdrawal amount (paper: 600,000 scaled to 600).
pub const WITHDRAW: i64 = 600;
/// Deposit amount (paper: 500,000 scaled to 500).
pub const DEPOSIT: i64 = 500;
/// The correct ending balance.
pub const EXPECTED: i64 = START - WITHDRAW + DEPOSIT;

/// Program text for a given step.
pub fn source(step: BankStep) -> String {
    let body = match step {
        BankStep::Sequential => {
            "    withdraw(600);\n    deposit(500);"
        }
        BankStep::SerializedThreads => {
            // join() between creations serializes the threads (step iv).
            "    var t1 = spawn withdraw(600);\n    join(t1);\n    var t2 = spawn deposit(500);\n    join(t2);"
        }
        BankStep::ConcurrentRacy | BankStep::ConcurrentLocked => {
            "    var t1 = spawn withdraw(600);\n    var t2 = spawn deposit(500);\n    join(t1);\n    join(t2);"
        }
    };
    let (lock_decl, lock_on, lock_off) = if step == BankStep::ConcurrentLocked {
        ("var m;", "lock(m);", "unlock(m);")
    } else {
        ("", "", "")
    };
    let init_lock = if step == BankStep::ConcurrentLocked {
        "    m = mutex();"
    } else {
        ""
    };
    format!(
        r#"
var balance = {START};
{lock_decl}

fn withdraw(amount) {{
    // one dollar at a time (step iii)
    for (var i = 0; i < amount; i = i + 1) {{
        {lock_on}
        balance = balance - 1;
        {lock_off}
    }}
}}

fn deposit(amount) {{
    for (var i = 0; i < amount; i = i + 1) {{
        {lock_on}
        balance = balance + 1;
        {lock_off}
    }}
}}

fn main() {{
{init_lock}
{body}
    println("ending balance = ", balance);
    return balance;
}}
"#
    )
}

/// Run a step and return the ending balance.
pub fn ending_balance(step: BankStep, seed: u64) -> Option<i64> {
    match compile_and_run(&source(step), seed).ok()?.main_result {
        Value::Int(v) => Some(v),
        _ => None,
    }
}

/// Step (v)'s question: "Run the program several times. Do you see
/// different result?" — run across `seeds` and report the distinct
/// ending balances observed.
pub fn racy_balances(seeds: std::ops::Range<u64>) -> Vec<i64> {
    let mut seen: Vec<i64> = seeds
        .filter_map(|s| ending_balance(BankStep::ConcurrentRacy, s))
        .collect();
    seen.sort_unstable();
    seen.dedup();
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_serialized_are_exact() {
        for seed in [0u64, 5] {
            assert_eq!(ending_balance(BankStep::Sequential, seed), Some(EXPECTED));
            assert_eq!(
                ending_balance(BankStep::SerializedThreads, seed),
                Some(EXPECTED)
            );
        }
    }

    #[test]
    fn racy_step_varies_across_runs() {
        let balances = racy_balances(0..16);
        assert!(
            balances.len() > 1,
            "expected divergent balances, got {balances:?}"
        );
        // Lost updates can push the balance either way, but never outside
        // the physically possible envelope.
        for b in &balances {
            assert!(
                *b >= START - WITHDRAW - DEPOSIT && *b <= START + DEPOSIT,
                "balance {b}"
            );
        }
        assert!(
            balances.iter().any(|b| *b != EXPECTED),
            "some run must be wrong"
        );
    }

    #[test]
    fn locked_step_restores_correctness() {
        for seed in 0..10 {
            assert_eq!(
                ending_balance(BankStep::ConcurrentLocked, seed),
                Some(EXPECTED),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn expected_constant_matches_paper_arithmetic() {
        assert_eq!(EXPECTED, 900); // 1000 - 600 + 500, the paper's 900k scaled
    }
}
