//! Multicore Lab 3 — UMA and NUMA Access.
//!
//! "Using Pthread and MPI to simulate and evaluate the access times to
//! local shared memory and the access times to remote memory. ... UMA mode
//! is used among threads that run on multi-cores of the same processor,
//! while NUMA mode is used when a process needs to read data located in a
//! remote processor" (§III.B.3). This lab had the lowest passing rate (39%)
//! because it combines the threading and message-passing toolchains — the
//! module mirrors that by combining [`cluster::MemorySystem`] (the Pthreads
//! half) and [`mpik`] (the MPI half).

use cluster::{AccessKind, MemoryDomain, MemorySystem};
use mpik::{Tag, World};
use simnet::{LinkProfile, Network, Topology};

/// One row of the lab's measurement table.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessRow {
    /// Which memory domain was measured.
    pub domain: MemoryDomain,
    /// Mean simulated nanoseconds per access.
    pub mean_ns: f64,
    /// Number of accesses measured.
    pub n: usize,
}

/// The thread-level half: measure cache / local-DRAM / remote-socket access
/// on one dual-socket node. `n` accesses per domain.
pub fn measure_on_node(n: usize) -> Vec<AccessRow> {
    let mut mem = MemorySystem::new(2, 2);
    // Domain 1: repeated access to one line = cache hits after the miss.
    let mut cache_total = 0u64;
    mem.access(0, 0, AccessKind::Read); // warm
    for _ in 0..n {
        cache_total += mem.access(0, 0, AccessKind::Read).time.nanos();
    }
    // Domain 2: streaming fresh lines homed on socket 0 from core 0 (UMA).
    let mut dram_total = 0u64;
    let mut dram_count = 0usize;
    let mut addr = 0u64;
    while dram_count < n {
        addr += 64;
        if mem.home_socket(addr) == 0 {
            dram_total += mem.access(0, addr, AccessKind::Read).time.nanos();
            dram_count += 1;
        }
    }
    // Domain 3: streaming lines homed on socket 1 from core 0 (NUMA).
    let mut remote_total = 0u64;
    let mut remote_count = 0usize;
    while remote_count < n {
        addr += 64;
        if mem.home_socket(addr) == 1 {
            remote_total += mem.access(0, addr, AccessKind::Read).time.nanos();
            remote_count += 1;
        }
    }
    vec![
        AccessRow {
            domain: MemoryDomain::LocalCache,
            mean_ns: cache_total as f64 / n as f64,
            n,
        },
        AccessRow {
            domain: MemoryDomain::LocalDram,
            mean_ns: dram_total as f64 / n as f64,
            n,
        },
        AccessRow {
            domain: MemoryDomain::RemoteSocket,
            mean_ns: remote_total as f64 / n as f64,
            n,
        },
    ]
}

/// The MPI half: measure remote-node access time over the cluster fabric
/// (`bytes` pulled per access, `n` accesses) between two slaves in
/// *different* segments — the worst case the paper's cluster has.
pub fn measure_remote_node(n: usize, bytes: u64) -> AccessRow {
    let mem = MemorySystem::new(1, 2);
    let net = Network::uhd_cluster();
    let topo = net.topology();
    let a = topo.segment_slave(0, 0).expect("slave exists");
    let b = topo.segment_slave(3, 0).expect("slave exists");
    let mut total = 0u64;
    for _ in 0..n {
        let r = mem
            .access_remote_node(&net, a, b, bytes, AccessKind::Read)
            .expect("route exists");
        total += r.time.nanos();
    }
    AccessRow {
        domain: MemoryDomain::RemoteNode,
        mean_ns: total as f64 / n.max(1) as f64,
        n,
    }
}

/// The full lab: all four rows, cache -> remote node.
pub fn full_table(n: usize, remote_bytes: u64) -> Vec<AccessRow> {
    let mut rows = measure_on_node(n);
    rows.push(measure_remote_node(n, remote_bytes));
    rows
}

/// The MPI exercise proper: rank 0 owns an array; every other rank pulls a
/// slice and measures its *virtual* transfer time. Returns rank-ordered
/// mean ns (rank 0 reports 0). This runs real threads under `mpik`.
pub fn mpi_pull_experiment(ranks: usize, slice_words: usize) -> Vec<f64> {
    let world = World::new(
        ranks,
        Topology::segmented_cluster(4, 16),
        LinkProfile::gigabit_ethernet(),
    );
    let results = world
        .run_stats(|p| {
            if p.rank() == 0 {
                // Serve one slice to each peer.
                let data: Vec<i64> = (0..slice_words as i64).collect();
                for _ in 1..p.size() {
                    let req = p.recv_any(Tag(1)).expect("request");
                    p.send_vec_i64(req.src, Tag(2), &data).expect("response");
                }
                0.0
            } else {
                let before = p.virtual_time();
                p.send_i64(0, Tag(1), p.rank() as i64).expect("request");
                let _data = p.recv_vec_i64(0, Tag(2)).expect("slice");
                (p.virtual_time() - before) as f64
            }
        })
        .expect("world runs");
    results.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_ordering_holds() {
        // The lab's core lesson: cache < local DRAM < remote socket << remote node.
        let rows = full_table(256, 4096);
        assert_eq!(rows.len(), 4);
        assert!(
            rows[0].mean_ns < rows[1].mean_ns,
            "cache {} !< dram {}",
            rows[0].mean_ns,
            rows[1].mean_ns
        );
        assert!(rows[1].mean_ns < rows[2].mean_ns);
        assert!(
            rows[2].mean_ns * 10.0 < rows[3].mean_ns,
            "remote node must dwarf on-node NUMA"
        );
    }

    #[test]
    fn domains_labelled_correctly() {
        let rows = full_table(32, 64);
        assert_eq!(rows[0].domain, MemoryDomain::LocalCache);
        assert_eq!(rows[3].domain, MemoryDomain::RemoteNode);
    }

    #[test]
    fn remote_cost_scales_with_bytes() {
        let small = measure_remote_node(16, 64);
        let large = measure_remote_node(16, 1 << 20);
        assert!(large.mean_ns > small.mean_ns);
    }

    #[test]
    fn mpi_pull_reports_nonzero_remote_times() {
        let times = mpi_pull_experiment(4, 1024);
        assert_eq!(times.len(), 4);
        assert_eq!(times[0], 0.0);
        for (r, t) in times.iter().enumerate().skip(1) {
            assert!(*t > 0.0, "rank {r} measured {t}");
        }
    }
}
