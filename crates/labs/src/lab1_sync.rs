//! Multicore Lab 1 — Synchronization (the paper used Java `synchronized`).
//!
//! "Using Java Synchronized method to ensure timely access to a counter
//! shared by two threads. ... A pre-written Java program was given to the
//! students with the code for synchronization missing. Students experimented
//! with the given erroneous program and checked the incorrect output"
//! (§III.B.1). The minilang equivalent of `synchronized` is a mutex.

use minilang::{compile_and_run, Value};

/// The handout: two threads bump a shared counter with no synchronization.
pub const BUGGY_SOURCE: &str = r#"
// Lab 1 handout: the synchronization is missing. Find out why the
// counter comes out wrong, then fix it.
var counter = 0;

fn worker(n) {
    for (var i = 0; i < n; i = i + 1) {
        counter = counter + 1;    // read-modify-write: NOT atomic
    }
}

fn main() {
    var t1 = spawn worker(500);
    var t2 = spawn worker(500);
    join(t1);
    join(t2);
    println("counter = ", counter);
    return counter;
}
"#;

/// The expected fix: guard the increment with a mutex.
pub const FIXED_SOURCE: &str = r#"
var counter = 0;
var m;

fn worker(n) {
    for (var i = 0; i < n; i = i + 1) {
        lock(m);                  // the "synchronized" region
        counter = counter + 1;
        unlock(m);
    }
}

fn main() {
    m = mutex();
    var t1 = spawn worker(500);
    var t2 = spawn worker(500);
    join(t1);
    join(t2);
    println("counter = ", counter);
    return counter;
}
"#;

/// The true count both versions aim for.
pub const EXPECTED: i64 = 1000;

/// Run a lab-1-shaped program and extract its final counter.
pub fn run_counter(source: &str, seed: u64) -> Option<i64> {
    match compile_and_run(source, seed).ok()?.main_result {
        Value::Int(v) => Some(v),
        _ => None,
    }
}

/// How many of `seeds` produce a *wrong* counter for `source`.
/// The buggy handout should lose updates on most seeds; a correct fix on
/// none.
pub fn wrong_seed_count(source: &str, seeds: std::ops::Range<u64>) -> usize {
    seeds
        .filter(|&s| run_counter(source, s) != Some(EXPECTED))
        .count()
}

/// Native mirror: two OS threads doing unsynchronized-style increments via
/// relaxed load/add/store (the same lost-update window, without UB).
pub fn native_racy_counter(per_thread: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let counter = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let c = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                // Deliberately non-atomic RMW: load then store.
                let v = c.load(Ordering::Relaxed);
                std::hint::spin_loop();
                c.store(v + 1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    counter.load(Ordering::Relaxed)
}

/// Native mirror of the fix: a mutex-guarded counter.
pub fn native_locked_counter(per_thread: u64) -> u64 {
    use parking_lot::Mutex;
    use std::sync::Arc;
    let counter = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let c = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                *c.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    let v = *counter.lock();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_version_loses_updates() {
        let wrong = wrong_seed_count(BUGGY_SOURCE, 0..12);
        assert!(wrong >= 8, "only {wrong}/12 seeds exposed the race");
    }

    #[test]
    fn fixed_version_always_exact() {
        assert_eq!(wrong_seed_count(FIXED_SOURCE, 0..12), 0);
    }

    #[test]
    fn buggy_never_exceeds_truth() {
        for seed in 0..8 {
            let v = run_counter(BUGGY_SOURCE, seed).unwrap();
            assert!(v <= EXPECTED, "counter {v} exceeds possible maximum");
            assert!(v >= 2, "counter {v} impossibly small");
        }
    }

    #[test]
    fn native_locked_is_exact() {
        assert_eq!(native_locked_counter(10_000), 20_000);
    }

    #[test]
    fn native_racy_never_exceeds() {
        let v = native_racy_counter(10_000);
        assert!(v <= 20_000);
    }
}
