//! # labs — the seven PDC course modules (§III.B)
//!
//! Each lab from the paper is implemented twice:
//!
//! 1. **On the portal's VM** — minilang sources (a buggy version students
//!    start from and a fixed version they must reach), executed under the
//!    seeded scheduler so the pathology (lost update, deadlock, wrong
//!    balance) reproduces on demand; and
//! 2. **Natively** — real OS threads (std / crossbeam / parking_lot), so
//!    benches measure genuine contention on real hardware.
//!
//! | Module | Paper lab |
//! |---|---|
//! | [`lab1_sync`] | Multicore Lab 1 — Synchronization with Java |
//! | [`lab2_spinlock`] | Multicore Lab 2 — Spin Lock and Cache Coherence |
//! | [`lab3_numa`] | Multicore Lab 3 — UMA and NUMA Access |
//! | [`lab4_procthread`] | Lab for Process and Thread Management (Ch. 6) |
//! | [`lab5_bank`] | Lab for Basic Synchronization Methods (Ch. 8) |
//! | [`lab6_philosophers`] | Lab for Deadlock (Ch. 10) |
//! | [`lab7_boundedbuffer`] | Programming Assignment 3 — Bounded Buffer |
//!
//! [`grading`] holds the autograder used by the course-session example and
//! the Table 1 reproduction.

pub mod grading;
pub mod lab1_sync;
pub mod lab2_spinlock;
pub mod lab3_numa;
pub mod lab4_procthread;
pub mod lab5_bank;
pub mod lab6_philosophers;
pub mod lab7_boundedbuffer;

pub use grading::{grade, grade_batch, GradeReport, LabId};
