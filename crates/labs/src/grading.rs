//! The autograder: score a submission for each lab the way the closed labs
//! were graded (pass = score >= 70, per the paper's Table 1 note).

use crate::{lab1_sync, lab5_bank, lab7_boundedbuffer};
use minilang::{LangError, Vm, VmConfig};

/// Instruction budget per graded run: ample for correct lab solutions
/// (which finish in well under 100k instructions) while terminating a
/// livelocked busy-wait submission quickly.
pub const GRADING_BUDGET: u64 = 400_000;

/// Compile and run under the grading budget.
fn run_budgeted(src: &str, seed: u64) -> Result<minilang::ExecOutcome, LangError> {
    let prog = minilang::compile(src)?;
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed,
            max_instructions: GRADING_BUDGET,
            ..VmConfig::default()
        },
    );
    Ok(vm.run()?)
}

/// Exploration budget used when grading: smaller than the checker default
/// (a grader runs per submission, not per investigation) but — asserted by
/// the golden tests — still enough to find the lab 5 seeded race and the
/// lab 6 deadlock.
///
/// DPOR with a preemption bound of 0 turns the 24-schedule budget into a
/// *certificate* on the reference solutions: the non-preemptive schedule
/// space of each correct lab fits inside the budget, so their reports come
/// back `exhaustive_within_bound` — a proof that no preemption-free
/// interleaving misbehaves — instead of "24 samples looked fine". Bound 0
/// is also what keeps the seeded bugs findable inside 24 schedules: the
/// all-grab-left philosophers deadlock is itself preemption-free, and the
/// lab 5 race is flagged by the vector-clock detector on the very first
/// schedule. (Higher bounds spend the whole budget on preempted prefixes
/// and push the deadlock past schedule 24 — measured, not assumed.)
pub fn grading_check_config() -> checker::CheckConfig {
    checker::CheckConfig {
        max_schedules: 24,
        max_steps: GRADING_BUDGET,
        minimize: false,
        dpor: true,
        preemption_bound: Some(0),
        strategy: checker::Strategy::Dfs,
        // Lab-sized loop bodies are thousands of branch states deep; the
        // certificate dies if the depth cap fires first.
        dfs_depth: 10_000,
        ..checker::CheckConfig::default()
    }
}

/// Run the systematic checker on a submission; `Ok(report)` iff it
/// compiles. Non-compiling submissions already fail the compile check.
pub fn explore_submission(submission: &str) -> Option<checker::CheckReport> {
    checker::check_program(submission, &grading_check_config()).ok()
}

/// The seven graded assignments of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabId {
    /// Multicore Lab 1 — Synchronization.
    Sync,
    /// Multicore Lab 2 — Spin Lock and Cache Coherence.
    SpinLock,
    /// Multicore Lab 3 — UMA and NUMA Access.
    Numa,
    /// Lab for Process and Thread Management.
    ProcThread,
    /// Lab for Basic Synchronization Methods.
    Bank,
    /// Lab for Deadlock.
    Philosophers,
    /// Programming Assignment 3 — Bounded Buffer.
    BoundedBuffer,
}

impl LabId {
    /// All labs, in Table 1 order.
    pub const ALL: [LabId; 7] = [
        LabId::Sync,
        LabId::SpinLock,
        LabId::Numa,
        LabId::ProcThread,
        LabId::Bank,
        LabId::Philosophers,
        LabId::BoundedBuffer,
    ];

    /// Table 1 row label.
    pub fn title(self) -> &'static str {
        match self {
            LabId::Sync => "Multicore Lab 1 - Synchronization with Java",
            LabId::SpinLock => "Multicore Lab 2 - Spin Lock and Cache Coherence",
            LabId::Numa => "Multicore Lab 3 - UMA and NUMA Access",
            LabId::ProcThread => "Lab for Process and Thread Management",
            LabId::Bank => "Lab for Basic Synchronization Methods",
            LabId::Philosophers => "Lab for Deadlock",
            LabId::BoundedBuffer => "Programming Assignment 3 - Bounded Buffer Problem",
        }
    }

    /// The passing rate the paper reports for this assignment (Table 1).
    pub fn paper_passing_rate(self) -> f64 {
        match self {
            LabId::Sync => 0.50,
            LabId::SpinLock => 0.67,
            LabId::Numa => 0.39,
            LabId::ProcThread => 0.44,
            LabId::Bank => 0.61,
            LabId::Philosophers => 0.50,
            LabId::BoundedBuffer => 0.56,
        }
    }

    /// Relative difficulty derived from the paper's passing rates (higher =
    /// harder); the cohort model in `assess` consumes this.
    pub fn difficulty(self) -> f64 {
        1.0 - self.paper_passing_rate()
    }
}

/// One graded submission.
#[derive(Debug, Clone, PartialEq)]
pub struct GradeReport {
    /// Which lab.
    pub lab: LabId,
    /// Score out of 100.
    pub score: u32,
    /// Pass = score >= 70 ("the percentage of the students who have scored
    /// at least 70 out of 100", Table 1 note).
    pub passed: bool,
    /// Per-check outcomes, human readable.
    pub checks: Vec<(String, bool)>,
    /// For labs graded by systematic exploration (`Bank`, `Philosophers`,
    /// `BoundedBuffer`): the checker's `exhaustive_within_bound` flag —
    /// `Some(true)` means the grading budget *proved* every schedule
    /// within the preemption bound, so "race-free" is a certificate, not a
    /// sample. `None` for labs graded without exploration. Informational:
    /// never part of the score.
    pub exploration_exhaustive: Option<bool>,
}

/// Pass threshold from the paper.
pub const PASS_SCORE: u32 = 70;

fn report(lab: LabId, checks: Vec<(String, bool)>) -> GradeReport {
    let total = checks.len().max(1) as u32;
    let good = checks.iter().filter(|(_, ok)| *ok).count() as u32;
    let score = good * 100 / total;
    GradeReport {
        lab,
        score,
        passed: score >= PASS_SCORE,
        checks,
        exploration_exhaustive: None,
    }
}

/// Grade a batch of submissions across the checker's worker pool — one
/// task per submission, each graded exactly as [`grade`] would serially,
/// so the reports are byte-identical to the one-at-a-time loop and only
/// wall-clock time changes. Inner exploration stays serial per submission:
/// fanning out across submissions already saturates the pool without
/// oversubscribing cores with nested parallelism.
pub fn grade_batch(pool: &checker::Pool, items: &[(LabId, String)]) -> Vec<GradeReport> {
    pool.map(items.to_vec(), |_, (lab, src)| grade(lab, &src))
}

/// Grade a minilang submission for `lab`. The checks encode each lab's
/// stated requirements; reference solutions in this crate score 100.
pub fn grade(lab: LabId, submission: &str) -> GradeReport {
    match lab {
        LabId::Sync => grade_counter(lab, submission, lab1_sync::EXPECTED),
        LabId::SpinLock => grade_counter(lab, submission, 450),
        LabId::Numa => grade_numa(submission),
        LabId::ProcThread => grade_proc_thread(submission),
        LabId::Bank => grade_counter(lab, submission, lab5_bank::EXPECTED),
        LabId::Philosophers => grade_philosophers(submission),
        LabId::BoundedBuffer => grade_counter(lab, submission, lab7_boundedbuffer::EXPECTED_SUM),
    }
}

/// Shared shape: the program must return the exact expected value on every
/// seed (correctness under scheduling), and must actually be concurrent.
fn grade_counter(lab: LabId, submission: &str, expected: i64) -> GradeReport {
    let mut checks = Vec::new();
    let mut all_exact = true;
    let mut compiles = true;
    let mut concurrent = false;
    for seed in 0..5u64 {
        match run_budgeted(submission, seed) {
            Ok(out) => {
                if out.peak_threads > 1 {
                    concurrent = true;
                }
                if out.main_result != minilang::Value::Int(expected) {
                    all_exact = false;
                }
            }
            Err(minilang::LangError::Runtime(_)) => {
                all_exact = false;
            }
            Err(_) => {
                compiles = false;
                all_exact = false;
                break;
            }
        }
    }
    checks.push(("compiles".to_string(), compiles));
    checks.push(("uses multiple threads".to_string(), concurrent));
    checks.push((format!("returns {expected} on every seed"), all_exact));
    match lab {
        // The synchronization labs are verdict-checked by systematic
        // exploration: a racy submission fails here even when every sampled
        // seed happened to produce the right number.
        LabId::Bank | LabId::BoundedBuffer => {
            let explored = explore_submission(submission);
            let clean = explored
                .as_ref()
                .map(|r| !r.verdict.is_failure())
                .unwrap_or(false);
            checks.push(("race-free under schedule exploration".to_string(), clean));
            let mut rep = report(lab, checks);
            rep.exploration_exhaustive =
                Some(explored.map(|r| r.exhaustive_within_bound).unwrap_or(false));
            return rep;
        }
        // Spin-lock style labs busy-wait by design; sampled correctness
        // stays double-weighted there.
        _ => checks.push((
            "correct under adversarial scheduling".to_string(),
            all_exact,
        )),
    }
    report(lab, checks)
}

fn grade_numa(submission: &str) -> GradeReport {
    // The NUMA lab's submission is a measurement program: it must run and
    // print at least UMA and NUMA figures (we check for the labels).
    let mut checks = Vec::new();
    match run_budgeted(submission, 0) {
        Ok(out) => {
            checks.push(("compiles".to_string(), true));
            checks.push(("runs to completion".to_string(), true));
            let text = out.stdout.to_lowercase();
            checks.push((
                "reports a UMA measurement".to_string(),
                text.contains("uma"),
            ));
            checks.push((
                "reports a NUMA measurement".to_string(),
                text.contains("numa"),
            ));
        }
        Err(_) => {
            checks.push(("compiles".to_string(), false));
            checks.push(("runs to completion".to_string(), false));
            checks.push(("reports a UMA measurement".to_string(), false));
            checks.push(("reports a NUMA measurement".to_string(), false));
        }
    }
    report(LabId::Numa, checks)
}

fn grade_proc_thread(submission: &str) -> GradeReport {
    // Uses the file-copy contract from lab 4: with input.txt preloaded, the
    // output file must reproduce the numbers.
    use minilang::{HostIo, MemoryIo};
    use parking_lot::Mutex;
    use std::sync::Arc;

    struct SharedIo(Arc<Mutex<MemoryIo>>);
    impl HostIo for SharedIo {
        fn read_file(&mut self, path: &str) -> Result<String, String> {
            self.0.lock().read_file(path)
        }
        fn write_file(&mut self, path: &str, content: &str) -> Result<(), String> {
            self.0.lock().write_file(path, content)
        }
        fn append_file(&mut self, path: &str, content: &str) -> Result<(), String> {
            self.0.lock().append_file(path, content)
        }
    }

    let numbers: Vec<i64> = (1..=25).collect();
    let mut checks = Vec::new();
    let compiled = minilang::compile(submission);
    checks.push(("compiles".to_string(), compiled.is_ok()));
    let mut ordered_ok = true;
    let mut threaded = false;
    if let Ok(program) = compiled {
        for seed in 0..3u64 {
            let shared = Arc::new(Mutex::new(MemoryIo::default()));
            let mut input: String = numbers.iter().map(|n| format!("{n} ")).collect();
            input.push_str("-1 ");
            shared.lock().files.insert("input.txt".into(), input);
            let mut vm = Vm::with_io(
                program.clone(),
                VmConfig {
                    seed,
                    max_instructions: GRADING_BUDGET,
                    ..VmConfig::default()
                },
                Box::new(SharedIo(Arc::clone(&shared))),
            );
            match vm.run() {
                Ok(out) => {
                    if out.peak_threads > 1 {
                        threaded = true;
                    }
                    let text = shared
                        .lock()
                        .files
                        .get("output.txt")
                        .cloned()
                        .unwrap_or_default();
                    let got: Vec<i64> = text
                        .split_whitespace()
                        .filter_map(|t| t.parse().ok())
                        .collect();
                    if got != numbers {
                        ordered_ok = false;
                    }
                }
                Err(_) => ordered_ok = false,
            }
        }
    } else {
        ordered_ok = false;
    }
    checks.push(("uses two threads".to_string(), threaded));
    checks.push(("output reproduces input in order".to_string(), ordered_ok));
    checks.push(("correct across seeds".to_string(), ordered_ok));
    report(LabId::ProcThread, checks)
}

fn grade_philosophers(submission: &str) -> GradeReport {
    use crate::lab6_philosophers::{dine, DinnerOutcome};
    let mut checks = Vec::new();
    let compiled = minilang::compile(submission).is_ok();
    checks.push(("compiles".to_string(), compiled));
    let mut never_deadlocks = compiled;
    let mut eats = false;
    if compiled {
        for seed in 0..6u64 {
            match dine(submission, seed) {
                DinnerOutcome::Completed(meals) if meals > 0 => eats = true,
                DinnerOutcome::Completed(_) => {}
                DinnerOutcome::Deadlocked(_) | DinnerOutcome::Other(_) => never_deadlocks = false,
            }
        }
    }
    checks.push(("philosophers eat".to_string(), eats));
    checks.push(("no deadlock across seeds".to_string(), never_deadlocks));
    // Systematic exploration: the naive left-then-right submission has a
    // reachable all-grab-left deadlock even on seeds where dinner finished.
    let explored = explore_submission(submission);
    let deadlock_free = explored
        .as_ref()
        .map(|r| !r.verdict.is_failure())
        .unwrap_or(false);
    checks.push((
        "deadlock-free under schedule exploration".to_string(),
        deadlock_free,
    ));
    let mut rep = report(LabId::Philosophers, checks);
    rep.exploration_exhaustive = Some(explored.map(|r| r.exhaustive_within_bound).unwrap_or(false));
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lab2_spinlock, lab6_philosophers as phil, lab7_boundedbuffer as bb};

    #[test]
    fn reference_solutions_pass() {
        assert!(grade(LabId::Sync, lab1_sync::FIXED_SOURCE).passed);
        assert!(grade(LabId::SpinLock, lab2_spinlock::TTAS_SOURCE).passed);
        assert!(
            grade(
                LabId::Bank,
                &lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked)
            )
            .passed
        );
        assert!(grade(LabId::ProcThread, crate::lab4_procthread::SOURCE).passed);
        assert!(grade(LabId::Philosophers, &phil::ordered_source(5)).passed);
        assert!(grade(LabId::BoundedBuffer, &bb::semaphore_source()).passed);
        assert!(grade(LabId::BoundedBuffer, &bb::mutex_source()).passed);
    }

    #[test]
    fn buggy_solutions_fail() {
        assert!(!grade(LabId::Sync, lab1_sync::BUGGY_SOURCE).passed);
        assert!(
            !grade(
                LabId::Bank,
                &lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy)
            )
            .passed
        );
        assert!(!grade(LabId::Philosophers, &phil::naive_source(10)).passed);
        assert!(!grade(LabId::BoundedBuffer, &bb::buggy_source()).passed);
    }

    #[test]
    fn batch_grading_matches_serial() {
        let batch: Vec<(LabId, String)> = vec![
            (LabId::Sync, lab1_sync::FIXED_SOURCE.to_string()),
            (LabId::Sync, lab1_sync::BUGGY_SOURCE.to_string()),
            (LabId::Philosophers, phil::ordered_source(5)),
            (LabId::Philosophers, phil::naive_source(10)),
            (LabId::BoundedBuffer, bb::semaphore_source()),
        ];
        let serial: Vec<GradeReport> = batch.iter().map(|(l, s)| grade(*l, s)).collect();
        for workers in [1, 3] {
            let pool = checker::Pool::new(workers);
            assert_eq!(grade_batch(&pool, &batch), serial, "{workers} workers");
        }
    }

    #[test]
    fn grading_budget_certifies_references_and_still_flags_bugs() {
        // The 24-schedule grading budget is not just a sample: under DPOR
        // with preemption bound 0, the reference solutions' bounded
        // schedule spaces fit inside it, so their reports carry the
        // exhaustive-within-bound certificate.
        for (lab, src) in [
            (
                LabId::Bank,
                lab5_bank::source(lab5_bank::BankStep::ConcurrentLocked),
            ),
            (LabId::Philosophers, phil::ordered_source(5)),
            (LabId::BoundedBuffer, bb::semaphore_source()),
        ] {
            let r = grade(lab, &src);
            assert!(r.passed, "{lab:?} reference failed: {:?}", r.checks);
            assert_eq!(
                r.exploration_exhaustive,
                Some(true),
                "{lab:?} reference not certified exhaustive within bound"
            );
        }
        // The same budget still flags every seeded-buggy variant — the
        // certificate was not bought by skipping the schedules that matter.
        for (lab, src) in [
            (
                LabId::Bank,
                lab5_bank::source(lab5_bank::BankStep::ConcurrentRacy),
            ),
            (LabId::Philosophers, phil::naive_source(10)),
            (LabId::BoundedBuffer, bb::buggy_source()),
        ] {
            let r = grade(lab, &src);
            assert!(!r.passed, "{lab:?} buggy variant passed: {:?}", r.checks);
        }
        // Labs graded without exploration carry no claim either way.
        assert_eq!(
            grade(LabId::Sync, lab1_sync::FIXED_SOURCE).exploration_exhaustive,
            None
        );
        // Same-seed grading is deterministic down to the rendered report.
        let a = grade(LabId::Philosophers, &phil::ordered_source(5));
        let b = grade(LabId::Philosophers, &phil::ordered_source(5));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn non_compiling_scores_zero_ish() {
        let r = grade(LabId::Sync, "fn main() { this is not minilang");
        assert!(!r.passed);
        assert!(r.score < 30, "score {}", r.score);
    }

    #[test]
    fn sequential_fake_fails_concurrency_check() {
        // Returning the right answer without threads must not pass Lab 1.
        let cheat = "fn main() { return 1000; }";
        let r = grade(LabId::Sync, cheat);
        assert!(!r.passed || r.score < 100, "cheat scored {}", r.score);
        assert!(r
            .checks
            .iter()
            .any(|(name, ok)| name.contains("threads") && !ok));
    }

    #[test]
    fn paper_rates_table() {
        let rates: Vec<f64> = LabId::ALL.iter().map(|l| l.paper_passing_rate()).collect();
        assert_eq!(rates, vec![0.50, 0.67, 0.39, 0.44, 0.61, 0.50, 0.56]);
        for l in LabId::ALL {
            assert!(!l.title().is_empty());
            assert!((0.0..=1.0).contains(&l.difficulty()));
        }
    }

    #[test]
    fn numa_grader_wants_measurements() {
        let good = r#"
            fn main() {
                println("UMA mean = 80 ns");
                println("NUMA mean = 130 ns");
            }
        "#;
        assert!(grade(LabId::Numa, good).passed);
        let missing = r#"fn main() { println("done"); }"#;
        assert!(!grade(LabId::Numa, missing).passed);
    }
}
