//! Programming Assignment 3 — the bounded-buffer problem.
//!
//! "Students are provided with a program of the producer-consumer problem
//! using threads ... but is not a correct solution. Students are required to
//! ... provide a scenario in which it produces an incorrect answer ... then
//! modify the program so that it solves the bounded-buffer problem using
//! (a) mutex locks, (b) semaphores" (§III.B.7).

use minilang::{compile_and_run, LangError, RuntimeError, Value};

/// Buffer capacity used by all three versions.
pub const CAPACITY: usize = 4;
/// Items produced/consumed.
pub const ITEMS: usize = 100;

/// The broken handout: busy-wait flags with a race on `count` — both the
/// classic lost-update on `count` and index corruption are possible.
pub fn buggy_source() -> String {
    template(
        "",
        "",
        r#"
    // Busy-wait until there is space, then insert. The check and the
    // insert are not atomic: both threads can be inside at once.
    while (count == CAP) { yield_now(); }
    buffer[tail % CAP] = item;
    tail = tail + 1;
    count = count + 1;"#,
        r#"
    while (count == 0) { yield_now(); }
    var item = buffer[head % CAP];
    head = head + 1;
    count = count - 1;"#,
    )
}

/// Fix (a): one mutex around every buffer operation, still busy-waiting.
pub fn mutex_source() -> String {
    template(
        "var m;",
        "    m = mutex();",
        r#"
    while (true) {
        lock(m);
        if (count < CAP) {
            buffer[tail % CAP] = item;
            tail = tail + 1;
            count = count + 1;
            unlock(m);
            return;
        }
        unlock(m);
        yield_now();
    }"#,
        r#"
    var item = 0;
    while (true) {
        lock(m);
        if (count > 0) {
            item = buffer[head % CAP];
            head = head + 1;
            count = count - 1;
            unlock(m);
            return item;
        }
        unlock(m);
        yield_now();
    }"#,
    )
}

/// Fix (b): the textbook semaphore solution — `empty`, `full`, and a mutex
/// for the buffer itself.
pub fn semaphore_source() -> String {
    template(
        "var m;\nvar empty;\nvar full;",
        "    m = mutex();\n    empty = semaphore(CAP);\n    full = semaphore(0);",
        r#"
    sem_wait(empty);
    lock(m);
    buffer[tail % CAP] = item;
    tail = tail + 1;
    count = count + 1;
    unlock(m);
    sem_post(full);"#,
        r#"
    sem_wait(full);
    lock(m);
    var item = buffer[head % CAP];
    head = head + 1;
    count = count - 1;
    unlock(m);
    sem_post(empty);
    return item;"#,
    )
}

fn template(decls: &str, init: &str, put_body: &str, get_body: &str) -> String {
    format!(
        r#"
var CAP = {CAPACITY};
var buffer;
var head = 0;
var tail = 0;
var count = 0;
var consumed_sum = 0;
var consumed_n = 0;
{decls}

fn put(item) {{{put_body}
}}

fn get() {{{get_body}
}}

fn producer(n) {{
    for (var i = 1; i <= n; i = i + 1) {{
        put(i);
    }}
}}

fn consumer(n) {{
    for (var i = 0; i < n; i = i + 1) {{
        var v = get();
        consumed_sum = consumed_sum + v;
        consumed_n = consumed_n + 1;
    }}
}}

fn main() {{
    buffer = [0, 0, 0, 0];
{init}
    var p = spawn producer({ITEMS});
    var c = spawn consumer({ITEMS});
    join(p);
    join(c);
    println("consumed ", consumed_n, " items, sum ", consumed_sum);
    return consumed_sum;
}}
"#
    )
}

/// The correct checksum: 1 + 2 + ... + ITEMS.
pub const EXPECTED_SUM: i64 = (ITEMS as i64 * (ITEMS as i64 + 1)) / 2;

/// Outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub enum BufferOutcome {
    /// Ran to completion; payload is the consumed-sum checksum.
    Sum(i64),
    /// The run deadlocked (possible for broken student variants).
    Deadlock,
    /// Another runtime error (e.g. index corruption).
    Error(String),
}

/// Execute a bounded-buffer program.
pub fn run(source: &str, seed: u64) -> BufferOutcome {
    match compile_and_run(source, seed) {
        Ok(out) => match out.main_result {
            Value::Int(v) => BufferOutcome::Sum(v),
            other => BufferOutcome::Error(format!("unexpected {other}")),
        },
        Err(LangError::Runtime(RuntimeError::Deadlock { .. })) => BufferOutcome::Deadlock,
        Err(e) => BufferOutcome::Error(e.to_string()),
    }
}

/// Fraction of seeds for which `source` produces the correct checksum.
pub fn correctness_rate(source: &str, seeds: std::ops::Range<u64>) -> f64 {
    let total = (seeds.end - seeds.start).max(1);
    let good = seeds
        .filter(|&s| run(source, s) == BufferOutcome::Sum(EXPECTED_SUM))
        .count();
    good as f64 / total as f64
}

/// Native mirror: a bounded buffer over parking_lot + condvars, exercised
/// by the benches for real-thread throughput numbers.
pub mod native {
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;

    /// A blocking bounded queue.
    pub struct BoundedBuffer<T> {
        state: Mutex<VecDeque<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        cap: usize,
    }

    impl<T> BoundedBuffer<T> {
        /// A buffer holding at most `cap` items.
        pub fn new(cap: usize) -> BoundedBuffer<T> {
            assert!(cap > 0, "capacity must be positive");
            BoundedBuffer {
                state: Mutex::new(VecDeque::with_capacity(cap)),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                cap,
            }
        }

        /// Blocking insert.
        pub fn put(&self, item: T) {
            let mut q = self.state.lock();
            while q.len() == self.cap {
                self.not_full.wait(&mut q);
            }
            q.push_back(item);
            self.not_empty.notify_one();
        }

        /// Blocking remove.
        pub fn get(&self) -> T {
            let mut q = self.state.lock();
            while q.is_empty() {
                self.not_empty.wait(&mut q);
            }
            let item = q.pop_front().expect("nonempty");
            self.not_full.notify_one();
            item
        }

        /// Current length (diagnostics).
        pub fn len(&self) -> usize {
            self.state.lock().len()
        }

        /// True when empty.
        pub fn is_empty(&self) -> bool {
            self.state.lock().is_empty()
        }
    }

    /// Drive `producers` x `consumers` threads moving `per_producer` items;
    /// returns the received checksum.
    pub fn drive(cap: usize, producers: usize, consumers: usize, per_producer: u64) -> u64 {
        use std::sync::Arc;
        let buf = Arc::new(BoundedBuffer::<u64>::new(cap));
        let total = producers as u64 * per_producer;
        let mut handles = Vec::new();
        for p in 0..producers {
            let buf = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    buf.put(p as u64 * per_producer + i + 1);
                }
            }));
        }
        let per_consumer = total / consumers as u64;
        let mut consumer_handles = Vec::new();
        for _ in 0..consumers {
            let buf = Arc::clone(&buf);
            consumer_handles.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                for _ in 0..per_consumer {
                    sum += buf.get();
                }
                sum
            }));
        }
        for h in handles {
            h.join().expect("producer ok");
        }
        consumer_handles
            .into_iter()
            .map(|h| h.join().expect("consumer ok"))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_version_misbehaves_somewhere() {
        // The handout must be demonstrably wrong: some seed yields a bad
        // checksum, a deadlock, or an index error.
        let bad = (0..16)
            .filter(|&s| run(&buggy_source(), s) != BufferOutcome::Sum(EXPECTED_SUM))
            .count();
        assert!(bad > 0, "the buggy handout never failed in 16 seeds");
    }

    #[test]
    fn mutex_fix_is_correct() {
        assert_eq!(correctness_rate(&mutex_source(), 0..10), 1.0);
    }

    #[test]
    fn semaphore_fix_is_correct() {
        assert_eq!(correctness_rate(&semaphore_source(), 0..10), 1.0);
    }

    #[test]
    fn expected_sum_arithmetic() {
        assert_eq!(EXPECTED_SUM, 5050);
    }

    #[test]
    fn native_buffer_checksum() {
        // 1..=N split across producers; sum of 1..=(p*per) items.
        let total_sum = native::drive(4, 2, 2, 500);
        let n = 1000u64;
        assert_eq!(total_sum, n * (n + 1) / 2);
    }

    #[test]
    fn native_buffer_bounded() {
        let buf = native::BoundedBuffer::new(2);
        buf.put(1);
        buf.put(2);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.get(), 1);
        assert!(!buf.is_empty());
    }
}
