//! Lab for Process and Thread Management (Chapter 6).
//!
//! "Write a program that creates two threads, one reading a text file that
//! contains a series of none-zero numbers ended by a special number -1 and
//! stores the numbers ... into an array, while the other thread write the
//! numbers in the array to a newly created text file ... Synchronization
//! must be imposed to make sure the thread that writes ... comes back to
//! read the array until -1 is encountered" (§III.B.4).

use minilang::{compile, MemoryIo, Vm, VmConfig};

/// The reference solution: reader thread parses the input file into a
/// shared array; writer thread drains it to the output file; a semaphore
/// counts available items so the writer never overtakes the reader.
pub const SOURCE: &str = r#"
var buffer;       // shared array of parsed numbers
var items;        // semaphore: how many entries are ready
var next_write = 0;

// Parse the space-separated numbers in `text` and feed them to the buffer.
fn reader() {
    var text = read_file("input.txt");
    var cur = 0;
    var have = false;
    var negative = false;
    for (var i = 0; i < len(text); i = i + 1) {
        var ch = text[i];
        if (ch == "-") {
            negative = true;
        } else if (ch == " ") {
            if (have) {
                if (negative) { cur = -cur; }
                push(buffer, cur);
                sem_post(items);
                if (cur == -1) { return; }
                cur = 0; have = false; negative = false;
            }
        } else {
            // digit: ch is a 1-char string; convert via comparison chain
            cur = cur * 10 + digit(ch);
            have = true;
        }
    }
    if (have) {
        if (negative) { cur = -cur; }
        push(buffer, cur);
        sem_post(items);
    }
}

fn digit(ch) {
    if (ch == "0") { return 0; } if (ch == "1") { return 1; }
    if (ch == "2") { return 2; } if (ch == "3") { return 3; }
    if (ch == "4") { return 4; } if (ch == "5") { return 5; }
    if (ch == "6") { return 6; } if (ch == "7") { return 7; }
    if (ch == "8") { return 8; } return 9;
}

fn writer() {
    while (true) {
        sem_wait(items);                 // wait for the reader
        var v = buffer[next_write];
        next_write = next_write + 1;
        if (v == -1) { return; }         // -1 is written-out too? No: stop.
        append_file("output.txt", str(v) + " ");
    }
}

fn main() {
    buffer = [];
    items = semaphore(0);
    var r = spawn reader();
    var w = spawn writer();
    join(r);
    join(w);
    println("copied ", next_write - 1, " numbers");
}
"#;

/// Run and verify: output must list exactly `numbers` in order.
pub fn run_copy_checked(numbers: &[i64], seed: u64) -> Result<bool, minilang::LangError> {
    use minilang::HostIo;
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// A HostIo sharing its map so the harness can inspect the output file.
    struct SharedIo(Arc<Mutex<MemoryIo>>);
    impl HostIo for SharedIo {
        fn read_file(&mut self, path: &str) -> Result<String, String> {
            self.0.lock().read_file(path)
        }
        fn write_file(&mut self, path: &str, content: &str) -> Result<(), String> {
            self.0.lock().write_file(path, content)
        }
        fn append_file(&mut self, path: &str, content: &str) -> Result<(), String> {
            self.0.lock().append_file(path, content)
        }
    }

    let mut input = String::new();
    for n in numbers {
        input.push_str(&format!("{n} "));
    }
    input.push_str("-1 ");
    let shared = Arc::new(Mutex::new(MemoryIo::default()));
    shared.lock().files.insert("input.txt".to_string(), input);
    let program = compile(SOURCE)?;
    let mut vm = Vm::with_io(
        program,
        VmConfig {
            seed,
            ..VmConfig::default()
        },
        Box::new(SharedIo(Arc::clone(&shared))),
    );
    vm.run()?;
    let out = shared
        .lock()
        .files
        .get("output.txt")
        .cloned()
        .unwrap_or_default();
    let got: Vec<i64> = out
        .split_whitespace()
        .filter_map(|t| t.parse().ok())
        .collect();
    Ok(got == numbers)
}

/// Native mirror: reader/writer OS threads over a crossbeam channel copying
/// a number stream; returns the received sequence.
pub fn native_copy(numbers: Vec<i64>) -> Vec<i64> {
    let (tx, rx) = crossbeam::channel::bounded::<i64>(8);
    let producer = std::thread::spawn(move || {
        for n in numbers {
            tx.send(n).expect("receiver alive");
        }
        tx.send(-1).expect("receiver alive");
    });
    let consumer = std::thread::spawn(move || {
        let mut out = Vec::new();
        while let Ok(v) = rx.recv() {
            if v == -1 {
                break;
            }
            out.push(v);
        }
        out
    });
    producer.join().expect("producer ok");
    consumer.join().expect("consumer ok")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_in_order_across_seeds() {
        let numbers: Vec<i64> = (1..=40).collect();
        for seed in 0..6 {
            assert!(run_copy_checked(&numbers, seed).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn handles_multi_digit_and_empty() {
        assert!(run_copy_checked(&[123, 4567, 89], 1).unwrap());
        assert!(run_copy_checked(&[], 1).unwrap());
    }

    #[test]
    fn native_copy_preserves_stream() {
        let nums: Vec<i64> = (1..=1000).collect();
        assert_eq!(native_copy(nums.clone()), nums);
    }
}
