//! End-to-end behavioral tests for the minilang pipeline: source in,
//! observable behavior out — including the concurrency pathologies the
//! course labs depend on (lost updates, deadlock, synchronization fixes).

use minilang::{
    compile, compile_and_run, LangError, MemoryIo, RuntimeError, SchedPolicy, Value, Vm, VmConfig,
};

fn run_seeded(src: &str, seed: u64) -> minilang::ExecOutcome {
    compile_and_run(src, seed).unwrap()
}

fn run_err(src: &str, seed: u64) -> RuntimeError {
    match compile_and_run(src, seed) {
        Err(LangError::Runtime(e)) => e,
        other => panic!("expected runtime error, got {other:?}"),
    }
}

// ---- sequential semantics ---------------------------------------------------

#[test]
fn arithmetic_and_printing() {
    let out = run_seeded(
        "fn main() { println(2 + 3 * 4, \" \", 10 / 3, \" \", 10 % 3); }",
        0,
    );
    assert_eq!(out.stdout, "14 3 1\n");
}

#[test]
fn string_concatenation() {
    let out = run_seeded(r#"fn main() { println("x=" + 42 + "!"); }"#, 0);
    assert_eq!(out.stdout, "x=42!\n");
}

#[test]
fn fibonacci_recursion() {
    let src = r#"
        fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
        fn main() { return fib(15); }
    "#;
    let out = run_seeded(src, 0);
    assert_eq!(out.main_result, Value::Int(610));
}

#[test]
fn while_and_for_loops_agree() {
    let src = r#"
        fn main() {
            var a = 0;
            var i = 0;
            while (i < 10) { a = a + i; i = i + 1; }
            var b = 0;
            for (var j = 0; j < 10; j = j + 1) { b = b + j; }
            println(a, ",", b);
        }
    "#;
    assert_eq!(run_seeded(src, 0).stdout, "45,45\n");
}

#[test]
fn break_continue_semantics() {
    let src = r#"
        fn main() {
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                s = s + i;
            }
            return s; // 1+3+5+7+9 = 25
        }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(25));
}

#[test]
fn arrays_read_write_len_push() {
    let src = r#"
        fn main() {
            var a = [10, 20, 30];
            a[1] = a[0] + a[2];
            push(a, 99);
            println(a, " len=", len(a), " a1=", a[1]);
        }
    "#;
    assert_eq!(run_seeded(src, 0).stdout, "[10, 40, 30, 99] len=4 a1=40\n");
}

#[test]
fn arrays_are_shared_references() {
    let src = r#"
        fn mutate(arr) { arr[0] = 777; }
        fn main() { var a = [1]; mutate(a); return a[0]; }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(777));
}

#[test]
fn short_circuit_does_not_evaluate_rhs() {
    let src = r#"
        var hits = 0;
        fn bump() { hits = hits + 1; return true; }
        fn main() {
            var x = false && bump();
            var y = true || bump();
            return hits;
        }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(0));
}

#[test]
fn else_if_chains() {
    let src = r#"
        fn grade(x) {
            if (x >= 90) { return "A"; }
            else if (x >= 80) { return "B"; }
            else if (x >= 70) { return "C"; }
            else { return "F"; }
        }
        fn main() { println(grade(95), grade(85), grade(72), grade(10)); }
    "#;
    assert_eq!(run_seeded(src, 0).stdout, "ABCF\n");
}

#[test]
fn global_initializers_run_in_order() {
    let src = r#"
        var a = 10;
        var b = a * 2;
        fn main() { return b; }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(20));
}

#[test]
fn string_indexing_and_len() {
    let src = r#"fn main() { var s = "hello"; println(s[1], len(s)); }"#;
    assert_eq!(run_seeded(src, 0).stdout, "e5\n");
}

#[test]
fn negative_and_not() {
    let src = "fn main() { println(-5 + 3, !true, !0); }";
    assert_eq!(run_seeded(src, 0).stdout, "-2falsetrue\n");
}

// ---- runtime errors ---------------------------------------------------------

#[test]
fn division_by_zero_reported() {
    assert_eq!(
        run_err("fn main() { var x = 1 / 0; }", 0),
        RuntimeError::DivisionByZero
    );
    assert_eq!(
        run_err("fn main() { var x = 1 % 0; }", 0),
        RuntimeError::DivisionByZero
    );
}

#[test]
fn index_out_of_bounds_reported() {
    let e = run_err("fn main() { var a = [1]; return a[5]; }", 0);
    assert_eq!(e, RuntimeError::IndexOutOfBounds { index: 5, len: 1 });
    let e = run_err("fn main() { var a = [1]; return a[-1]; }", 0);
    assert!(matches!(
        e,
        RuntimeError::IndexOutOfBounds { index: -1, .. }
    ));
}

#[test]
fn type_errors_reported() {
    assert!(matches!(
        run_err("fn main() { var x = true * 2; }", 0),
        RuntimeError::TypeError { .. }
    ));
    assert!(matches!(
        run_err("fn main() { lock(5); }", 0),
        RuntimeError::TypeError { .. }
    ));
    assert!(matches!(
        run_err(r#"fn main() { var x = "a" - "b"; }"#, 0),
        RuntimeError::TypeError { .. }
    ));
}

#[test]
fn unlock_without_lock_is_an_error() {
    let e = run_err("fn main() { var m = mutex(); unlock(m); }", 0);
    assert_eq!(e, RuntimeError::NotLockOwner { mutex: 0 });
}

#[test]
fn runaway_loop_hits_budget() {
    let src = "fn main() { while (true) { } }";
    let prog = compile(src).unwrap();
    let mut vm = Vm::new(
        prog,
        VmConfig {
            max_instructions: 10_000,
            ..VmConfig::default()
        },
    );
    assert!(matches!(
        vm.run(),
        Err(RuntimeError::BudgetExhausted { .. })
    ));
}

// ---- threads and scheduling ---------------------------------------------------

#[test]
fn spawn_join_returns_value() {
    let src = r#"
        fn square(n) { return n * n; }
        fn main() {
            var t = spawn square(12);
            return join(t);
        }
    "#;
    assert_eq!(run_seeded(src, 7).main_result, Value::Int(144));
}

#[test]
fn join_already_finished_thread() {
    let src = r#"
        fn quick() { return 1; }
        fn main() {
            var t = spawn quick();
            sleep(1000);
            return join(t);
        }
    "#;
    assert_eq!(run_seeded(src, 3).main_result, Value::Int(1));
}

#[test]
fn unsynchronized_counter_loses_updates() {
    // The Lab 1 / Lab 5 pathology: two threads increment a shared counter
    // 200 times each without synchronization. Under random preemption the
    // read-modify-write interleaves and updates are lost.
    let src = r#"
        var counter = 0;
        fn worker() {
            for (var i = 0; i < 200; i = i + 1) { counter = counter + 1; }
        }
        fn main() {
            var t1 = spawn worker();
            var t2 = spawn worker();
            join(t1); join(t2);
            return counter;
        }
    "#;
    let mut lost = 0;
    for seed in 0..20 {
        let out = compile_and_run(src, seed).unwrap();
        let Value::Int(v) = out.main_result else {
            panic!()
        };
        assert!(v <= 400, "counter can never exceed the true count");
        if v < 400 {
            lost += 1;
        }
    }
    assert!(
        lost > 10,
        "expected most seeds to lose updates, got {lost}/20"
    );
}

#[test]
fn mutex_fixes_the_counter() {
    let src = r#"
        var counter = 0;
        var m;
        fn worker() {
            for (var i = 0; i < 200; i = i + 1) {
                lock(m);
                counter = counter + 1;
                unlock(m);
            }
        }
        fn main() {
            m = mutex();
            var t1 = spawn worker();
            var t2 = spawn worker();
            join(t1); join(t2);
            return counter;
        }
    "#;
    for seed in 0..10 {
        assert_eq!(
            compile_and_run(src, seed).unwrap().main_result,
            Value::Int(400),
            "seed {seed}"
        );
    }
}

#[test]
fn atomic_add_fixes_the_counter() {
    let src = r#"
        var counter = 0;
        fn worker() {
            for (var i = 0; i < 200; i = i + 1) { atomic_add(counter, 1); }
        }
        fn main() {
            var t1 = spawn worker();
            var t2 = spawn worker();
            join(t1); join(t2);
            return counter;
        }
    "#;
    for seed in 0..10 {
        assert_eq!(
            compile_and_run(src, seed).unwrap().main_result,
            Value::Int(400),
            "seed {seed}"
        );
    }
}

#[test]
fn tas_spinlock_provides_mutual_exclusion() {
    // Lab 2: a test-and-set spin lock built in the language itself.
    let src = r#"
        var flag = 0;
        var counter = 0;
        fn acquire() { while (tas(flag) == 1) { yield_now(); } }
        fn release() { flag = 0; }
        fn worker() {
            for (var i = 0; i < 100; i = i + 1) {
                acquire();
                counter = counter + 1;
                release();
            }
        }
        fn main() {
            var t1 = spawn worker();
            var t2 = spawn worker();
            var t3 = spawn worker();
            join(t1); join(t2); join(t3);
            return counter;
        }
    "#;
    for seed in [0, 1, 2, 40, 41] {
        assert_eq!(
            compile_and_run(src, seed).unwrap().main_result,
            Value::Int(300),
            "seed {seed}"
        );
    }
}

#[test]
fn deadlock_detected_on_lock_cycle() {
    // Two threads acquiring two mutexes in opposite order, forced into the
    // deadly embrace with sleeps.
    let src = r#"
        var a; var b;
        fn one() { lock(a); sleep(50); lock(b); unlock(b); unlock(a); }
        fn two() { lock(b); sleep(50); lock(a); unlock(a); unlock(b); }
        fn main() {
            a = mutex(); b = mutex();
            var t1 = spawn one();
            var t2 = spawn two();
            join(t1); join(t2);
        }
    "#;
    let e = run_err(src, 0);
    let RuntimeError::Deadlock { blocked } = e else {
        panic!("expected deadlock, got {e}")
    };
    // Main waits on join; the two workers wait on each other's mutex.
    assert!(blocked.iter().any(|s| s.contains("mutex")), "{blocked:?}");
    assert!(blocked.len() >= 3, "{blocked:?}");
}

#[test]
fn self_lock_deadlocks() {
    let src = "fn main() { var m = mutex(); lock(m); lock(m); }";
    assert!(matches!(run_err(src, 0), RuntimeError::Deadlock { .. }));
}

#[test]
fn semaphore_bounds_concurrency() {
    // A binary semaphore used as a lock keeps the counter exact.
    let src = r#"
        var counter = 0;
        var s;
        fn worker() {
            for (var i = 0; i < 100; i = i + 1) {
                sem_wait(s);
                counter = counter + 1;
                sem_post(s);
            }
        }
        fn main() {
            s = semaphore(1);
            var t1 = spawn worker();
            var t2 = spawn worker();
            join(t1); join(t2);
            return counter;
        }
    "#;
    assert_eq!(run_seeded(src, 5).main_result, Value::Int(200));
}

#[test]
fn producer_consumer_over_channel() {
    let src = r#"
        var c;
        var total = 0;
        fn producer(n) {
            for (var i = 1; i <= n; i = i + 1) { send(c, i); }
            send(c, -1);
        }
        fn consumer() {
            while (true) {
                var v = recv(c);
                if (v == -1) { break; }
                total = total + v;
            }
        }
        fn main() {
            c = channel(4);
            var p = spawn producer(50);
            var q = spawn consumer();
            join(p); join(q);
            return total; // 1+..+50 = 1275
        }
    "#;
    for seed in 0..5 {
        assert_eq!(
            compile_and_run(src, seed).unwrap().main_result,
            Value::Int(1275),
            "seed {seed}"
        );
    }
}

#[test]
fn channel_capacity_blocks_producer() {
    // Producer fills a cap-1 channel and blocks until the consumer drains:
    // strict alternation means total context switches must exceed items.
    let src = r#"
        var c;
        fn producer() { for (var i = 0; i < 10; i = i + 1) { send(c, i); } }
        fn main() {
            c = channel(1);
            var p = spawn producer();
            var got = 0;
            for (var i = 0; i < 10; i = i + 1) { got = got + recv(c); }
            join(p);
            return got;
        }
    "#;
    assert_eq!(run_seeded(src, 1).main_result, Value::Int(45));
}

#[test]
fn blocked_receiver_without_sender_deadlocks() {
    let src = "fn main() { var c = channel(1); recv(c); }";
    assert!(matches!(run_err(src, 0), RuntimeError::Deadlock { .. }));
}

#[test]
fn sleep_orders_output() {
    let src = r#"
        fn late() { sleep(5000); println("late"); }
        fn main() {
            var t = spawn late();
            println("early");
            join(t);
        }
    "#;
    assert_eq!(run_seeded(src, 0).stdout, "early\nlate\n");
}

#[test]
fn thread_id_distinct() {
    let src = r#"
        var ids;
        fn w(slot) { ids[slot] = thread_id(); }
        fn main() {
            ids = [0, 0];
            var t1 = spawn w(0);
            var t2 = spawn w(1);
            join(t1); join(t2);
            if (ids[0] != ids[1]) { return 1; }
            return 0;
        }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(1));
}

#[test]
fn determinism_same_seed_same_everything() {
    let src = r#"
        var counter = 0;
        fn w() { for (var i = 0; i < 50; i = i + 1) { counter = counter + 1; } }
        fn main() {
            var t1 = spawn w();
            var t2 = spawn w();
            join(t1); join(t2);
            println("result ", counter, " rand ", rand_int(0, 1000));
            return counter;
        }
    "#;
    let a = run_seeded(src, 1234);
    let b = run_seeded(src, 1234);
    assert_eq!(a, b);
}

#[test]
fn round_robin_is_fair_and_deterministic() {
    let src = r#"
        fn w(tag) { for (var i = 0; i < 3; i = i + 1) { println(tag); yield_now(); } }
        fn main() {
            var t1 = spawn w("a");
            var t2 = spawn w("b");
            join(t1); join(t2);
        }
    "#;
    let prog = compile(src).unwrap();
    let mut vm = Vm::new(
        prog.clone(),
        VmConfig {
            policy: SchedPolicy::RoundRobin,
            ..VmConfig::default()
        },
    );
    let out1 = vm.run().unwrap();
    let mut vm2 = Vm::new(
        prog,
        VmConfig {
            policy: SchedPolicy::RoundRobin,
            ..VmConfig::default()
        },
    );
    let out2 = vm2.run().unwrap();
    assert_eq!(out1.stdout, out2.stdout);
    assert_eq!(out1.stdout.matches('a').count(), 3);
    assert_eq!(out1.stdout.matches('b').count(), 3);
}

#[test]
fn peak_threads_tracked() {
    let src = r#"
        fn w() { sleep(100); }
        fn main() {
            var ts = [0, 0, 0, 0];
            for (var i = 0; i < 4; i = i + 1) { ts[i] = spawn w(); }
            for (var i = 0; i < 4; i = i + 1) { join(ts[i]); }
        }
    "#;
    let out = run_seeded(src, 0);
    assert!(out.peak_threads >= 4, "peak {}", out.peak_threads);
}

// ---- host I/O ---------------------------------------------------------------

#[test]
fn file_io_roundtrip() {
    let src = r#"
        fn main() {
            write_file("/out.txt", "hello ");
            append_file("/out.txt", "world");
            return read_file("/out.txt");
        }
    "#;
    let out = run_seeded(src, 0);
    assert_eq!(out.main_result, Value::str("hello world"));
}

#[test]
fn read_missing_file_is_io_error() {
    let e = run_err(r#"fn main() { read_file("/nope"); }"#, 0);
    assert!(matches!(e, RuntimeError::Io(_)));
}

#[test]
fn preloaded_io_visible() {
    let mut io = MemoryIo::default();
    io.files.insert("/data.txt".into(), "42".into());
    let prog = compile(r#"fn main() { return read_file("/data.txt"); }"#).unwrap();
    let mut vm = Vm::with_io(prog, VmConfig::default(), Box::new(io));
    assert_eq!(vm.run().unwrap().main_result, Value::str("42"));
}

// ---- program inspection -------------------------------------------------------

#[test]
fn globals_inspectable_after_run() {
    let prog = compile("var total = 0; fn main() { total = 41 + 1; }").unwrap();
    let mut vm = Vm::new(prog, VmConfig::default());
    vm.run().unwrap();
    assert_eq!(vm.global("total"), Some(&Value::Int(42)));
    assert_eq!(vm.global("nope"), None);
}

#[test]
fn disassembly_renders() {
    let prog = compile("fn main() { println(1); }").unwrap();
    let text = prog.to_string();
    assert!(text.contains("fn #0 main"));
    assert!(text.contains("CallBuiltin"));
}

// ---- string/assert builtins ------------------------------------------------

#[test]
fn parse_int_and_substr() {
    let src = r#"
        fn main() {
            var s = "  -42 ";
            var v = parse_int(s);
            var t = substr("hello world", 6, 5);
            println(v, " ", t, " ", substr("abc", 1, 99), " [", substr("abc", 9, 2), "]");
        }
    "#;
    assert_eq!(run_seeded(src, 0).stdout, "-42 world bc []\n");
}

#[test]
fn parse_int_rejects_garbage() {
    assert!(matches!(
        run_err(r#"fn main() { parse_int("not a number"); }"#, 0),
        RuntimeError::TypeError { .. }
    ));
}

#[test]
fn assert_passes_and_fails() {
    assert!(compile_and_run("fn main() { assert(1 < 2); }", 0).is_ok());
    assert_eq!(
        run_err("fn main() { assert(2 < 1); }", 0),
        RuntimeError::AssertionFailed
    );
}

#[test]
fn lab4_digit_parsing_could_use_parse_int() {
    // The simpler lab-4 reader enabled by parse_int.
    let src = r#"
        fn main() {
            var total = 0;
            var text = "12 7 100";
            var cur = "";
            for (var i = 0; i <= len(text); i = i + 1) {
                var done = i == len(text);
                var space = false;
                if (!done) { if (text[i] == " ") { space = true; } }
                if (done || space) {
                    if (len(cur) > 0) { total = total + parse_int(cur); cur = ""; }
                } else {
                    cur = cur + text[i];
                }
            }
            return total;
        }
    "#;
    assert_eq!(run_seeded(src, 0).main_result, Value::Int(119));
}

// ---- condition variables ----------------------------------------------------

#[test]
fn condvar_bounded_buffer_textbook() {
    // The chapter-8 classic: bounded buffer with two condvars.
    let src = r#"
        var buffer; var count = 0; var head = 0; var tail = 0;
        var m; var not_full; var not_empty;
        var total = 0;

        fn put(v) {
            lock(m);
            while (count == 4) { cond_wait(not_full, m); }
            buffer[tail % 4] = v;
            tail = tail + 1;
            count = count + 1;
            cond_notify(not_empty);
            unlock(m);
        }

        fn get() {
            lock(m);
            while (count == 0) { cond_wait(not_empty, m); }
            var v = buffer[head % 4];
            head = head + 1;
            count = count - 1;
            cond_notify(not_full);
            unlock(m);
            return v;
        }

        fn producer(n) { for (var i = 1; i <= n; i = i + 1) { put(i); } }
        fn consumer(n) { for (var i = 0; i < n; i = i + 1) { total = total + get(); } }

        fn main() {
            buffer = [0, 0, 0, 0];
            m = mutex(); not_full = condvar(); not_empty = condvar();
            var p = spawn producer(60);
            var c = spawn consumer(60);
            join(p); join(c);
            return total;  // 1+..+60 = 1830
        }
    "#;
    for seed in 0..8 {
        let out = compile_and_run(src, seed).unwrap();
        assert_eq!(out.main_result, Value::Int(1830), "seed {seed}");
    }
}

#[test]
fn cond_wait_requires_held_mutex() {
    let src = "fn main() { var m = mutex(); var cv = condvar(); cond_wait(cv, m); }";
    assert!(matches!(run_err(src, 0), RuntimeError::NotLockOwner { .. }));
}

#[test]
fn cond_wait_without_notify_deadlocks() {
    let src = r#"
        fn main() {
            var m = mutex(); var cv = condvar();
            lock(m);
            cond_wait(cv, m);
        }
    "#;
    let e = run_err(src, 0);
    let RuntimeError::Deadlock { blocked } = e else {
        panic!("{e}")
    };
    assert!(blocked.iter().any(|b| b.contains("condvar")), "{blocked:?}");
}

#[test]
fn notify_wakes_exactly_one_broadcast_wakes_all() {
    let src = r#"
        var m; var cv; var woke = 0; var ready = 0;
        fn waiter() {
            lock(m);
            atomic_add(ready, 1);
            cond_wait(cv, m);
            woke = woke + 1;
            unlock(m);
        }
        fn main() {
            m = mutex(); cv = condvar();
            var a = spawn waiter(); var b = spawn waiter(); var c = spawn waiter();
            while (ready < 3) { sleep(10); }
            sleep(50);
            lock(m); cond_notify(cv); unlock(m);
            sleep(2000);
            var after_one = woke;
            lock(m); cond_broadcast(cv); unlock(m);
            join(a); join(b); join(c);
            return after_one * 10 + woke;
        }
    "#;
    for seed in 0..6 {
        let out = compile_and_run(src, seed).unwrap();
        // after_one == 1, final woke == 3 -> 13.
        assert_eq!(out.main_result, Value::Int(13), "seed {seed}");
    }
}

#[test]
fn mesa_semantics_rechecks_predicate() {
    // Two consumers, one item: exactly one consumes; the other must loop
    // back to waiting (Mesa semantics) instead of consuming garbage.
    let src = r#"
        var m; var cv; var items = 0; var consumed = 0;
        fn consumer() {
            lock(m);
            while (items == 0) { cond_wait(cv, m); }
            items = items - 1;
            consumed = consumed + 1;
            unlock(m);
        }
        fn main() {
            m = mutex(); cv = condvar();
            var a = spawn consumer();
            var b = spawn consumer();
            sleep(500);
            lock(m);
            items = 1;
            cond_broadcast(cv);   // wakes BOTH; only one may take the item
            unlock(m);
            sleep(2000);
            lock(m);
            items = 1;
            cond_broadcast(cv);
            unlock(m);
            join(a); join(b);
            return consumed;
        }
    "#;
    for seed in 0..6 {
        let out = compile_and_run(src, seed).unwrap();
        assert_eq!(out.main_result, Value::Int(2), "seed {seed}");
    }
}
