//! Scheduler-refactor regression pins: the external-scheduler API added
//! for the checker (step_thread / next_op / events / replay) must not
//! change what `Vm::run` produces — same seed, same policy, same outcome —
//! and the new recording machinery must round-trip faithfully.

use minilang::{
    compile, compile_and_run, MemLoc, OpKind, OpObj, SchedPolicy, Vm, VmConfig, VmEvent,
};

const RACY_COUNTER: &str = r#"
var counter = 0;
fn bump() {
    var i = 0;
    while (i < 40) { counter = counter + 1; i = i + 1; }
}
fn main() {
    var a = spawn bump();
    var b = spawn bump();
    join(a);
    join(b);
    println(counter);
    return counter;
}
"#;

#[test]
fn same_seed_random_preempt_is_identical() {
    // The RNG consumption pattern of the run loop is load-bearing: two
    // runs with the same seed must interleave identically.
    for seed in [0u64, 7, 1234, 0xdead_beef] {
        let a = compile_and_run(RACY_COUNTER, seed).unwrap();
        let b = compile_and_run(RACY_COUNTER, seed).unwrap();
        assert_eq!(a.stdout, b.stdout, "seed {seed}: stdout must match");
        assert_eq!(a.main_result, b.main_result, "seed {seed}");
        assert_eq!(a.executed, b.executed, "seed {seed}");
        assert_eq!(a.context_switches, b.context_switches, "seed {seed}");
        assert_eq!(a.peak_threads, b.peak_threads, "seed {seed}");
    }
}

#[test]
fn different_seeds_still_find_the_race() {
    // Sanity that RandomPreempt still explores: across seeds the racy
    // counter must lose updates at least once.
    let lost = (0..12u64)
        .filter_map(|seed| compile_and_run(RACY_COUNTER, seed).ok())
        .any(|out| out.main_result != minilang::Value::Int(80));
    assert!(
        lost,
        "unlocked counter never lost an update across 12 seeds"
    );
}

#[test]
fn round_robin_is_seed_independent() {
    let prog = compile(RACY_COUNTER).unwrap();
    let run = |seed| {
        let cfg = VmConfig {
            seed,
            policy: SchedPolicy::RoundRobin,
            ..VmConfig::default()
        };
        Vm::new(prog.clone(), cfg).run().unwrap()
    };
    let a = run(1);
    let b = run(99);
    assert_eq!(a.stdout, b.stdout, "round-robin must not consult the seed");
    assert_eq!(a.context_switches, b.context_switches);
}

#[test]
fn recorded_schedule_replays_to_the_same_outcome() {
    // Record a full RandomPreempt run, then feed the (tid, quantum) trace
    // to Vm::replay on a fresh VM: same stdout, same result, same peak.
    let prog = compile(RACY_COUNTER).unwrap();
    for seed in [3u64, 17, 99] {
        let cfg = VmConfig {
            seed,
            ..VmConfig::default()
        };
        let mut vm = Vm::new(prog.clone(), cfg);
        vm.set_recording(true);
        let recorded = vm.run().unwrap();
        let schedule = vm.drain_schedule();
        assert!(!schedule.is_empty(), "recording captured no slices");

        let mut replayer = Vm::new(prog.clone(), cfg);
        replayer.replay(&schedule).unwrap();
        assert!(replayer.all_finished(), "replay must run to completion");
        let replayed = replayer.outcome();
        assert_eq!(replayed.stdout, recorded.stdout, "seed {seed}");
        assert_eq!(replayed.main_result, recorded.main_result, "seed {seed}");
        assert_eq!(replayed.peak_threads, recorded.peak_threads, "seed {seed}");
    }
}

#[test]
fn events_capture_the_synchronization_story() {
    let src = r#"
        var n = 0;
        var m;
        fn w() { lock(m); n = n + 1; unlock(m); }
        fn main() {
            m = mutex();
            var t = spawn w();
            join(t);
            return n;
        }
    "#;
    let prog = compile(src).unwrap();
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed: 0,
            ..VmConfig::default()
        },
    );
    vm.set_recording(true);
    let out = vm.run().unwrap();
    assert_eq!(out.main_result, minilang::Value::Int(1));
    let events = vm.drain_events();
    let has = |f: &dyn Fn(&VmEvent) -> bool| events.iter().any(f);
    assert!(has(&|e| matches!(
        e,
        VmEvent::Spawned {
            parent: 0,
            child: 1
        }
    )));
    assert!(has(&|e| matches!(e, VmEvent::LockAcq { tid: 1, .. })));
    assert!(has(&|e| matches!(
        e,
        VmEvent::Write {
            tid: 1,
            loc: MemLoc::Global(_)
        }
    )));
    assert!(has(&|e| matches!(e, VmEvent::LockRel { tid: 1, .. })));
    assert!(has(&|e| matches!(e, VmEvent::Joined { tid: 0, target: 1 })));
}

#[test]
fn recording_off_keeps_buffers_empty() {
    let prog = compile(RACY_COUNTER).unwrap();
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed: 5,
            ..VmConfig::default()
        },
    );
    vm.run().unwrap();
    assert!(vm.drain_events().is_empty(), "no recording unless enabled");
    assert!(vm.drain_schedule().is_empty());
}

#[test]
fn next_op_peeks_without_perturbing() {
    let src = r#"
        var n = 0;
        fn main() { n = 7; return n; }
    "#;
    let prog = compile(src).unwrap();
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed: 0,
            quantum: 1,
            ..VmConfig::default()
        },
    );
    // Drive manually: the global initializer writes, main writes again,
    // then the return reads it back.
    let mut kinds = Vec::new();
    let mut guard = 0;
    while !vm.all_finished() {
        guard += 1;
        assert!(guard < 1000, "manual drive runaway");
        if let Some(op) = vm.next_op(0) {
            if let OpObj::Mem(MemLoc::Global(_)) = op.obj {
                kinds.push(op.kind);
            }
        }
        vm.step_thread(0, 1).unwrap();
    }
    assert_eq!(
        kinds,
        vec![OpKind::Write, OpKind::Write, OpKind::Read],
        "init store, main store, then load of the global"
    );
    assert_eq!(vm.outcome().main_result, minilang::Value::Int(7));
}
