//! Recursive-descent parser: tokens to AST.

use crate::ast::*;
use crate::error::{ParseError, Pos};
use crate::lexer::{Tok, Token};

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---- grammar ----------------------------------------------------------

    fn program(&mut self) -> Result<ProgramAst, ParseError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        while self.peek() != &Tok::Eof {
            match self.peek() {
                Tok::Var => {
                    let pos = self.pos();
                    self.bump();
                    let name = self.ident()?;
                    let init = if self.peek() == &Tok::Assign {
                        self.bump();
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.eat(&Tok::Semi)?;
                    globals.push(GlobalDecl { name, init, pos });
                }
                Tok::Fn => {
                    functions.push(self.fn_decl()?);
                }
                other => {
                    return Err(self.err(format!(
                        "expected `fn` or `var` at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(ProgramAst { globals, functions })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, ParseError> {
        let pos = self.pos();
        self.eat(&Tok::Fn)?;
        let name = self.ident()?;
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ident()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            pos,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(self.err("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let name = self.ident()?;
                let init = if self.peek() == &Tok::Assign {
                    self.bump();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Var { name, init, pos })
            }
            Tok::If => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Tok::Else {
                    self.bump();
                    if self.peek() == &Tok::If {
                        // `else if` chains as a single-statement else block.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            Tok::While => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::For => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    self.bump();
                    None
                } else {
                    // init is a var decl or simple statement; its own `;`.
                    Some(Box::new(self.simple_stmt_semi()?))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.eat(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Tok::Break => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Continue => {
                self.bump();
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            _ => self.simple_stmt_semi(),
        }
    }

    /// A var/assignment/expression statement terminated by `;`.
    fn simple_stmt_semi(&mut self) -> Result<Stmt, ParseError> {
        if self.peek() == &Tok::Var {
            let pos = self.pos();
            self.bump();
            let name = self.ident()?;
            let init = if self.peek() == &Tok::Assign {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            self.eat(&Tok::Semi)?;
            return Ok(Stmt::Var { name, init, pos });
        }
        let s = self.simple_stmt_no_semi()?;
        self.eat(&Tok::Semi)?;
        Ok(s)
    }

    /// An assignment or expression statement without the trailing `;`
    /// (for-loop steps).
    fn simple_stmt_no_semi(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        let e = self.expr()?;
        if self.peek() == &Tok::Assign {
            self.bump();
            let value = self.expr()?;
            let target = match e {
                Expr::Name(n, _) => LValue::Name(n),
                Expr::Index { array, index, .. } => LValue::Index { array, index },
                other => {
                    return Err(ParseError {
                        pos: other.pos(),
                        message: "invalid assignment target".into(),
                    })
                }
            };
            Ok(Stmt::Assign { target, value, pos })
        } else {
            Ok(Stmt::Expr(e))
        }
    }

    // ---- expressions (precedence climbing) --------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            let pos = self.pos();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.peek() == &Tok::AndAnd {
            let pos = self.pos();
            self.bump();
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.comparison()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    pos,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Un {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    pos,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while let Tok::LBracket = self.peek() {
            let pos = self.pos();
            self.bump();
            let index = self.expr()?;
            self.eat(&Tok::RBracket)?;
            e = Expr::Index {
                array: Box::new(e),
                index: Box::new(index),
                pos,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, pos))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s, pos))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::Bool(true, pos))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::Bool(false, pos))
            }
            Tok::Spawn => {
                self.bump();
                let name = self.ident()?;
                self.eat(&Tok::LParen)?;
                let args = self.args()?;
                Ok(Expr::Spawn { name, args, pos })
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let args = self.args()?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Name(name, pos))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RBracket)?;
                Ok(Expr::Array(items, pos))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }

    /// Call arguments, consuming the trailing `)`.
    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        Ok(args)
    }
}

/// Parse a full token stream (as produced by [`crate::lexer::lex`]).
pub fn parse(tokens: Vec<Token>) -> Result<ProgramAst, ParseError> {
    assert!(
        matches!(tokens.last(), Some(Token { tok: Tok::Eof, .. })),
        "token stream must end with Eof"
    );
    let mut p = Parser { toks: tokens, i: 0 };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ProgramAst {
        parse(lex(src).unwrap()).unwrap()
    }

    fn parse_err(src: &str) -> ParseError {
        parse(lex(src).unwrap()).unwrap_err()
    }

    #[test]
    fn empty_program() {
        let p = parse_src("");
        assert!(p.globals.is_empty() && p.functions.is_empty());
    }

    #[test]
    fn globals_and_function() {
        let p = parse_src("var counter = 0; var m; fn main() { }");
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].name, "counter");
        assert!(p.globals[1].init.is_none());
        assert_eq!(p.functions[0].name, "main");
    }

    #[test]
    fn precedence() {
        let p = parse_src("fn f() { var x = 1 + 2 * 3 < 7 == true; }");
        // ((1 + (2*3)) < 7) == true
        let Stmt::Var { init: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        let Expr::Bin {
            op: BinOp::Eq, lhs, ..
        } = e
        else {
            panic!("{e:?}")
        };
        let Expr::Bin {
            op: BinOp::Lt,
            lhs: add,
            ..
        } = lhs.as_ref()
        else {
            panic!()
        };
        let Expr::Bin {
            op: BinOp::Add,
            rhs: mul,
            ..
        } = add.as_ref()
        else {
            panic!()
        };
        assert!(matches!(mul.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn short_circuit_ops_parse() {
        let p = parse_src("fn f() { var x = a && b || !c; }");
        let Stmt::Var { init: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Or(..)));
    }

    #[test]
    fn if_else_chain() {
        let p = parse_src("fn f(x) { if (x < 0) { return 1; } else if (x == 0) { return 2; } else { return 3; } }");
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn for_loop_forms() {
        parse_src("fn f() { for (var i = 0; i < 10; i = i + 1) { } }");
        parse_src("fn f() { for (;;) { break; } }");
        parse_src("fn f() { for (i = 0; i < 3;) { i = i + 1; } }");
    }

    #[test]
    fn spawn_and_calls() {
        let p = parse_src("fn w(n) { } fn main() { var t = spawn w(5); join(t); }");
        let Stmt::Var {
            init: Some(Expr::Spawn { name, args, .. }),
            ..
        } = &p.functions[1].body[0]
        else {
            panic!()
        };
        assert_eq!(name, "w");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn index_assignment() {
        let p = parse_src("fn f() { var a = [1, 2, 3]; a[0] = a[1] + a[2]; }");
        let Stmt::Assign {
            target: LValue::Index { .. },
            ..
        } = &p.functions[0].body[1]
        else {
            panic!()
        };
    }

    #[test]
    fn nested_blocks_scope() {
        let p = parse_src("fn f() { { var x = 1; } }");
        assert!(matches!(&p.functions[0].body[0], Stmt::Block(_)));
    }

    #[test]
    fn error_messages_are_positioned() {
        let e = parse_err("fn f() { var = 3; }");
        assert!(e.message.contains("identifier"), "{}", e.message);
        assert_eq!(e.pos.line, 1);
        let e = parse_err("fn f() { 1 + ; }");
        assert!(e.message.contains("expression"), "{}", e.message);
        let e = parse_err("var x = 1");
        assert!(e.message.contains("`;`"), "{}", e.message);
        let e = parse_err("fn f() { (1 = 2); }");
        assert!(e.message.contains("`)`"), "{}", e.message);
    }

    #[test]
    fn unclosed_block_detected() {
        let e = parse_err("fn f() { var x = 1;");
        assert!(e.message.contains("end of input"), "{}", e.message);
    }

    #[test]
    fn top_level_statement_rejected() {
        let e = parse_err("x = 1;");
        assert!(e.message.contains("top level"), "{}", e.message);
    }
}
