//! The abstract syntax tree produced by the parser.

use crate::error::Pos;

/// A whole compilation unit: top-level globals and functions.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramAst {
    /// Top-level `var` declarations (become shared globals).
    pub globals: Vec<GlobalDecl>,
    /// Function definitions.
    pub functions: Vec<FnDecl>,
}

/// A top-level `var name = expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    /// Variable name.
    pub name: String,
    /// Optional initializer (defaults to integer 0).
    pub init: Option<Expr>,
    /// Source position.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body block.
    pub body: Vec<Stmt>,
    /// Source position.
    pub pos: Pos,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var name = expr;` (local declaration).
    Var {
        /// Local name.
        name: String,
        /// Initializer (defaults to 0 when absent).
        init: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `lhs = expr;` where lhs is a name or index expression.
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// A bare expression evaluated for effect.
    Expr(Expr),
    /// `if (cond) {..} else {..}`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `while (cond) {..}`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `for (init; cond; step) {..}` — all three parts optional.
    For {
        /// Initialization statement.
        init: Option<Box<Stmt>>,
        /// Continuation condition (defaults true).
        cond: Option<Expr>,
        /// Step statement.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `return expr?;`
    Return {
        /// Value (defaults to 0).
        value: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `break;`
    Break(Pos),
    /// `continue;`
    Continue(Pos),
    /// A nested block `{ .. }` with its own local scope.
    Block(Vec<Stmt>),
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain variable.
    Name(String),
    /// `array[index]`.
    Index {
        /// The array expression (usually a name).
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (also string concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// String literal.
    Str(String, Pos),
    /// Variable reference.
    Name(String, Pos),
    /// Array literal `[a, b, c]`.
    Array(Vec<Expr>, Pos),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>, Pos),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>, Pos),
    /// Unary operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Function or builtin call.
    Call {
        /// Callee name (user function or builtin).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `spawn f(args)` — starts a thread, evaluates to its thread id.
    Spawn {
        /// Target function name.
        name: String,
        /// Arguments (evaluated in the spawning thread).
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `array[index]` read.
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Position.
        pos: Pos,
    },
}

impl Expr {
    /// Best-effort source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Bool(_, p)
            | Expr::Str(_, p)
            | Expr::Name(_, p)
            | Expr::Array(_, p)
            | Expr::And(_, _, p)
            | Expr::Or(_, _, p) => *p,
            Expr::Bin { pos, .. }
            | Expr::Un { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Spawn { pos, .. }
            | Expr::Index { pos, .. } => *pos,
        }
    }
}
