//! The compiled form: a flat instruction stream per function.
//!
//! Preemption happens *between instructions*, so instruction granularity
//! defines the observable interleavings: `x = x + 1` on a global compiles
//! to `LoadGlobal, Const, Add, StoreGlobal` — four points at which another
//! thread can run, which is exactly how the lost-update race of Lab 1/Lab 5
//! becomes observable.

use crate::value::Value;
use std::fmt;

/// Identifies a user function within a [`Program`].
pub type FnId = usize;

/// The builtin operations surfaced to the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `print(v, ...)` — write values, no newline.
    Print,
    /// `println(v, ...)` — write values then newline.
    Println,
    /// `len(array|string)`.
    Len,
    /// `push(array, v)`.
    Push,
    /// `str(v)` — render to string.
    ToStr,
    /// `mutex()` — create a mutex.
    MutexNew,
    /// `lock(m)` — blocking acquire.
    Lock,
    /// `unlock(m)` — release (owner only).
    Unlock,
    /// `semaphore(n)` — counting semaphore with initial count n.
    SemNew,
    /// `sem_wait(s)` — P operation.
    SemWait,
    /// `sem_post(s)` — V operation.
    SemPost,
    /// `channel(cap)` — bounded FIFO channel.
    ChanNew,
    /// `send(c, v)` — blocking send.
    Send,
    /// `recv(c)` — blocking receive.
    Recv,
    /// `join(t)` — wait for a thread to finish, yielding its return value.
    Join,
    /// `tas(name)` is compiled to [`Instr::Tas`]; this variant exists only
    /// for arity checking before lowering.
    Tas,
    /// `atomic_add(name, delta)` lowered to [`Instr::AtomicAdd`].
    AtomicAdd,
    /// `yield_now()` — give up the remainder of the quantum.
    YieldNow,
    /// `sleep(n)` — deschedule for n scheduler ticks.
    Sleep,
    /// `thread_id()` — the calling green thread's id.
    ThreadId,
    /// `rand_int(lo, hi)` — deterministic per-VM-seed uniform integer.
    RandInt,
    /// `read_file(path)` — host I/O hook.
    ReadFile,
    /// `write_file(path, s)` — host I/O hook.
    WriteFile,
    /// `append_file(path, s)` — host I/O hook.
    AppendFile,
    /// `now()` — current VM tick (instructions executed so far).
    Now,
    /// `read_line()` — pop the next queued stdin line ("" when exhausted).
    ReadLine,
    /// `parse_int(s)` — parse a decimal integer (runtime error when malformed).
    ParseInt,
    /// `substr(s, start, len)` — substring by byte range (clamped).
    Substr,
    /// `assert(cond)` — raise a runtime error when falsy.
    Assert,
    /// `condvar()` — create a condition variable.
    CondNew,
    /// `cond_wait(cv, m)` — atomically release `m` and sleep; re-acquires
    /// `m` before returning (Mesa semantics: always re-check the predicate).
    CondWait,
    /// `cond_notify(cv)` — wake one waiter.
    CondNotify,
    /// `cond_broadcast(cv)` — wake all waiters.
    CondBroadcast,
}

impl Builtin {
    /// Resolve a source-level name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "print" => Builtin::Print,
            "println" => Builtin::Println,
            "len" => Builtin::Len,
            "push" => Builtin::Push,
            "str" => Builtin::ToStr,
            "mutex" => Builtin::MutexNew,
            "lock" => Builtin::Lock,
            "unlock" => Builtin::Unlock,
            "semaphore" => Builtin::SemNew,
            "sem_wait" => Builtin::SemWait,
            "sem_post" => Builtin::SemPost,
            "channel" => Builtin::ChanNew,
            "send" => Builtin::Send,
            "recv" => Builtin::Recv,
            "join" => Builtin::Join,
            "tas" => Builtin::Tas,
            "atomic_add" => Builtin::AtomicAdd,
            "yield_now" => Builtin::YieldNow,
            "sleep" => Builtin::Sleep,
            "thread_id" => Builtin::ThreadId,
            "rand_int" => Builtin::RandInt,
            "read_file" => Builtin::ReadFile,
            "write_file" => Builtin::WriteFile,
            "append_file" => Builtin::AppendFile,
            "now" => Builtin::Now,
            "read_line" => Builtin::ReadLine,
            "parse_int" => Builtin::ParseInt,
            "substr" => Builtin::Substr,
            "assert" => Builtin::Assert,
            "condvar" => Builtin::CondNew,
            "cond_wait" => Builtin::CondWait,
            "cond_notify" => Builtin::CondNotify,
            "cond_broadcast" => Builtin::CondBroadcast,
            _ => return None,
        })
    }

    /// `(min_args, max_args)` accepted.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Builtin::Print | Builtin::Println => (0, usize::MAX),
            Builtin::Len
            | Builtin::ToStr
            | Builtin::Lock
            | Builtin::Unlock
            | Builtin::SemWait
            | Builtin::SemPost
            | Builtin::Recv
            | Builtin::Join
            | Builtin::Tas
            | Builtin::Sleep
            | Builtin::ParseInt
            | Builtin::Assert
            | Builtin::ReadFile => (1, 1),
            Builtin::Push
            | Builtin::Send
            | Builtin::AtomicAdd
            | Builtin::RandInt
            | Builtin::WriteFile
            | Builtin::AppendFile => (2, 2),
            Builtin::MutexNew
            | Builtin::YieldNow
            | Builtin::ThreadId
            | Builtin::Now
            | Builtin::ReadLine
            | Builtin::CondNew => (0, 0),
            Builtin::CondWait => (2, 2),
            Builtin::CondNotify | Builtin::CondBroadcast => (1, 1),
            Builtin::SemNew | Builtin::ChanNew => (1, 1),
            Builtin::Substr => (3, 3),
        }
    }
}

/// One VM instruction. `Copy` matters: the interpreter fetches one of
/// these per step, and a dense copyable opcode keeps that fetch a plain
/// 16-byte move instead of a clone call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push constant-pool entry.
    Const(usize),
    /// Push local slot.
    LoadLocal(usize),
    /// Pop into local slot.
    StoreLocal(usize),
    /// Push global slot (a *shared-memory read*).
    LoadGlobal(usize),
    /// Pop into global slot (a *shared-memory write*).
    StoreGlobal(usize),
    /// Arithmetic/comparison: pop rhs, pop lhs, push result.
    Add,
    /// Subtract.
    Sub,
    /// Multiply.
    Mul,
    /// Divide (checked).
    Div,
    /// Modulo (checked).
    Mod,
    /// Negate top of stack.
    Neg,
    /// Logical not.
    Not,
    /// Equality test.
    CmpEq,
    /// Inequality test.
    CmpNe,
    /// Less-than.
    CmpLt,
    /// Less-or-equal.
    CmpLe,
    /// Greater-than.
    CmpGt,
    /// Greater-or-equal.
    CmpGe,
    /// Unconditional jump to absolute offset.
    Jump(usize),
    /// Pop; jump when falsy.
    JumpIfFalse(usize),
    /// Pop; jump when truthy (for `||` short circuit; leaves nothing).
    JumpIfTrue(usize),
    /// Duplicate top of stack.
    Dup,
    /// Discard top of stack.
    Pop,
    /// Call user function with `argc` stacked arguments.
    Call {
        /// Target function.
        func: FnId,
        /// Argument count.
        argc: usize,
    },
    /// Invoke a builtin with `argc` stacked arguments; pushes a result.
    CallBuiltin {
        /// Which builtin.
        builtin: Builtin,
        /// Argument count.
        argc: usize,
    },
    /// Spawn a green thread running `func` with `argc` stacked arguments;
    /// pushes the thread handle.
    Spawn {
        /// Target function.
        func: FnId,
        /// Argument count.
        argc: usize,
    },
    /// Return; pops the return value (functions always leave one).
    Return,
    /// Pop `n` items into a new array (in declaration order).
    MakeArray(usize),
    /// Pop index, pop array, push element.
    IndexGet,
    /// Pop value, pop index, pop array; store element.
    IndexSet,
    /// Atomic test-and-set on global slot: push old value, set slot to 1.
    /// One instruction == one atomic action — that is the whole point.
    Tas(usize),
    /// Atomic add on global slot: pop delta, push old value, add delta.
    AtomicAdd(usize),
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name (for traces and errors).
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
    /// Total local slots (params + locals).
    pub locals: usize,
    /// Instruction stream.
    pub code: Vec<Instr>,
}

/// A compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Global slot names (index = slot).
    pub global_names: Vec<String>,
    /// Functions; `entry` and `init` index into this.
    pub functions: Vec<Function>,
    /// Index of `main`.
    pub entry: FnId,
    /// Index of the synthesized global-initializer function (runs first).
    pub init: FnId,
}

impl Program {
    /// Look up a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FnId> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Look up a global slot by name.
    pub fn find_global(&self, name: &str) -> Option<usize> {
        self.global_names.iter().position(|n| n == name)
    }

    /// Total instruction count across functions (reporting).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

impl fmt::Display for Program {
    /// Disassembly listing, for debugging and the portal's "view compiled
    /// output" feature.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (fi, func) in self.functions.iter().enumerate() {
            writeln!(
                f,
                "fn #{fi} {}({} args, {} locals):",
                func.name, func.arity, func.locals
            )?;
            for (pc, ins) in func.code.iter().enumerate() {
                writeln!(f, "  {pc:4}: {ins:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_name_resolution() {
        assert_eq!(Builtin::from_name("lock"), Some(Builtin::Lock));
        assert_eq!(Builtin::from_name("sem_wait"), Some(Builtin::SemWait));
        assert_eq!(Builtin::from_name("nonsense"), None);
    }

    #[test]
    fn arity_table() {
        assert_eq!(Builtin::MutexNew.arity(), (0, 0));
        assert_eq!(Builtin::Send.arity(), (2, 2));
        assert_eq!(Builtin::Print.arity().1, usize::MAX);
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            consts: vec![],
            global_names: vec!["a".into(), "b".into()],
            functions: vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 0,
                code: vec![],
            }],
            entry: 0,
            init: 0,
        };
        assert_eq!(p.find_function("main"), Some(0));
        assert_eq!(p.find_global("b"), Some(1));
        assert_eq!(p.find_global("zz"), None);
        assert_eq!(p.code_size(), 0);
    }
}
