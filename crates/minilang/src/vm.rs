//! The virtual machine: preemptive green threads over bytecode.
//!
//! All scheduling decisions flow from one seeded RNG, so every execution —
//! including every data race and every deadlock — replays exactly given the
//! same program, config and seed. Preemption happens between instructions;
//! a blocked operation (lock, sem_wait, send, recv, join) leaves the pc in
//! place and re-executes when the thread is next scheduled, which models
//! barging (unfair) synchronization like real futexes do.

use crate::bytecode::{Builtin, FnId, Function, Instr, Program};
use crate::error::RuntimeError;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// A shared-memory location, as seen by the access log.
///
/// Arrays are identified by a dense id assigned on first recorded access
/// (stable within one VM run), so two runs of the same schedule name the
/// same locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLoc {
    /// A program global, by slot.
    Global(usize),
    /// One array element: (array id, index).
    Elem(usize, i64),
    /// An array's structure (length): `push` writes it, `len` reads it.
    ArrayStruct(usize),
}

/// What an operation targets — the "object" half of an [`OpKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpObj {
    /// A memory location.
    Mem(MemLoc),
    /// A mutex.
    Mutex(usize),
    /// A semaphore.
    Sem(usize),
    /// A channel.
    Chan(usize),
    /// A condition variable.
    Cond(usize),
    /// A thread (join target).
    Thread(usize),
    /// No specific object (spawn, yield, opaque ops).
    None,
}

/// The kind half of an [`OpKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Plain shared read.
    Read,
    /// Plain shared write.
    Write,
    /// Atomic read-modify-write (`tas` / `atomic_add`).
    AtomicRw,
    /// `lock(m)`.
    Lock,
    /// `unlock(m)`.
    Unlock,
    /// `sem_wait(s)`.
    SemWait,
    /// `sem_post(s)`.
    SemPost,
    /// `send(c, v)`.
    Send,
    /// `recv(c)`.
    Recv,
    /// `join(t)`.
    Join,
    /// `cond_wait(cv, m)`.
    CondWait,
    /// `cond_notify` / `cond_broadcast`.
    CondNotify,
    /// `spawn f(...)`.
    Spawn,
    /// `yield_now()` / `sleep(n)`.
    Yield,
    /// Host I/O or stdin (ordering matters, object unknown).
    Io,
    /// Visible for scheduling purposes but not classifiable (e.g. a type
    /// error about to happen, or `rand_int`, whose shared-RNG draw order
    /// must be fixed by the schedule). Conflicts with everything.
    Opaque,
}

/// The next *visible* operation of a thread: the unit a systematic
/// scheduler branches on. Invisible (thread-local) instructions return no
/// key and can be run eagerly without affecting other threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpKey {
    /// Operation kind.
    pub kind: OpKind,
    /// Operation target.
    pub obj: OpObj,
}

impl OpKey {
    /// Do two visible operations commute — would executing them in either
    /// order from the same state reach the same state and emit the same
    /// events? This is the independence relation external schedulers
    /// (sleep sets, partial-order reduction) reduce with, so it must be
    /// sound: claiming commutativity for a conflicting pair hides
    /// interleavings. Conservative on the unknown: opaque and I/O
    /// operations commute with nothing.
    pub fn commutes_with(&self, other: &OpKey) -> bool {
        if self.kind == OpKind::Opaque || other.kind == OpKind::Opaque {
            return false; // shared RNG draws, imminent type errors, ...
        }
        if self.kind == OpKind::Io || other.kind == OpKind::Io {
            return false; // stdout / host-file order is observable
        }
        match (self.obj, other.obj) {
            // Spawn/yield touch no shared object. (A spawned thread's ops
            // are ordered after the spawn by the happens-before relation,
            // which reducers must consult separately.)
            (OpObj::None, _) | (_, OpObj::None) => true,
            (x, y) if x != y => true,
            // Same object: only read/read commutes.
            _ => self.kind == OpKind::Read && other.kind == OpKind::Read,
        }
    }
}

/// What a thread is (or would be) waiting on, for wait-for-graph analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitTarget {
    /// Waiting for a mutex (owner is [`Vm::mutex_owner`]).
    Mutex(usize),
    /// Waiting for a semaphore permit.
    Sem(usize),
    /// Waiting for channel capacity.
    SendCap(usize),
    /// Waiting for a channel message.
    RecvData(usize),
    /// Waiting for a thread to finish.
    Join(usize),
    /// Parked on a condition variable (not yet notified).
    Cond(usize),
}

/// One recorded synchronization / shared-memory event. Only *visible*
/// operations emit events, and only while [`Vm::set_recording`] is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmEvent {
    /// Plain read of a shared location.
    Read {
        /// Acting thread.
        tid: usize,
        /// Location read.
        loc: MemLoc,
    },
    /// Plain write of a shared location.
    Write {
        /// Acting thread.
        tid: usize,
        /// Location written.
        loc: MemLoc,
    },
    /// Atomic read-modify-write of a shared location.
    AtomicRw {
        /// Acting thread.
        tid: usize,
        /// Location updated.
        loc: MemLoc,
    },
    /// Mutex acquired.
    LockAcq {
        /// Acting thread.
        tid: usize,
        /// Mutex id.
        mutex: usize,
    },
    /// Mutex released.
    LockRel {
        /// Acting thread.
        tid: usize,
        /// Mutex id.
        mutex: usize,
    },
    /// Semaphore permit taken.
    SemAcq {
        /// Acting thread.
        tid: usize,
        /// Semaphore id.
        sem: usize,
    },
    /// Semaphore permit released.
    SemRel {
        /// Acting thread.
        tid: usize,
        /// Semaphore id.
        sem: usize,
    },
    /// Message enqueued.
    ChanSend {
        /// Acting thread.
        tid: usize,
        /// Channel id.
        chan: usize,
    },
    /// Message dequeued.
    ChanRecv {
        /// Acting thread.
        tid: usize,
        /// Channel id.
        chan: usize,
    },
    /// New thread created.
    Spawned {
        /// Spawning thread.
        parent: usize,
        /// New thread id.
        child: usize,
    },
    /// Join completed (target had finished).
    Joined {
        /// Joining thread.
        tid: usize,
        /// Joined thread.
        target: usize,
    },
    /// `cond_wait` phase one: mutex released, thread parked.
    CondRelease {
        /// Acting thread.
        tid: usize,
        /// Condition variable.
        cv: usize,
        /// Released mutex.
        mutex: usize,
    },
    /// `cond_wait` phase two: notified thread re-acquired the mutex.
    CondAcquire {
        /// Acting thread.
        tid: usize,
        /// Condition variable.
        cv: usize,
        /// Re-acquired mutex.
        mutex: usize,
    },
    /// `cond_notify` / `cond_broadcast` executed.
    CondNotify {
        /// Acting thread.
        tid: usize,
        /// Condition variable.
        cv: usize,
    },
}

/// Host I/O hooks: `read_file` / `write_file` / `append_file` builtins land
/// here, so the toolchain can wire the VM to the portal's [`vfs`]
/// (or to nothing, in pure tests).
/// `Send` is part of the contract: a [`Vm`] must be movable to (and owned
/// by) a checker pool worker thread, and the I/O backend travels with it.
pub trait HostIo: Send {
    /// Read a whole file as a string.
    fn read_file(&mut self, path: &str) -> Result<String, String>;
    /// Create/overwrite a file.
    fn write_file(&mut self, path: &str, content: &str) -> Result<(), String>;
    /// Append to a file (creating it if missing).
    fn append_file(&mut self, path: &str, content: &str) -> Result<(), String>;
    /// Duplicate this backend for [`Vm::snapshot`]. Backends that cannot be
    /// duplicated return `None`; snapshots then leave I/O state live (a
    /// restore will not roll back file writes). The checker only snapshots
    /// VMs built on [`MemoryIo`], which can.
    fn try_clone_box(&self) -> Option<Box<dyn HostIo>> {
        None
    }
}

/// An in-memory [`HostIo`]: a map of path -> contents.
#[derive(Debug, Default, Clone)]
pub struct MemoryIo {
    /// Backing store, exposed for test setup and inspection.
    pub files: HashMap<String, String>,
}

impl HostIo for MemoryIo {
    fn read_file(&mut self, path: &str) -> Result<String, String> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| format!("{path}: no such file"))
    }

    fn write_file(&mut self, path: &str, content: &str) -> Result<(), String> {
        self.files.insert(path.to_string(), content.to_string());
        Ok(())
    }

    fn append_file(&mut self, path: &str, content: &str) -> Result<(), String> {
        self.files
            .entry(path.to_string())
            .or_default()
            .push_str(content);
        Ok(())
    }

    fn try_clone_box(&self) -> Option<Box<dyn HostIo>> {
        Some(Box::new(self.clone()))
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate through ready threads, fixed quantum. Reproducible and calm —
    /// the mode for teaching "what should happen".
    RoundRobin,
    /// Pick a random ready thread with a random slice length each time.
    /// The race-hunting mode: maximizes observed interleavings per seed.
    RandomPreempt,
}

/// VM tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Seed for every scheduling (and `rand_int`) decision.
    pub seed: u64,
    /// Maximum instructions per scheduling slice.
    pub quantum: u32,
    /// Total instruction budget across all threads (runaway-loop guard).
    pub max_instructions: u64,
    /// Thread-selection policy.
    pub policy: SchedPolicy,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            seed: 0,
            quantum: 8,
            max_instructions: 10_000_000,
            policy: SchedPolicy::RandomPreempt,
        }
    }
}

/// What a completed execution produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Everything printed.
    pub stdout: String,
    /// `main`'s return value.
    pub main_result: Value,
    /// Total instructions executed.
    pub executed: u64,
    /// Number of scheduling slices (context switches).
    pub context_switches: u64,
    /// Peak number of live threads.
    pub peak_threads: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    BlockedSem(usize),
    BlockedSend(usize),
    BlockedRecv(usize),
    BlockedJoin(usize),
    /// Parked on a condition variable; `woken` flips on notify, after which
    /// the thread still needs the mutex back before it can resume.
    BlockedCond {
        cv: usize,
        mutex: usize,
        woken: bool,
    },
    Sleeping {
        until: u64,
    },
    Finished,
}

#[derive(Debug, Clone)]
struct Frame {
    func: FnId,
    pc: usize,
    locals: Vec<Value>,
}

#[derive(Debug, Clone)]
struct GreenThread {
    frames: Vec<Frame>,
    stack: Vec<Value>,
    state: ThreadState,
    result: Value,
    /// Set when this thread was woken from a cond_wait and must complete
    /// the re-acquire phase instead of re-running the wait from scratch.
    cond_resume: Option<(usize, usize)>,
}

#[derive(Debug, Clone, Default)]
struct MutexState {
    locked_by: Option<usize>,
}

#[derive(Debug, Clone)]
struct SemState {
    count: i64,
}

#[derive(Debug, Clone)]
struct ChanState {
    cap: usize,
    queue: VecDeque<Value>,
}

/// Condition variables carry no state of their own: waiters are found by
/// scanning thread states (FIFO by thread id for notify).
#[derive(Debug, Default)]
struct CondState;

enum Step {
    /// Keep running this slice.
    Continue,
    /// The instruction could not complete; thread is now blocked, pc unchanged.
    Blocked,
    /// Thread finished (outer frame returned).
    Finished,
    /// Thread voluntarily ended its slice (yield/sleep).
    EndSlice,
}

/// Saved contents of one live shared array. The `Arc` is the same
/// allocation the VM still references: restore writes `items` back through
/// it, so array identity (the pointer-derived peek ids and the entries in
/// `array_ids`) survives the round trip — and holding the handle keeps the
/// allocator from reusing the address for a different array.
struct ArraySnap {
    handle: std::sync::Arc<parking_lot::Mutex<Vec<Value>>>,
    items: Vec<Value>,
}

/// A resumable capture of VM execution state, built by [`Vm::snapshot`] and
/// consumed (any number of times) by [`Vm::restore`].
///
/// Values are captured shallowly — handles are ids or `Arc`s — and mutable
/// array contents are saved per reachable array, so a restore rewinds
/// globals, thread stacks, sync objects, clocks and the RNG position
/// without reallocating anything the program can still reach. Append-only
/// fields (stdout, recorded events, the schedule trace) are stored as
/// lengths and rewound by truncation: a restore assumes they have not been
/// drained since the snapshot was taken.
pub struct VmSnapshot {
    globals: Vec<Value>,
    threads: Vec<GreenThread>,
    mutexes: Vec<MutexState>,
    sems: Vec<SemState>,
    chans: Vec<ChanState>,
    conds: usize,
    stdout_len: usize,
    executed: u64,
    context_switches: u64,
    peak_threads: usize,
    rng: StdRng,
    rng_draws: u64,
    rr_cursor: usize,
    stdin: VecDeque<String>,
    record: bool,
    events_len: usize,
    sched_len: usize,
    array_ids: HashMap<usize, usize>,
    arrays: Vec<ArraySnap>,
    io: Option<Box<dyn HostIo>>,
}

/// Walk a value graph collecting every reachable array exactly once.
/// Contents are cloned *outside* the lock before recursing: `parking_lot`
/// mutexes are not reentrant, and a self-referential array must not
/// deadlock the walk (the `seen` set already breaks the cycle).
fn collect_arrays(
    v: &Value,
    seen: &mut std::collections::HashSet<usize>,
    out: &mut Vec<ArraySnap>,
) {
    if let Value::Array(a) = v {
        let ptr = std::sync::Arc::as_ptr(a) as usize;
        if !seen.insert(ptr) {
            return;
        }
        let items = a.lock().clone();
        for item in &items {
            collect_arrays(item, seen, out);
        }
        out.push(ArraySnap {
            handle: a.clone(),
            items,
        });
    }
}

/// The virtual machine.
pub struct Vm {
    program: Program,
    globals: Vec<Value>,
    threads: Vec<GreenThread>,
    mutexes: Vec<MutexState>,
    sems: Vec<SemState>,
    chans: Vec<ChanState>,
    conds: Vec<CondState>,
    stdout: String,
    executed: u64,
    context_switches: u64,
    peak_threads: usize,
    rng: StdRng,
    config: VmConfig,
    rr_cursor: usize,
    io: Box<dyn HostIo>,
    boot: FnId,
    stdin: VecDeque<String>,
    /// When true, visible ops append to `events` and scheduling decisions
    /// append to `sched_trace`.
    record: bool,
    events: Vec<VmEvent>,
    sched_trace: Vec<(usize, u32)>,
    /// Arc pointer -> dense array id, assigned on first recorded access.
    array_ids: HashMap<usize, usize>,
    /// Draws taken from `rng` by `rand_int`. With a fixed seed the RNG state
    /// is a pure function of this count (external-scheduler mode never
    /// consumes the RNG otherwise), so [`Vm::state_hash`] hashes the count
    /// in place of the opaque generator state.
    rng_draws: u64,
    /// Retired locals vectors, recycled by `Call`/`Spawn` so the step loop
    /// stops allocating one `Vec<Value>` per call. Scratch only: never part
    /// of snapshots or state hashes.
    locals_pool: Vec<Vec<Value>>,
}

// The checker's worker pool gives each worker its own `Vm` and shares one
// `&Program` across threads; these hold by construction (no `Rc`/`RefCell`
// anywhere in the VM state, `HostIo: Send`) and must keep holding.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Vm>();
    assert_send::<Program>();
    assert_sync::<Program>();
};

impl Vm {
    /// Build a VM for `program` with an in-memory filesystem.
    pub fn new(program: Program, config: VmConfig) -> Vm {
        Vm::with_io(program, config, Box::new(MemoryIo::default()))
    }

    /// Build a VM with a caller-supplied I/O backend.
    pub fn with_io(mut program: Program, config: VmConfig, io: Box<dyn HostIo>) -> Vm {
        // Synthesize `__boot`: run __init, discard, run main, return its value.
        let boot = program.functions.len();
        program.functions.push(Function {
            name: "__boot".into(),
            arity: 0,
            locals: 0,
            code: vec![
                Instr::Call {
                    func: program.init,
                    argc: 0,
                },
                Instr::Pop,
                Instr::Call {
                    func: program.entry,
                    argc: 0,
                },
                Instr::Return,
            ],
        });
        let globals = vec![Value::Int(0); program.global_names.len()];
        let main_thread = GreenThread {
            frames: vec![Frame {
                func: boot,
                pc: 0,
                locals: Vec::new(),
            }],
            stack: Vec::new(),
            state: ThreadState::Runnable,
            result: Value::Unit,
            cond_resume: None,
        };
        Vm {
            program,
            globals,
            threads: vec![main_thread],
            mutexes: Vec::new(),
            sems: Vec::new(),
            chans: Vec::new(),
            conds: Vec::new(),
            stdout: String::new(),
            executed: 0,
            context_switches: 0,
            peak_threads: 1,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            rr_cursor: 0,
            io,
            boot,
            stdin: VecDeque::new(),
            record: false,
            events: Vec::new(),
            sched_trace: Vec::new(),
            array_ids: HashMap::new(),
            rng_draws: 0,
            locals_pool: Vec::new(),
        }
    }

    /// Queue a line for `read_line()` to consume.
    pub fn push_stdin(&mut self, line: impl Into<String>) {
        self.stdin.push_back(line.into());
    }

    /// Execute to completion.
    pub fn run(&mut self) -> Result<ExecOutcome, RuntimeError> {
        loop {
            if self.all_finished() {
                break;
            }
            let ready = self.enabled_threads();
            if ready.is_empty() {
                // Maybe everyone is asleep: jump the clock.
                if self.advance_clock() {
                    continue;
                }
                // Not asleep, not ready, not finished: deadlock.
                let blocked = self.describe_blocked();
                return Err(RuntimeError::Deadlock { blocked });
            }
            let (tid, quantum) = match self.config.policy {
                SchedPolicy::RoundRobin => {
                    // Next ready thread at or after the cursor.
                    let tid = *ready
                        .iter()
                        .find(|&&t| t >= self.rr_cursor)
                        .unwrap_or(&ready[0]);
                    self.rr_cursor = tid + 1;
                    if self.rr_cursor >= self.threads.len() {
                        self.rr_cursor = 0;
                    }
                    (tid, self.config.quantum.max(1))
                }
                SchedPolicy::RandomPreempt => {
                    let tid = ready[self.rng.gen_range(0..ready.len())];
                    let q = self.rng.gen_range(1..=self.config.quantum.max(1));
                    (tid, q)
                }
            };
            if self.record {
                self.sched_trace.push((tid, quantum));
            }
            self.context_switches += 1;
            self.run_slice(tid, quantum)?;
        }
        Ok(self.outcome())
    }

    /// Extract the run's results (what [`Vm::run`] returns on completion).
    /// External drivers call this after stepping the VM to completion.
    pub fn outcome(&mut self) -> ExecOutcome {
        ExecOutcome {
            stdout: std::mem::take(&mut self.stdout),
            main_result: self.threads[0].result.clone(),
            executed: self.executed,
            context_switches: self.context_switches,
            peak_threads: self.peak_threads,
        }
    }

    // ---- external scheduling API (the `checker` crate drives these) -------

    /// Turn event/schedule recording on or off.
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
    }

    /// Take the events recorded since the last drain.
    pub fn drain_events(&mut self) -> Vec<VmEvent> {
        std::mem::take(&mut self.events)
    }

    /// [`Vm::drain_events`] into a caller-owned buffer (cleared first).
    /// The buffers swap, so steady-state draining allocates nothing.
    pub fn drain_events_into(&mut self, buf: &mut Vec<VmEvent>) {
        buf.clear();
        std::mem::swap(buf, &mut self.events);
    }

    /// Take the `(tid, quantum)` schedule recorded by [`Vm::run`] /
    /// [`Vm::step_thread`] since the last drain.
    pub fn drain_schedule(&mut self) -> Vec<(usize, u32)> {
        std::mem::take(&mut self.sched_trace)
    }

    /// Number of threads ever created (including finished ones).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// True when every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| t.state == ThreadState::Finished)
    }

    /// True when `tid` has finished.
    pub fn thread_finished(&self, tid: usize) -> bool {
        self.threads
            .get(tid)
            .map(|t| t.state == ThreadState::Finished)
            .unwrap_or(true)
    }

    /// Could `tid` be scheduled right now? (Runnable, or blocked on a
    /// resource that has since become available.)
    pub fn is_enabled(&self, tid: usize) -> bool {
        tid < self.threads.len() && self.is_ready(tid)
    }

    /// All threads that [`Vm::is_enabled`] right now, ascending.
    pub fn enabled_threads(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.is_ready(t))
            .collect()
    }

    /// [`Vm::enabled_threads`] into a caller-owned buffer (cleared first),
    /// for schedulers that poll the enabled set every visible step.
    pub fn enabled_threads_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..self.threads.len()).filter(|&t| self.is_ready(t)));
    }

    /// The enabled set with each thread's pending visible op, ascending by
    /// thread id. Threads whose next instruction is thread-local (no
    /// [`Vm::next_op`] key) are omitted: a normalizing scheduler runs
    /// those eagerly, and a branching scheduler has nothing to branch on.
    /// This is the query partial-order reducers combine with
    /// [`OpKey::commutes_with`] to decide which enabled ops conflict.
    pub fn enabled_ops(&self) -> Vec<(usize, OpKey)> {
        (0..self.threads.len())
            .filter(|&t| self.is_ready(t))
            .filter_map(|t| self.next_op(t).map(|op| (t, op)))
            .collect()
    }

    /// When no thread is enabled but some are sleeping, jump the clock to
    /// the earliest wake-up. Returns true if the clock moved.
    pub fn advance_clock(&mut self) -> bool {
        let min_wake = self
            .threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Sleeping { until } => Some(until),
                _ => None,
            })
            .min();
        match min_wake {
            Some(until) if until > self.executed => {
                self.executed = until;
                true
            }
            _ => false,
        }
    }

    /// Run one externally chosen slice: up to `quantum` instructions of
    /// thread `tid`. The caller is the scheduler; no RNG is consumed.
    pub fn step_thread(&mut self, tid: usize, quantum: u32) -> Result<(), RuntimeError> {
        if self.record {
            self.sched_trace.push((tid, quantum));
        }
        self.context_switches += 1;
        self.run_slice(tid, quantum.max(1))
    }

    /// Human-readable lines for every blocked thread.
    pub fn blocked_report(&self) -> Vec<String> {
        self.describe_blocked()
    }

    /// Current owner of mutex `m`, if locked.
    pub fn mutex_owner(&self, m: usize) -> Option<usize> {
        self.mutexes.get(m).and_then(|s| s.locked_by)
    }

    /// Peek the next *visible* operation of `tid` without executing it.
    /// `None` means the next instruction is thread-local (or the thread is
    /// finished) and can run without creating a scheduling point.
    pub fn next_op(&self, tid: usize) -> Option<OpKey> {
        let t = self.threads.get(tid)?;
        if t.state == ThreadState::Finished {
            return None;
        }
        let f = t.frames.last()?;
        let instr = self.program.functions[f.func].code.get(f.pc)?;
        let key = |kind, obj| Some(OpKey { kind, obj });
        let opaque = || {
            Some(OpKey {
                kind: OpKind::Opaque,
                obj: OpObj::None,
            })
        };
        let stack = &t.stack;
        let peek = |back: usize| stack.get(stack.len().checked_sub(back)?);
        match instr {
            Instr::LoadGlobal(i) => key(OpKind::Read, OpObj::Mem(MemLoc::Global(*i))),
            Instr::StoreGlobal(i) => key(OpKind::Write, OpObj::Mem(MemLoc::Global(*i))),
            Instr::Tas(s) | Instr::AtomicAdd(s) => {
                key(OpKind::AtomicRw, OpObj::Mem(MemLoc::Global(*s)))
            }
            Instr::Spawn { .. } => key(OpKind::Spawn, OpObj::None),
            Instr::IndexGet => match (peek(2), peek(1)) {
                (Some(Value::Array(a)), Some(Value::Int(i))) => key(
                    OpKind::Read,
                    OpObj::Mem(MemLoc::Elem(self.peek_array_id(a), *i)),
                ),
                (Some(Value::Str(_)), _) => None, // strings are immutable
                _ => opaque(),
            },
            Instr::IndexSet => match (peek(3), peek(2)) {
                (Some(Value::Array(a)), Some(Value::Int(i))) => key(
                    OpKind::Write,
                    OpObj::Mem(MemLoc::Elem(self.peek_array_id(a), *i)),
                ),
                _ => opaque(),
            },
            Instr::CallBuiltin { builtin, .. } => match builtin {
                Builtin::Lock => match peek(1) {
                    Some(Value::Mutex(m)) => key(OpKind::Lock, OpObj::Mutex(*m)),
                    _ => opaque(),
                },
                Builtin::Unlock => match peek(1) {
                    Some(Value::Mutex(m)) => key(OpKind::Unlock, OpObj::Mutex(*m)),
                    _ => opaque(),
                },
                Builtin::SemWait => match peek(1) {
                    Some(Value::Semaphore(s)) => key(OpKind::SemWait, OpObj::Sem(*s)),
                    _ => opaque(),
                },
                Builtin::SemPost => match peek(1) {
                    Some(Value::Semaphore(s)) => key(OpKind::SemPost, OpObj::Sem(*s)),
                    _ => opaque(),
                },
                Builtin::Send => match peek(2) {
                    Some(Value::Channel(c)) => key(OpKind::Send, OpObj::Chan(*c)),
                    _ => opaque(),
                },
                Builtin::Recv => match peek(1) {
                    Some(Value::Channel(c)) => key(OpKind::Recv, OpObj::Chan(*c)),
                    _ => opaque(),
                },
                Builtin::Join => match peek(1) {
                    Some(Value::Thread(u)) => key(OpKind::Join, OpObj::Thread(*u)),
                    _ => opaque(),
                },
                Builtin::CondWait => match peek(2) {
                    Some(Value::Cond(cv)) => key(OpKind::CondWait, OpObj::Cond(*cv)),
                    _ => opaque(),
                },
                Builtin::CondNotify | Builtin::CondBroadcast => match peek(1) {
                    Some(Value::Cond(cv)) => key(OpKind::CondNotify, OpObj::Cond(*cv)),
                    _ => opaque(),
                },
                Builtin::YieldNow | Builtin::Sleep => key(OpKind::Yield, OpObj::None),
                Builtin::Push => match peek(2) {
                    Some(Value::Array(a)) => key(
                        OpKind::Write,
                        OpObj::Mem(MemLoc::ArrayStruct(self.peek_array_id(a))),
                    ),
                    _ => opaque(),
                },
                Builtin::Len => match peek(1) {
                    Some(Value::Array(a)) => key(
                        OpKind::Read,
                        OpObj::Mem(MemLoc::ArrayStruct(self.peek_array_id(a))),
                    ),
                    _ => None, // len(string) is thread-local
                },
                Builtin::ReadFile
                | Builtin::WriteFile
                | Builtin::AppendFile
                | Builtin::ReadLine => key(OpKind::Io, OpObj::None),
                // `rand_int` draws from the shared RNG: its order must be
                // fixed by the schedule for replays to be deterministic.
                Builtin::RandInt => opaque(),
                _ => None,
            },
            _ => None,
        }
    }

    /// Would executing `tid`'s next visible op right now block (make no
    /// progress)? Conservative: false for anything non-blocking.
    pub fn op_would_block(&self, tid: usize) -> bool {
        let Some(op) = self.next_op(tid) else {
            return false;
        };
        match (op.kind, op.obj) {
            (OpKind::Lock, OpObj::Mutex(m)) => {
                self.mutexes.get(m).is_some_and(|s| s.locked_by.is_some())
            }
            (OpKind::SemWait, OpObj::Sem(s)) => self.sems.get(s).is_some_and(|st| st.count <= 0),
            (OpKind::Send, OpObj::Chan(c)) => {
                self.chans.get(c).is_some_and(|ch| ch.queue.len() >= ch.cap)
            }
            (OpKind::Recv, OpObj::Chan(c)) => {
                self.chans.get(c).is_some_and(|ch| ch.queue.is_empty())
            }
            (OpKind::Join, OpObj::Thread(u)) => !self.thread_finished(u),
            _ => false,
        }
    }

    /// What `tid` is waiting on: from its blocked state, or — for a runnable
    /// thread parked just before a blocking op — from the peeked op.
    pub fn wait_target(&self, tid: usize) -> Option<WaitTarget> {
        match self.threads.get(tid)?.state {
            ThreadState::BlockedMutex(m) => Some(WaitTarget::Mutex(m)),
            ThreadState::BlockedSem(s) => Some(WaitTarget::Sem(s)),
            ThreadState::BlockedSend(c) => Some(WaitTarget::SendCap(c)),
            ThreadState::BlockedRecv(c) => Some(WaitTarget::RecvData(c)),
            ThreadState::BlockedJoin(u) => Some(WaitTarget::Join(u)),
            ThreadState::BlockedCond {
                cv, woken: false, ..
            } => Some(WaitTarget::Cond(cv)),
            ThreadState::BlockedCond {
                mutex, woken: true, ..
            } => Some(WaitTarget::Mutex(mutex)),
            ThreadState::Runnable => {
                let op = self.next_op(tid)?;
                if !self.op_would_block(tid) {
                    return None;
                }
                match (op.kind, op.obj) {
                    (OpKind::Lock, OpObj::Mutex(m)) => Some(WaitTarget::Mutex(m)),
                    (OpKind::SemWait, OpObj::Sem(s)) => Some(WaitTarget::Sem(s)),
                    (OpKind::Send, OpObj::Chan(c)) => Some(WaitTarget::SendCap(c)),
                    (OpKind::Recv, OpObj::Chan(c)) => Some(WaitTarget::RecvData(c)),
                    (OpKind::Join, OpObj::Thread(u)) => Some(WaitTarget::Join(u)),
                    _ => None,
                }
            }
            ThreadState::Sleeping { .. } | ThreadState::Finished => None,
        }
    }

    /// Replay a `(tid, quantum)` schedule previously drained via
    /// [`Vm::drain_schedule`] on a *fresh* VM of the same program + config.
    /// Faithful for programs that don't call `rand_int` (whose draws share
    /// the scheduling RNG that a recorded run also consumed).
    pub fn replay(&mut self, schedule: &[(usize, u32)]) -> Result<(), RuntimeError> {
        for &(tid, quantum) in schedule {
            if self.all_finished() {
                break;
            }
            while !self.is_enabled(tid) && self.advance_clock() {}
            if !self.is_enabled(tid) {
                continue; // schedule diverged; skip the entry
            }
            self.context_switches += 1;
            self.run_slice(tid, quantum.max(1))?;
        }
        Ok(())
    }

    // ---- snapshot / restore (the checker's prefix-reuse fast path) --------

    /// Capture the full execution state. O(live state): thread stacks and
    /// sync objects are cloned shallowly (`Value` clones share `Arc`s), and
    /// each reachable array's contents are saved once. See [`VmSnapshot`]
    /// for the restore contract.
    pub fn snapshot(&self) -> VmSnapshot {
        let mut seen = std::collections::HashSet::new();
        let mut arrays = Vec::new();
        for g in &self.globals {
            collect_arrays(g, &mut seen, &mut arrays);
        }
        for t in &self.threads {
            for v in &t.stack {
                collect_arrays(v, &mut seen, &mut arrays);
            }
            for f in &t.frames {
                for v in &f.locals {
                    collect_arrays(v, &mut seen, &mut arrays);
                }
            }
            collect_arrays(&t.result, &mut seen, &mut arrays);
        }
        for c in &self.chans {
            for v in &c.queue {
                collect_arrays(v, &mut seen, &mut arrays);
            }
        }
        VmSnapshot {
            globals: self.globals.clone(),
            threads: self.threads.clone(),
            mutexes: self.mutexes.clone(),
            sems: self.sems.clone(),
            chans: self.chans.clone(),
            conds: self.conds.len(),
            stdout_len: self.stdout.len(),
            executed: self.executed,
            context_switches: self.context_switches,
            peak_threads: self.peak_threads,
            rng: self.rng.clone(),
            rng_draws: self.rng_draws,
            rr_cursor: self.rr_cursor,
            stdin: self.stdin.clone(),
            record: self.record,
            events_len: self.events.len(),
            sched_len: self.sched_trace.len(),
            array_ids: self.array_ids.clone(),
            arrays,
            io: self.io.try_clone_box(),
        }
    }

    /// Rewind to a state captured by [`Vm::snapshot`] on this same VM. The
    /// snapshot can be restored any number of times; array identity is
    /// preserved (contents are written back through the original `Arc`s),
    /// so dense ids and pointer-based peek ids keep meaning the same
    /// arrays afterwards.
    pub fn restore(&mut self, snap: &VmSnapshot) {
        self.globals.clone_from(&snap.globals);
        self.threads.clone_from(&snap.threads);
        self.mutexes.clone_from(&snap.mutexes);
        self.sems.clone_from(&snap.sems);
        self.chans.clone_from(&snap.chans);
        self.conds.truncate(snap.conds);
        while self.conds.len() < snap.conds {
            self.conds.push(CondState);
        }
        self.stdout.truncate(snap.stdout_len);
        self.executed = snap.executed;
        self.context_switches = snap.context_switches;
        self.peak_threads = snap.peak_threads;
        self.rng = snap.rng.clone();
        self.rng_draws = snap.rng_draws;
        self.rr_cursor = snap.rr_cursor;
        self.stdin.clone_from(&snap.stdin);
        self.record = snap.record;
        self.events.truncate(snap.events_len);
        self.sched_trace.truncate(snap.sched_len);
        self.array_ids.clone_from(&snap.array_ids);
        for a in &snap.arrays {
            a.handle.lock().clone_from(&a.items);
        }
        if let Some(io) = snap.io.as_deref().and_then(HostIo::try_clone_box) {
            self.io = io;
        }
    }

    /// FNV-1a digest of the canonical execution state: thread stacks and
    /// states, globals, sync objects, queued stdin and the RNG draw count.
    /// Array aliasing is canonicalized by first-visit order (never by
    /// pointer), so two executions that reach structurally identical states
    /// along different paths hash equal. Execution counters, stdout and
    /// host files are excluded — see the checker's state cache for the
    /// resulting caveats (`now()`-observing programs dedup approximately).
    pub fn state_hash(&self) -> u64 {
        let mut h = Fnv::new();
        let mut seen = HashMap::new();
        h.usize(self.globals.len());
        for g in &self.globals {
            hash_value(g, &mut h, &mut seen);
        }
        h.usize(self.threads.len());
        for t in &self.threads {
            match t.state {
                ThreadState::Runnable => h.byte(0x20),
                ThreadState::BlockedMutex(m) => {
                    h.byte(0x21);
                    h.usize(m);
                }
                ThreadState::BlockedSem(s) => {
                    h.byte(0x22);
                    h.usize(s);
                }
                ThreadState::BlockedSend(c) => {
                    h.byte(0x23);
                    h.usize(c);
                }
                ThreadState::BlockedRecv(c) => {
                    h.byte(0x24);
                    h.usize(c);
                }
                ThreadState::BlockedJoin(u) => {
                    h.byte(0x25);
                    h.usize(u);
                }
                ThreadState::BlockedCond { cv, mutex, woken } => {
                    h.byte(0x26);
                    h.usize(cv);
                    h.usize(mutex);
                    h.byte(woken as u8);
                }
                // Sleep deadlines hash as *remaining* time: the absolute
                // instruction clock is path-dependent noise.
                ThreadState::Sleeping { until } => {
                    h.byte(0x27);
                    h.u64(until.saturating_sub(self.executed));
                }
                ThreadState::Finished => h.byte(0x28),
            }
            match t.cond_resume {
                Some((cv, m)) => {
                    h.byte(1);
                    h.usize(cv);
                    h.usize(m);
                }
                None => h.byte(0),
            }
            hash_value(&t.result, &mut h, &mut seen);
            h.usize(t.frames.len());
            for f in &t.frames {
                h.usize(f.func);
                h.usize(f.pc);
                h.usize(f.locals.len());
                for v in &f.locals {
                    hash_value(v, &mut h, &mut seen);
                }
            }
            h.usize(t.stack.len());
            for v in &t.stack {
                hash_value(v, &mut h, &mut seen);
            }
        }
        h.usize(self.mutexes.len());
        for m in &self.mutexes {
            match m.locked_by {
                Some(t) => {
                    h.byte(1);
                    h.usize(t);
                }
                None => h.byte(0),
            }
        }
        h.usize(self.sems.len());
        for s in &self.sems {
            h.i64(s.count);
        }
        h.usize(self.chans.len());
        for c in &self.chans {
            h.usize(c.cap);
            h.usize(c.queue.len());
            for v in &c.queue {
                hash_value(v, &mut h, &mut seen);
            }
        }
        h.usize(self.conds.len());
        h.usize(self.stdin.len());
        for line in &self.stdin {
            h.str(line);
        }
        h.u64(self.rng_draws);
        h.0
    }

    /// Dense array id for peeking: the recorded id if the array has been
    /// accessed before, otherwise the Arc pointer with the top bit set (so
    /// two peeks at the same state agree, and neither collides with a dense
    /// id).
    fn peek_array_id(&self, a: &std::sync::Arc<parking_lot::Mutex<Vec<Value>>>) -> usize {
        let ptr = std::sync::Arc::as_ptr(a) as usize;
        self.array_ids
            .get(&ptr)
            .copied()
            .unwrap_or(ptr | (1usize << (usize::BITS - 1)))
    }

    /// Dense array id for recording, assigned first-seen.
    fn array_id(&mut self, a: &std::sync::Arc<parking_lot::Mutex<Vec<Value>>>) -> usize {
        let ptr = std::sync::Arc::as_ptr(a) as usize;
        let next = self.array_ids.len();
        *self.array_ids.entry(ptr).or_insert(next)
    }

    fn is_ready(&self, tid: usize) -> bool {
        match self.threads[tid].state {
            ThreadState::Runnable => true,
            ThreadState::Finished => false,
            ThreadState::Sleeping { until } => until <= self.executed,
            ThreadState::BlockedMutex(m) => self.mutexes[m].locked_by.is_none(),
            ThreadState::BlockedSem(s) => self.sems[s].count > 0,
            ThreadState::BlockedSend(c) => self.chans[c].queue.len() < self.chans[c].cap,
            ThreadState::BlockedRecv(c) => !self.chans[c].queue.is_empty(),
            ThreadState::BlockedJoin(u) => self
                .threads
                .get(u)
                .map(|t| t.state == ThreadState::Finished)
                .unwrap_or(true),
            ThreadState::BlockedCond { mutex, woken, .. } => {
                woken && self.mutexes[mutex].locked_by.is_none()
            }
        }
    }

    fn describe_blocked(&self) -> Vec<String> {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                let what = match t.state {
                    ThreadState::BlockedMutex(m) => format!("mutex {m}"),
                    ThreadState::BlockedSem(s) => format!("semaphore {s}"),
                    ThreadState::BlockedSend(c) => format!("send on channel {c}"),
                    ThreadState::BlockedRecv(c) => format!("recv on channel {c}"),
                    ThreadState::BlockedJoin(u) => format!("join on thread {u}"),
                    ThreadState::BlockedCond {
                        cv, woken: false, ..
                    } => format!("condvar {cv}"),
                    ThreadState::BlockedCond {
                        mutex, woken: true, ..
                    } => {
                        format!("mutex {mutex} (condvar re-acquire)")
                    }
                    _ => return None,
                };
                Some(format!("thread {i} waiting on {what}"))
            })
            .collect()
    }

    fn run_slice(&mut self, tid: usize, quantum: u32) -> Result<(), RuntimeError> {
        // A woken cond-waiter completes the re-acquire phase rather than
        // re-running the wait from scratch.
        if let ThreadState::BlockedCond {
            cv,
            mutex,
            woken: true,
        } = self.threads[tid].state
        {
            self.threads[tid].cond_resume = Some((cv, mutex));
        }
        // A blocked thread that got scheduled retries its instruction.
        self.threads[tid].state = ThreadState::Runnable;
        for _ in 0..quantum {
            if self.executed >= self.config.max_instructions {
                return Err(RuntimeError::BudgetExhausted {
                    executed: self.executed,
                });
            }
            match self.step(tid)? {
                Step::Continue => {}
                Step::Blocked | Step::Finished | Step::EndSlice => break,
            }
        }
        Ok(())
    }

    /// Execute one instruction of thread `tid`.
    fn step(&mut self, tid: usize) -> Result<Step, RuntimeError> {
        let (func, pc) = {
            let f = self.threads[tid]
                .frames
                .last()
                .ok_or_else(|| RuntimeError::Internal("thread has no frames".into()))?;
            (f.func, f.pc)
        };
        let instr = self.program.functions[func]
            .code
            .get(pc)
            .copied()
            .ok_or_else(|| RuntimeError::Internal(format!("pc {pc} out of range in {func}")))?;
        self.executed += 1;

        macro_rules! frame {
            () => {
                self.threads[tid].frames.last_mut().expect("frame checked")
            };
        }
        macro_rules! push {
            ($v:expr) => {
                self.threads[tid].stack.push($v)
            };
        }
        macro_rules! pop {
            () => {
                self.threads[tid]
                    .stack
                    .pop()
                    .ok_or_else(|| RuntimeError::Internal("stack underflow".into()))?
            };
        }

        match instr {
            Instr::Const(i) => {
                let v = self.program.consts[i].clone();
                push!(v);
            }
            Instr::LoadLocal(i) => {
                let v = frame!().locals[i].clone();
                push!(v);
            }
            Instr::StoreLocal(i) => {
                let v = pop!();
                let f = frame!();
                if f.locals.len() <= i {
                    f.locals.resize(i + 1, Value::Int(0));
                }
                f.locals[i] = v;
            }
            Instr::LoadGlobal(i) => {
                if self.record {
                    self.events.push(VmEvent::Read {
                        tid,
                        loc: MemLoc::Global(i),
                    });
                }
                let v = self.globals[i].clone();
                push!(v);
            }
            Instr::StoreGlobal(i) => {
                if self.record {
                    self.events.push(VmEvent::Write {
                        tid,
                        loc: MemLoc::Global(i),
                    });
                }
                let v = pop!();
                self.globals[i] = v;
            }
            Instr::Add => {
                let b = pop!();
                let a = pop!();
                let r = self.arith_add(a, b)?;
                push!(r);
            }
            Instr::Sub => {
                let b = pop!();
                let a = pop!();
                let (x, y) = int_pair(a, b, "-")?;
                push!(Value::Int(x.wrapping_sub(y)));
            }
            Instr::Mul => {
                let b = pop!();
                let a = pop!();
                let (x, y) = int_pair(a, b, "*")?;
                push!(Value::Int(x.wrapping_mul(y)));
            }
            Instr::Div => {
                let b = pop!();
                let a = pop!();
                let (x, y) = int_pair(a, b, "/")?;
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                push!(Value::Int(x.wrapping_div(y)));
            }
            Instr::Mod => {
                let b = pop!();
                let a = pop!();
                let (x, y) = int_pair(a, b, "%")?;
                if y == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                push!(Value::Int(x.wrapping_rem(y)));
            }
            Instr::Neg => {
                let a = pop!();
                match a {
                    Value::Int(v) => push!(Value::Int(v.wrapping_neg())),
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "-".into(),
                            found: other.type_name().into(),
                        })
                    }
                }
            }
            Instr::Not => {
                let a = pop!();
                push!(Value::Bool(!a.truthy()));
            }
            Instr::CmpEq => {
                let b = pop!();
                let a = pop!();
                push!(Value::Bool(a.eq_value(&b)));
            }
            Instr::CmpNe => {
                let b = pop!();
                let a = pop!();
                push!(Value::Bool(!a.eq_value(&b)));
            }
            Instr::CmpLt | Instr::CmpLe | Instr::CmpGt | Instr::CmpGe => {
                let b = pop!();
                let a = pop!();
                let ord = compare(&a, &b)?;
                let r = match instr {
                    Instr::CmpLt => ord.is_lt(),
                    Instr::CmpLe => ord.is_le(),
                    Instr::CmpGt => ord.is_gt(),
                    _ => ord.is_ge(),
                };
                push!(Value::Bool(r));
            }
            Instr::Jump(t) => {
                frame!().pc = t;
                return Ok(Step::Continue);
            }
            Instr::JumpIfFalse(t) => {
                let v = pop!();
                if !v.truthy() {
                    frame!().pc = t;
                    return Ok(Step::Continue);
                }
            }
            Instr::JumpIfTrue(t) => {
                let v = pop!();
                if v.truthy() {
                    frame!().pc = t;
                    return Ok(Step::Continue);
                }
            }
            Instr::Dup => {
                let v = self.threads[tid]
                    .stack
                    .last()
                    .cloned()
                    .ok_or_else(|| RuntimeError::Internal("dup on empty stack".into()))?;
                push!(v);
            }
            Instr::Pop => {
                let _ = pop!();
            }
            Instr::MakeArray(n) => {
                let len = self.threads[tid].stack.len();
                if len < n {
                    return Err(RuntimeError::Internal(
                        "stack underflow in MakeArray".into(),
                    ));
                }
                let items = self.threads[tid].stack.split_off(len - n);
                push!(Value::array(items));
            }
            Instr::IndexGet => {
                let idx = pop!();
                let arr = pop!();
                if self.record {
                    if let (Value::Array(a), Value::Int(i)) = (&arr, &idx) {
                        let loc = MemLoc::Elem(self.array_id(a), *i);
                        self.events.push(VmEvent::Read { tid, loc });
                    }
                }
                push!(index_get(&arr, &idx)?);
            }
            Instr::IndexSet => {
                let v = pop!();
                let idx = pop!();
                let arr = pop!();
                if self.record {
                    if let (Value::Array(a), Value::Int(i)) = (&arr, &idx) {
                        let loc = MemLoc::Elem(self.array_id(a), *i);
                        self.events.push(VmEvent::Write { tid, loc });
                    }
                }
                index_set(&arr, &idx, v)?;
            }
            Instr::Call { func: callee, argc } => {
                let f = &self.program.functions[callee];
                debug_assert_eq!(f.arity, argc, "compiler enforces arity");
                let locals_len = f.locals.max(argc);
                let mut locals = self.alloc_locals(locals_len);
                for i in (0..argc).rev() {
                    locals[i] = pop!();
                }
                frame!().pc = pc + 1;
                self.threads[tid].frames.push(Frame {
                    func: callee,
                    pc: 0,
                    locals,
                });
                return Ok(Step::Continue);
            }
            Instr::Spawn { func: callee, argc } => {
                let f = &self.program.functions[callee];
                let locals_len = f.locals.max(argc);
                let mut locals = self.alloc_locals(locals_len);
                for i in (0..argc).rev() {
                    locals[i] = pop!();
                }
                let new_tid = self.threads.len();
                self.threads.push(GreenThread {
                    frames: vec![Frame {
                        func: callee,
                        pc: 0,
                        locals,
                    }],
                    stack: Vec::new(),
                    state: ThreadState::Runnable,
                    result: Value::Unit,
                    cond_resume: None,
                });
                self.peak_threads = self.peak_threads.max(self.live_count());
                if self.record {
                    self.events.push(VmEvent::Spawned {
                        parent: tid,
                        child: new_tid,
                    });
                }
                push!(Value::Thread(new_tid));
            }
            Instr::Return => {
                let ret = pop!();
                if let Some(done) = self.threads[tid].frames.pop() {
                    self.recycle_locals(done.locals);
                }
                if self.threads[tid].frames.is_empty() {
                    self.threads[tid].result = ret;
                    self.threads[tid].state = ThreadState::Finished;
                    return Ok(Step::Finished);
                }
                push!(ret);
                return Ok(Step::Continue);
            }
            Instr::Tas(slot) => {
                if self.record {
                    self.events.push(VmEvent::AtomicRw {
                        tid,
                        loc: MemLoc::Global(slot),
                    });
                }
                let old = match &self.globals[slot] {
                    Value::Int(v) => *v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "tas".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                self.globals[slot] = Value::Int(1);
                push!(Value::Int(old));
            }
            Instr::AtomicAdd(slot) => {
                if self.record {
                    self.events.push(VmEvent::AtomicRw {
                        tid,
                        loc: MemLoc::Global(slot),
                    });
                }
                let delta = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "atomic_add".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let old = match &self.globals[slot] {
                    Value::Int(v) => *v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "atomic_add".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                self.globals[slot] = Value::Int(old.wrapping_add(delta));
                push!(Value::Int(old));
            }
            Instr::CallBuiltin { builtin, argc } => {
                return self.builtin(tid, builtin, argc, pc);
            }
        }
        frame!().pc = pc + 1;
        Ok(Step::Continue)
    }

    /// Take a recycled locals vector (or a fresh one), sized and zeroed.
    fn alloc_locals(&mut self, len: usize) -> Vec<Value> {
        let mut v = self.locals_pool.pop().unwrap_or_default();
        v.clear();
        v.resize(len, Value::Int(0));
        v
    }

    /// Return a retired locals vector to the pool (bounded; values dropped).
    fn recycle_locals(&mut self, mut v: Vec<Value>) {
        if self.locals_pool.len() < 64 && v.capacity() > 0 {
            v.clear();
            self.locals_pool.push(v);
        }
    }

    fn live_count(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state != ThreadState::Finished)
            .count()
    }

    fn arith_add(&mut self, a: Value, b: Value) -> Result<Value, RuntimeError> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(y))),
            // `+` concatenates when either side is a string (Java-style).
            (Value::Str(x), y) => Ok(Value::str(format!("{x}{y}"))),
            (x, Value::Str(y)) => Ok(Value::str(format!("{x}{y}"))),
            (x, y) => Err(RuntimeError::TypeError {
                op: "+".into(),
                found: format!("{} and {}", x.type_name(), y.type_name()),
            }),
        }
    }

    /// Execute one builtin. Blocking builtins may return [`Step::Blocked`]
    /// *without* advancing the pc (retry semantics).
    fn builtin(
        &mut self,
        tid: usize,
        b: Builtin,
        argc: usize,
        pc: usize,
    ) -> Result<Step, RuntimeError> {
        macro_rules! push {
            ($v:expr) => {
                self.threads[tid].stack.push($v)
            };
        }
        macro_rules! pop {
            () => {
                self.threads[tid]
                    .stack
                    .pop()
                    .ok_or_else(|| RuntimeError::Internal("stack underflow".into()))?
            };
        }
        macro_rules! advance {
            () => {
                self.threads[tid].frames.last_mut().expect("frame").pc = pc + 1
            };
        }

        match b {
            Builtin::Print | Builtin::Println => {
                let len = self.threads[tid].stack.len();
                let args = self.threads[tid].stack.split_off(len - argc);
                for a in &args {
                    self.stdout.push_str(&a.to_string());
                }
                if b == Builtin::Println {
                    self.stdout.push('\n');
                }
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Len => {
                let v = pop!();
                if self.record {
                    if let Value::Array(a) = &v {
                        let loc = MemLoc::ArrayStruct(self.array_id(a));
                        self.events.push(VmEvent::Read { tid, loc });
                    }
                }
                let n = match &v {
                    Value::Array(a) => a.lock().len() as i64,
                    Value::Str(s) => s.len() as i64,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "len".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                push!(Value::Int(n));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Push => {
                let v = pop!();
                let arr = pop!();
                if self.record {
                    if let Value::Array(a) = &arr {
                        let loc = MemLoc::ArrayStruct(self.array_id(a));
                        self.events.push(VmEvent::Write { tid, loc });
                    }
                }
                match &arr {
                    Value::Array(a) => a.lock().push(v),
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "push".into(),
                            found: other.type_name().into(),
                        })
                    }
                }
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::ToStr => {
                let v = pop!();
                push!(Value::str(v.to_string()));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::MutexNew => {
                let id = self.mutexes.len();
                self.mutexes.push(MutexState::default());
                push!(Value::Mutex(id));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Lock => {
                let m = as_mutex(self.threads[tid].stack.last(), "lock")?;
                match self.mutexes[m].locked_by {
                    None => {
                        self.mutexes[m].locked_by = Some(tid);
                        if self.record {
                            self.events.push(VmEvent::LockAcq { tid, mutex: m });
                        }
                        let _ = pop!();
                        push!(Value::Unit);
                        advance!();
                        Ok(Step::Continue)
                    }
                    Some(_) => {
                        // Includes self-lock: a thread that locks a mutex it
                        // already holds deadlocks, as with a non-recursive
                        // pthread mutex.
                        self.threads[tid].state = ThreadState::BlockedMutex(m);
                        self.executed -= 1; // retried instruction doesn't consume budget twice
                        Ok(Step::Blocked)
                    }
                }
            }
            Builtin::Unlock => {
                let m = as_mutex(self.threads[tid].stack.last(), "unlock")?;
                if self.mutexes[m].locked_by != Some(tid) {
                    return Err(RuntimeError::NotLockOwner { mutex: m });
                }
                self.mutexes[m].locked_by = None;
                if self.record {
                    self.events.push(VmEvent::LockRel { tid, mutex: m });
                }
                let _ = pop!();
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::SemNew => {
                let n = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "semaphore".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let id = self.sems.len();
                self.sems.push(SemState { count: n.max(0) });
                push!(Value::Semaphore(id));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::SemWait => {
                let s = as_sem(self.threads[tid].stack.last(), "sem_wait")?;
                if self.sems[s].count > 0 {
                    self.sems[s].count -= 1;
                    if self.record {
                        self.events.push(VmEvent::SemAcq { tid, sem: s });
                    }
                    let _ = pop!();
                    push!(Value::Unit);
                    advance!();
                    Ok(Step::Continue)
                } else {
                    self.threads[tid].state = ThreadState::BlockedSem(s);
                    self.executed -= 1;
                    Ok(Step::Blocked)
                }
            }
            Builtin::SemPost => {
                let s = as_sem(self.threads[tid].stack.last(), "sem_post")?;
                self.sems[s].count += 1;
                if self.record {
                    self.events.push(VmEvent::SemRel { tid, sem: s });
                }
                let _ = pop!();
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::ChanNew => {
                let cap = match pop!() {
                    Value::Int(v) => v.max(1) as usize,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "channel".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let id = self.chans.len();
                self.chans.push(ChanState {
                    cap,
                    queue: VecDeque::new(),
                });
                push!(Value::Channel(id));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Send => {
                // Stack: [chan, value]; peek both without popping until we
                // know the send can complete.
                let len = self.threads[tid].stack.len();
                if len < 2 {
                    return Err(RuntimeError::Internal("send needs chan and value".into()));
                }
                let c = as_chan(self.threads[tid].stack.get(len - 2), "send")?;
                if self.chans[c].queue.len() < self.chans[c].cap {
                    let v = pop!();
                    let _ = pop!();
                    if self.record {
                        self.events.push(VmEvent::ChanSend { tid, chan: c });
                    }
                    self.chans[c].queue.push_back(v);
                    push!(Value::Unit);
                    advance!();
                    Ok(Step::Continue)
                } else {
                    self.threads[tid].state = ThreadState::BlockedSend(c);
                    self.executed -= 1;
                    Ok(Step::Blocked)
                }
            }
            Builtin::Recv => {
                let c = as_chan(self.threads[tid].stack.last(), "recv")?;
                if let Some(v) = self.chans[c].queue.pop_front() {
                    if self.record {
                        self.events.push(VmEvent::ChanRecv { tid, chan: c });
                    }
                    let _ = pop!();
                    push!(v);
                    advance!();
                    Ok(Step::Continue)
                } else {
                    self.threads[tid].state = ThreadState::BlockedRecv(c);
                    self.executed -= 1;
                    Ok(Step::Blocked)
                }
            }
            Builtin::Join => {
                let u = match self.threads[tid].stack.last() {
                    Some(Value::Thread(u)) => *u,
                    Some(other) => {
                        return Err(RuntimeError::TypeError {
                            op: "join".into(),
                            found: other.type_name().into(),
                        })
                    }
                    None => return Err(RuntimeError::Internal("join with empty stack".into())),
                };
                if u >= self.threads.len() {
                    return Err(RuntimeError::NoSuchThread(u));
                }
                if self.threads[u].state == ThreadState::Finished {
                    if self.record {
                        self.events.push(VmEvent::Joined { tid, target: u });
                    }
                    let _ = pop!();
                    let r = self.threads[u].result.clone();
                    push!(r);
                    advance!();
                    Ok(Step::Continue)
                } else {
                    self.threads[tid].state = ThreadState::BlockedJoin(u);
                    self.executed -= 1;
                    Ok(Step::Blocked)
                }
            }
            Builtin::YieldNow => {
                push!(Value::Unit);
                advance!();
                Ok(Step::EndSlice)
            }
            Builtin::Sleep => {
                let n = match pop!() {
                    Value::Int(v) => v.max(0) as u64,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "sleep".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                push!(Value::Unit);
                advance!();
                self.threads[tid].state = ThreadState::Sleeping {
                    until: self.executed + n,
                };
                Ok(Step::EndSlice)
            }
            Builtin::ThreadId => {
                push!(Value::Int(tid as i64));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::RandInt => {
                let hi = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "rand_int".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let lo = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "rand_int".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let v = if lo >= hi {
                    lo
                } else {
                    self.rng_draws += 1;
                    self.rng.gen_range(lo..=hi)
                };
                push!(Value::Int(v));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::ReadFile => {
                let path = as_str(pop!(), "read_file")?;
                let content = self.io.read_file(&path).map_err(RuntimeError::Io)?;
                push!(Value::str(content));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::WriteFile => {
                let content = as_str(pop!(), "write_file")?;
                let path = as_str(pop!(), "write_file")?;
                self.io
                    .write_file(&path, &content)
                    .map_err(RuntimeError::Io)?;
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::AppendFile => {
                let content = as_str(pop!(), "append_file")?;
                let path = as_str(pop!(), "append_file")?;
                self.io
                    .append_file(&path, &content)
                    .map_err(RuntimeError::Io)?;
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Now => {
                push!(Value::Int(self.executed as i64));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::ReadLine => {
                let line = self.stdin.pop_front().unwrap_or_default();
                push!(Value::str(line));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::ParseInt => {
                let s = as_str(pop!(), "parse_int")?;
                let v: i64 = s.trim().parse().map_err(|_| RuntimeError::TypeError {
                    op: "parse_int".into(),
                    found: format!("{s:?}"),
                })?;
                push!(Value::Int(v));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Substr => {
                let len = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "substr".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let start = match pop!() {
                    Value::Int(v) => v,
                    other => {
                        return Err(RuntimeError::TypeError {
                            op: "substr".into(),
                            found: other.type_name().into(),
                        })
                    }
                };
                let s = as_str(pop!(), "substr")?;
                let start = start.clamp(0, s.len() as i64) as usize;
                let end = (start + len.max(0) as usize).min(s.len());
                push!(Value::str(s[start..end].to_string()));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Assert => {
                let cond = pop!();
                if !cond.truthy() {
                    return Err(RuntimeError::AssertionFailed);
                }
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::CondNew => {
                let id = self.conds.len();
                self.conds.push(CondState);
                push!(Value::Cond(id));
                advance!();
                Ok(Step::Continue)
            }
            Builtin::CondWait => {
                // Stack: [cv, m]. Two phases; `cond_resume` marks phase two.
                let len = self.threads[tid].stack.len();
                if len < 2 {
                    return Err(RuntimeError::Internal(
                        "cond_wait needs cv and mutex".into(),
                    ));
                }
                let m = as_mutex(self.threads[tid].stack.last(), "cond_wait")?;
                let cv = match self.threads[tid].stack.get(len - 2) {
                    Some(Value::Cond(c)) => *c,
                    Some(other) => {
                        return Err(RuntimeError::TypeError {
                            op: "cond_wait".into(),
                            found: other.type_name().into(),
                        })
                    }
                    None => return Err(RuntimeError::Internal("cond_wait stack".into())),
                };
                if let Some((rcv, rm)) = self.threads[tid].cond_resume {
                    debug_assert_eq!((rcv, rm), (cv, m), "resume matches the waited pair");
                    // Phase two: take the mutex back (it is free, is_ready
                    // guaranteed it; but another thread may have barged in
                    // this same slice).
                    if self.mutexes[m].locked_by.is_none() {
                        self.mutexes[m].locked_by = Some(tid);
                        self.threads[tid].cond_resume = None;
                        if self.record {
                            self.events.push(VmEvent::CondAcquire { tid, cv, mutex: m });
                        }
                        let _ = pop!();
                        let _ = pop!();
                        push!(Value::Unit);
                        advance!();
                        Ok(Step::Continue)
                    } else {
                        self.threads[tid].state = ThreadState::BlockedCond {
                            cv,
                            mutex: m,
                            woken: true,
                        };
                        self.executed -= 1;
                        Ok(Step::Blocked)
                    }
                } else {
                    // Phase one: caller must hold the mutex; release it and park.
                    if self.mutexes[m].locked_by != Some(tid) {
                        return Err(RuntimeError::NotLockOwner { mutex: m });
                    }
                    self.mutexes[m].locked_by = None;
                    if self.record {
                        self.events.push(VmEvent::CondRelease { tid, cv, mutex: m });
                    }
                    self.threads[tid].state = ThreadState::BlockedCond {
                        cv,
                        mutex: m,
                        woken: false,
                    };
                    self.executed -= 1;
                    Ok(Step::Blocked)
                }
            }
            Builtin::CondNotify | Builtin::CondBroadcast => {
                let cv = match self.threads[tid].stack.last() {
                    Some(Value::Cond(c)) => *c,
                    Some(other) => {
                        return Err(RuntimeError::TypeError {
                            op: "cond_notify".into(),
                            found: other.type_name().into(),
                        })
                    }
                    None => return Err(RuntimeError::Internal("cond_notify stack".into())),
                };
                let broadcast = b == Builtin::CondBroadcast;
                if self.record {
                    self.events.push(VmEvent::CondNotify { tid, cv });
                }
                for t in 0..self.threads.len() {
                    if let ThreadState::BlockedCond {
                        cv: tcv,
                        woken: false,
                        mutex,
                    } = self.threads[t].state
                    {
                        if tcv == cv {
                            self.threads[t].state = ThreadState::BlockedCond {
                                cv: tcv,
                                mutex,
                                woken: true,
                            };
                            if !broadcast {
                                break;
                            }
                        }
                    }
                }
                let _ = pop!();
                push!(Value::Unit);
                advance!();
                Ok(Step::Continue)
            }
            Builtin::Tas | Builtin::AtomicAdd => Err(RuntimeError::Internal(
                "atomics must lower to dedicated instructions".into(),
            )),
        }
    }

    /// Snapshot a global by name after a run (autograders use this).
    pub fn global(&self, name: &str) -> Option<&Value> {
        let slot = self.program.find_global(name)?;
        self.globals.get(slot)
    }

    /// The synthesized boot function id (exposed for tests).
    pub fn boot_fn(&self) -> FnId {
        self.boot
    }
}

// ---- helpers ---------------------------------------------------------------

/// FNV-1a, the checker's canonical-state digest. Not a general hasher: the
/// traversal order in [`Vm::state_hash`] is part of the format.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

/// Hash one value. Arrays are identified by first-visit order within this
/// walk — never by pointer — so aliasing structure hashes canonically and
/// two executions reaching the same abstract state agree. Contents are
/// cloned out of the lock before recursing (same reentrancy rule as
/// [`collect_arrays`]).
fn hash_value(v: &Value, h: &mut Fnv, seen: &mut HashMap<usize, usize>) {
    match v {
        Value::Int(x) => {
            h.byte(1);
            h.i64(*x);
        }
        Value::Bool(b) => {
            h.byte(2);
            h.byte(*b as u8);
        }
        Value::Str(s) => {
            h.byte(3);
            h.str(s);
        }
        Value::Array(a) => {
            let ptr = std::sync::Arc::as_ptr(a) as usize;
            let next = seen.len();
            if let Some(&idx) = seen.get(&ptr) {
                h.byte(4);
                h.usize(idx);
            } else {
                seen.insert(ptr, next);
                h.byte(5);
                h.usize(next);
                let items = a.lock().clone();
                h.usize(items.len());
                for item in &items {
                    hash_value(item, h, seen);
                }
            }
        }
        Value::Thread(t) => {
            h.byte(6);
            h.usize(*t);
        }
        Value::Mutex(m) => {
            h.byte(7);
            h.usize(*m);
        }
        Value::Semaphore(s) => {
            h.byte(8);
            h.usize(*s);
        }
        Value::Channel(c) => {
            h.byte(9);
            h.usize(*c);
        }
        Value::Cond(c) => {
            h.byte(10);
            h.usize(*c);
        }
        Value::Unit => h.byte(11),
    }
}

fn int_pair(a: Value, b: Value, op: &str) -> Result<(i64, i64), RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok((x, y)),
        (x, y) => Err(RuntimeError::TypeError {
            op: op.into(),
            found: format!("{} and {}", x.type_name(), y.type_name()),
        }),
    }
}

fn compare(a: &Value, b: &Value) -> Result<std::cmp::Ordering, RuntimeError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Ok(x.cmp(y)),
        (x, y) => Err(RuntimeError::TypeError {
            op: "comparison".into(),
            found: format!("{} and {}", x.type_name(), y.type_name()),
        }),
    }
}

fn index_get(arr: &Value, idx: &Value) -> Result<Value, RuntimeError> {
    let i = match idx {
        Value::Int(v) => *v,
        other => {
            return Err(RuntimeError::TypeError {
                op: "index".into(),
                found: other.type_name().into(),
            })
        }
    };
    match arr {
        Value::Array(a) => {
            let a = a.lock();
            if i < 0 || i as usize >= a.len() {
                return Err(RuntimeError::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                });
            }
            Ok(a[i as usize].clone())
        }
        Value::Str(s) => {
            if i < 0 || i as usize >= s.len() {
                return Err(RuntimeError::IndexOutOfBounds {
                    index: i,
                    len: s.len(),
                });
            }
            Ok(Value::str(s[i as usize..i as usize + 1].to_string()))
        }
        other => Err(RuntimeError::TypeError {
            op: "index".into(),
            found: other.type_name().into(),
        }),
    }
}

fn index_set(arr: &Value, idx: &Value, v: Value) -> Result<(), RuntimeError> {
    let i = match idx {
        Value::Int(x) => *x,
        other => {
            return Err(RuntimeError::TypeError {
                op: "index".into(),
                found: other.type_name().into(),
            })
        }
    };
    match arr {
        Value::Array(a) => {
            let mut a = a.lock();
            let len = a.len();
            if i < 0 || i as usize >= len {
                return Err(RuntimeError::IndexOutOfBounds { index: i, len });
            }
            a[i as usize] = v;
            Ok(())
        }
        other => Err(RuntimeError::TypeError {
            op: "index assignment".into(),
            found: other.type_name().into(),
        }),
    }
}

fn as_mutex(v: Option<&Value>, op: &str) -> Result<usize, RuntimeError> {
    match v {
        Some(Value::Mutex(m)) => Ok(*m),
        Some(other) => Err(RuntimeError::TypeError {
            op: op.into(),
            found: other.type_name().into(),
        }),
        None => Err(RuntimeError::Internal(format!("{op} with empty stack"))),
    }
}

fn as_sem(v: Option<&Value>, op: &str) -> Result<usize, RuntimeError> {
    match v {
        Some(Value::Semaphore(s)) => Ok(*s),
        Some(other) => Err(RuntimeError::TypeError {
            op: op.into(),
            found: other.type_name().into(),
        }),
        None => Err(RuntimeError::Internal(format!("{op} with empty stack"))),
    }
}

fn as_chan(v: Option<&Value>, op: &str) -> Result<usize, RuntimeError> {
    match v {
        Some(Value::Channel(c)) => Ok(*c),
        Some(other) => Err(RuntimeError::TypeError {
            op: op.into(),
            found: other.type_name().into(),
        }),
        None => Err(RuntimeError::Internal(format!("{op} with empty stack"))),
    }
}

fn as_str(v: Value, op: &str) -> Result<String, RuntimeError> {
    match v {
        Value::Str(s) => Ok(s.as_ref().clone()),
        other => Err(RuntimeError::TypeError {
            op: op.into(),
            found: other.type_name().into(),
        }),
    }
}
