//! Runtime values.
//!
//! The VM runs all green threads on one OS thread, but compiled programs
//! (and their constant pools) travel across OS threads — the portal stores
//! them and bench harnesses fan them out — so shared structures use
//! `Arc<Mutex<..>>`. Inside a VM run the locks are never contended. Handles
//! (thread, mutex, semaphore, channel ids) are carried as dedicated
//! variants to catch misuse (e.g. `lock()` on a number that is not a mutex).

use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A minilang runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Immutable string.
    Str(Arc<String>),
    /// Mutable shared array.
    Array(Arc<Mutex<Vec<Value>>>),
    /// Thread handle returned by `spawn`.
    Thread(usize),
    /// Mutex handle returned by `mutex()`.
    Mutex(usize),
    /// Semaphore handle returned by `semaphore(n)`.
    Semaphore(usize),
    /// Channel handle returned by `channel(cap)`.
    Channel(usize),
    /// Condition-variable handle returned by `condvar()`.
    Cond(usize),
    /// The unit value (statements, functions without return).
    Unit,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Arc::new(s.into()))
    }

    /// Build an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(Mutex::new(items)))
    }

    /// Truthiness: `false`, `0`, and `unit` are falsy; everything else truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Unit => false,
            Value::Str(s) => !s.is_empty(),
            Value::Array(a) => !a.lock().is_empty(),
            Value::Thread(_)
            | Value::Mutex(_)
            | Value::Semaphore(_)
            | Value::Channel(_)
            | Value::Cond(_) => true,
        }
    }

    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Thread(_) => "thread",
            Value::Mutex(_) => "mutex",
            Value::Semaphore(_) => "semaphore",
            Value::Channel(_) => "channel",
            Value::Cond(_) => "condvar",
            Value::Unit => "unit",
        }
    }

    /// Structural equality (used by `==`). Arrays compare element-wise.
    pub fn eq_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Thread(a), Value::Thread(b)) => a == b,
            (Value::Mutex(a), Value::Mutex(b)) => a == b,
            (Value::Semaphore(a), Value::Semaphore(b)) => a == b,
            (Value::Channel(a), Value::Channel(b)) => a == b,
            (Value::Cond(a), Value::Cond(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.lock(), b.lock());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.eq_value(y))
            }
            _ => false,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality, identical to [`Value::eq_value`]. Arrays compare
    /// element-wise (by reference first, as a fast path).
    fn eq(&self, other: &Self) -> bool {
        self.eq_value(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.lock().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Thread(t) => write!(f, "<thread {t}>"),
            Value::Mutex(m) => write!(f, "<mutex {m}>"),
            Value::Semaphore(s) => write!(f, "<semaphore {s}>"),
            Value::Channel(c) => write!(f, "<channel {c}>"),
            Value::Cond(c) => write!(f, "<condvar {c}>"),
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Unit.truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::array(vec![]).truthy());
        assert!(Value::Thread(0).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(
            Value::array(vec![Value::Int(1), Value::str("a")]).to_string(),
            "[1, a]"
        );
        assert_eq!(Value::Unit.to_string(), "()");
    }

    #[test]
    fn equality_structural_and_by_ref() {
        let a = Value::array(vec![Value::Int(1)]);
        let b = Value::array(vec![Value::Int(1)]);
        assert!(a.eq_value(&b));
        assert!(a.eq_value(&a.clone()));
        assert!(!Value::Int(1).eq_value(&Value::Bool(true)));
        assert!(!Value::Mutex(0).eq_value(&Value::Semaphore(0)));
    }

    #[test]
    fn array_shared_mutation_visible() {
        let a = Value::array(vec![Value::Int(1)]);
        let b = a.clone();
        if let Value::Array(arr) = &a {
            arr.lock().push(Value::Int(2));
        }
        if let Value::Array(arr) = &b {
            assert_eq!(arr.lock().len(), 2);
        }
    }
}
