//! # minilang — the teaching language and virtual machine
//!
//! The portal's job is "limited platform processing, compilation and
//! execution of C, C++, and Java source code" (§I). We cannot ship gcc and
//! a JVM inside a Rust reproduction, so this crate supplies the equivalent
//! substrate: a small imperative language with the exact concurrency
//! surface the course labs need — threads, mutexes, semaphores, channels,
//! test-and-set, atomic add — compiled to bytecode and executed by a
//! preemptive green-thread VM with a *seeded, deterministic* scheduler.
//!
//! Determinism is the pedagogical win over a real JVM: a data race or a
//! dining-philosophers deadlock found with seed 17 reproduces with seed 17,
//! every time, so the autograder can assert "the buggy program loses
//! updates" and "the fixed program never does".
//!
//! Pipeline: [`lexer`] → [`parser`] → [`compiler`] → [`vm`].
//!
//! ```
//! use minilang::compile_and_run;
//!
//! let src = r#"
//!     fn main() {
//!         var i = 0;
//!         while (i < 3) { println(i); i = i + 1; }
//!     }
//! "#;
//! let out = compile_and_run(src, 0).unwrap();
//! assert_eq!(out.stdout, "0\n1\n2\n");
//! ```

pub mod ast;
pub mod bytecode;
pub mod compiler;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod value;
pub mod vm;

pub use bytecode::Program;
pub use error::{CompileError, LangError, LexError, ParseError, RuntimeError};
pub use value::Value;
pub use vm::{
    ExecOutcome, HostIo, MemLoc, MemoryIo, OpKey, OpKind, OpObj, SchedPolicy, Vm, VmConfig,
    VmEvent, VmSnapshot, WaitTarget,
};

/// Compile `src` and run its `main` with the default configuration and the
/// given scheduler seed. Convenience for tests, labs and the toolchain.
pub fn compile(src: &str) -> Result<Program, LangError> {
    let tokens = lexer::lex(src)?;
    let ast = parser::parse(tokens)?;
    let prog = compiler::compile(&ast)?;
    Ok(prog)
}

/// Compile and execute in one step; `seed` drives preemption points.
pub fn compile_and_run(src: &str, seed: u64) -> Result<ExecOutcome, LangError> {
    let prog = compile(src)?;
    let mut vm = Vm::new(
        prog,
        VmConfig {
            seed,
            ..VmConfig::default()
        },
    );
    Ok(vm.run()?)
}
