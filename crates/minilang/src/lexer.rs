//! The lexer: source text to a token stream with positions.

use crate::error::{LexError, Pos};
use std::fmt;

/// Token kinds. Keywords are distinguished from identifiers at lex time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals and names.
    /// Integer literal.
    Int(i64),
    /// String literal (escapes resolved).
    Str(String),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    /// `spawn`
    Spawn,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,

    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
            other => {
                let s = match other {
                    Tok::Fn => "fn",
                    Tok::Var => "var",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::For => "for",
                    Tok::Return => "return",
                    Tok::Break => "break",
                    Tok::Continue => "continue",
                    Tok::True => "true",
                    Tok::False => "false",
                    Tok::Spawn => "spawn",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Assign => "=",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Bang => "!",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind/payload.
    pub tok: Tok,
    /// Start position.
    pub pos: Pos,
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.pos(),
            message: message.into(),
        }
    }
}

/// Lex `src` into tokens (with a trailing [`Tok::Eof`]).
///
/// Comments: `//` to end of line and `/* ... */` (non-nesting).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match lx.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    lx.bump();
                }
                Some(b'/') if lx.peek2() == Some(b'/') => {
                    while let Some(c) = lx.peek() {
                        if c == b'\n' {
                            break;
                        }
                        lx.bump();
                    }
                }
                Some(b'/') if lx.peek2() == Some(b'*') => {
                    let start = lx.pos();
                    lx.bump();
                    lx.bump();
                    let mut closed = false;
                    while let Some(c) = lx.bump() {
                        if c == b'*' && lx.peek() == Some(b'/') {
                            lx.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(LexError {
                            pos: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                }
                _ => break,
            }
        }
        let pos = lx.pos();
        let Some(c) = lx.peek() else {
            out.push(Token { tok: Tok::Eof, pos });
            return Ok(out);
        };
        let tok = match c {
            b'0'..=b'9' => {
                let mut v: i64 = 0;
                while let Some(d) = lx.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    v = v
                        .checked_mul(10)
                        .and_then(|x| x.checked_add((d - b'0') as i64))
                        .ok_or_else(|| lx.err("integer literal overflows i64"))?;
                    lx.bump();
                }
                if matches!(lx.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    return Err(lx.err("identifier cannot start with a digit"));
                }
                Tok::Int(v)
            }
            b'"' => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.bump() {
                        None => {
                            return Err(LexError {
                                pos,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(b'"') => break,
                        Some(b'\\') => match lx.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'"') => s.push('"'),
                            Some(b'0') => s.push('\0'),
                            other => {
                                return Err(lx.err(format!(
                                    "bad escape \\{}",
                                    other.map(|c| c as char).unwrap_or('?')
                                )))
                            }
                        },
                        Some(b) => s.push(b as char),
                    }
                }
                Tok::Str(s)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut s = String::new();
                while let Some(c) = lx.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "fn" => Tok::Fn,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "spawn" => Tok::Spawn,
                    _ => Tok::Ident(s),
                }
            }
            _ => {
                lx.bump();
                match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b',' => Tok::Comma,
                    b';' => Tok::Semi,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'=' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Eq
                        } else {
                            Tok::Assign
                        }
                    }
                    b'!' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Ne
                        } else {
                            Tok::Bang
                        }
                    }
                    b'<' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    b'>' => {
                        if lx.peek() == Some(b'=') {
                            lx.bump();
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    b'&' => {
                        if lx.peek() == Some(b'&') {
                            lx.bump();
                            Tok::AndAnd
                        } else {
                            return Err(LexError {
                                pos,
                                message: "expected && (bitwise & unsupported)".into(),
                            });
                        }
                    }
                    b'|' => {
                        if lx.peek() == Some(b'|') {
                            lx.bump();
                            Tok::OrOr
                        } else {
                            return Err(LexError {
                                pos,
                                message: "expected || (bitwise | unsupported)".into(),
                            });
                        }
                    }
                    other => {
                        return Err(LexError {
                            pos,
                            message: format!("unexpected character {:?}", other as char),
                        })
                    }
                }
            }
        };
        out.push(Token { tok, pos });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("fn main() { var x = 1 + 2; }"),
            vec![
                Tok::Fn,
                Tok::Ident("main".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::Var,
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(2),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_two_char() {
        assert_eq!(
            kinds("== != <= >= && || < > = !"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Lt,
                Tok::Gt,
                Tok::Assign,
                Tok::Bang,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb\t\"q\"""#),
            vec![Tok::Str("a\nb\t\"q\"".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // line\n /* block\n over lines */ 2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("#").is_err());
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn overflow_literal_rejected() {
        assert!(lex("99999999999999999999").is_err());
        assert_eq!(
            kinds(&i64::MAX.to_string()),
            vec![Tok::Int(i64::MAX), Tok::Eof]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("spawn spawner if iffy"),
            vec![
                Tok::Spawn,
                Tok::Ident("spawner".into()),
                Tok::If,
                Tok::Ident("iffy".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn digit_prefixed_ident_rejected() {
        assert!(lex("123abc").is_err());
    }
}
