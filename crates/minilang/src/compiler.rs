//! AST → bytecode compiler: name resolution, scoping, jump patching.

use crate::ast::*;
use crate::bytecode::{Builtin, FnId, Function, Instr, Program};
use crate::error::{CompileError, Pos};
use crate::value::Value;
use std::collections::HashMap;

/// Compile a parsed program. Requires a zero-argument `main`.
pub fn compile(ast: &ProgramAst) -> Result<Program, CompileError> {
    Compiler::new(ast)?.run(ast)
}

struct Compiler {
    consts: Vec<Value>,
    global_slots: HashMap<String, usize>,
    global_names: Vec<String>,
    fn_ids: HashMap<String, FnId>,
    fn_arities: Vec<usize>,
}

struct FnCtx {
    code: Vec<Instr>,
    /// Stack of scopes; each maps name -> slot.
    scopes: Vec<HashMap<String, usize>>,
    next_slot: usize,
    max_slots: usize,
    /// (break_patch_sites, continue_patch_sites) per enclosing loop.
    loops: Vec<(Vec<usize>, Vec<usize>)>,
}

impl FnCtx {
    fn new() -> FnCtx {
        FnCtx {
            code: Vec::new(),
            scopes: vec![HashMap::new()],
            next_slot: 0,
            max_slots: 0,
            loops: Vec::new(),
        }
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch_jump(&mut self, site: usize, target: usize) {
        match &mut self.code[site] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        let scope = self.scopes.pop().expect("scope underflow");
        // Slots are not reused across sibling scopes; simpler and safe.
        let _ = scope;
    }

    fn declare_local(&mut self, name: &str) -> usize {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slots = self.max_slots.max(self.next_slot);
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_string(), slot);
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<usize> {
        for scope in self.scopes.iter().rev() {
            if let Some(&slot) = scope.get(name) {
                return Some(slot);
            }
        }
        None
    }
}

impl Compiler {
    fn new(ast: &ProgramAst) -> Result<Compiler, CompileError> {
        let mut global_slots = HashMap::new();
        let mut global_names = Vec::new();
        for g in &ast.globals {
            if global_slots.contains_key(&g.name) {
                return Err(CompileError {
                    pos: g.pos,
                    message: format!("duplicate global `{}`", g.name),
                });
            }
            global_slots.insert(g.name.clone(), global_names.len());
            global_names.push(g.name.clone());
        }
        let mut fn_ids = HashMap::new();
        let mut fn_arities = Vec::new();
        for (i, f) in ast.functions.iter().enumerate() {
            if fn_ids.contains_key(&f.name) {
                return Err(CompileError {
                    pos: f.pos,
                    message: format!("duplicate function `{}`", f.name),
                });
            }
            if Builtin::from_name(&f.name).is_some() {
                return Err(CompileError {
                    pos: f.pos,
                    message: format!("function `{}` shadows a builtin", f.name),
                });
            }
            fn_ids.insert(f.name.clone(), i);
            fn_arities.push(f.params.len());
        }
        Ok(Compiler {
            consts: Vec::new(),
            global_slots,
            global_names,
            fn_ids,
            fn_arities,
        })
    }

    fn run(mut self, ast: &ProgramAst) -> Result<Program, CompileError> {
        let mut functions = Vec::with_capacity(ast.functions.len() + 1);
        for f in &ast.functions {
            functions.push(self.compile_fn(f)?);
        }
        // Synthesized global initializer.
        let mut ctx = FnCtx::new();
        for g in &ast.globals {
            let slot = self.global_slots[&g.name];
            match &g.init {
                Some(e) => self.expr(&mut ctx, e)?,
                None => {
                    let c = self.const_slot(Value::Int(0));
                    ctx.emit(Instr::Const(c));
                }
            }
            ctx.emit(Instr::StoreGlobal(slot));
        }
        let unit = self.const_slot(Value::Unit);
        ctx.emit(Instr::Const(unit));
        ctx.emit(Instr::Return);
        let init = functions.len();
        functions.push(Function {
            name: "__init".into(),
            arity: 0,
            locals: ctx.max_slots,
            code: ctx.code,
        });

        let entry = *self.fn_ids.get("main").ok_or(CompileError {
            pos: Pos::default(),
            message: "program has no `main` function".into(),
        })?;
        if self.fn_arities[entry] != 0 {
            return Err(CompileError {
                pos: Pos::default(),
                message: "`main` must take no parameters".into(),
            });
        }
        Ok(Program {
            consts: self.consts,
            global_names: self.global_names,
            functions,
            entry,
            init,
        })
    }

    fn const_slot(&mut self, v: Value) -> usize {
        // Dedup simple constants to keep the pool small.
        for (i, existing) in self.consts.iter().enumerate() {
            let same = match (existing, &v) {
                (Value::Int(a), Value::Int(b)) => a == b,
                (Value::Bool(a), Value::Bool(b)) => a == b,
                (Value::Str(a), Value::Str(b)) => a == b,
                (Value::Unit, Value::Unit) => true,
                _ => false,
            };
            if same {
                return i;
            }
        }
        self.consts.push(v);
        self.consts.len() - 1
    }

    fn compile_fn(&mut self, f: &FnDecl) -> Result<Function, CompileError> {
        let mut ctx = FnCtx::new();
        for p in &f.params {
            if ctx.lookup_local(p).is_some() {
                return Err(CompileError {
                    pos: f.pos,
                    message: format!("duplicate parameter `{p}`"),
                });
            }
            ctx.declare_local(p);
        }
        self.block(&mut ctx, &f.body)?;
        // Implicit `return ()`.
        let unit = self.const_slot(Value::Unit);
        ctx.emit(Instr::Const(unit));
        ctx.emit(Instr::Return);
        Ok(Function {
            name: f.name.clone(),
            arity: f.params.len(),
            locals: ctx.max_slots,
            code: ctx.code,
        })
    }

    fn block(&mut self, ctx: &mut FnCtx, stmts: &[Stmt]) -> Result<(), CompileError> {
        ctx.push_scope();
        for s in stmts {
            self.stmt(ctx, s)?;
        }
        ctx.pop_scope();
        Ok(())
    }

    fn stmt(&mut self, ctx: &mut FnCtx, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Var { name, init, pos } => {
                if ctx.scopes.last().expect("scope").contains_key(name) {
                    return Err(CompileError {
                        pos: *pos,
                        message: format!("`{name}` already declared in this scope"),
                    });
                }
                match init {
                    Some(e) => self.expr(ctx, e)?,
                    None => {
                        let c = self.const_slot(Value::Int(0));
                        ctx.emit(Instr::Const(c));
                    }
                }
                let slot = ctx.declare_local(name);
                ctx.emit(Instr::StoreLocal(slot));
                Ok(())
            }
            Stmt::Assign { target, value, pos } => match target {
                LValue::Name(name) => {
                    self.expr(ctx, value)?;
                    if let Some(slot) = ctx.lookup_local(name) {
                        ctx.emit(Instr::StoreLocal(slot));
                    } else if let Some(&slot) = self.global_slots.get(name) {
                        ctx.emit(Instr::StoreGlobal(slot));
                    } else {
                        return Err(CompileError {
                            pos: *pos,
                            message: format!("assignment to undeclared variable `{name}`"),
                        });
                    }
                    Ok(())
                }
                LValue::Index { array, index } => {
                    self.expr(ctx, array)?;
                    self.expr(ctx, index)?;
                    self.expr(ctx, value)?;
                    ctx.emit(Instr::IndexSet);
                    Ok(())
                }
            },
            Stmt::Expr(e) => {
                self.expr(ctx, e)?;
                ctx.emit(Instr::Pop);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.expr(ctx, cond)?;
                let jf = ctx.emit(Instr::JumpIfFalse(0));
                self.block(ctx, then_body)?;
                if else_body.is_empty() {
                    let end = ctx.here();
                    ctx.patch_jump(jf, end);
                } else {
                    let jend = ctx.emit(Instr::Jump(0));
                    let else_at = ctx.here();
                    ctx.patch_jump(jf, else_at);
                    self.block(ctx, else_body)?;
                    let end = ctx.here();
                    ctx.patch_jump(jend, end);
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                let top = ctx.here();
                self.expr(ctx, cond)?;
                let jf = ctx.emit(Instr::JumpIfFalse(0));
                ctx.loops.push((Vec::new(), Vec::new()));
                self.block(ctx, body)?;
                ctx.emit(Instr::Jump(top));
                let end = ctx.here();
                ctx.patch_jump(jf, end);
                let (breaks, continues) = ctx.loops.pop().expect("loop frame");
                for b in breaks {
                    ctx.patch_jump(b, end);
                }
                for c in continues {
                    ctx.patch_jump(c, top);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                ctx.push_scope();
                if let Some(i) = init {
                    self.stmt(ctx, i)?;
                }
                let top = ctx.here();
                let jf = match cond {
                    Some(c) => {
                        self.expr(ctx, c)?;
                        Some(ctx.emit(Instr::JumpIfFalse(0)))
                    }
                    None => None,
                };
                ctx.loops.push((Vec::new(), Vec::new()));
                self.block(ctx, body)?;
                let step_at = ctx.here();
                if let Some(st) = step {
                    self.stmt(ctx, st)?;
                }
                ctx.emit(Instr::Jump(top));
                let end = ctx.here();
                if let Some(jf) = jf {
                    ctx.patch_jump(jf, end);
                }
                let (breaks, continues) = ctx.loops.pop().expect("loop frame");
                for b in breaks {
                    ctx.patch_jump(b, end);
                }
                for c in continues {
                    ctx.patch_jump(c, step_at);
                }
                ctx.pop_scope();
                Ok(())
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(e) => self.expr(ctx, e)?,
                    None => {
                        let unit = self.const_slot(Value::Unit);
                        ctx.emit(Instr::Const(unit));
                    }
                }
                ctx.emit(Instr::Return);
                Ok(())
            }
            Stmt::Break(pos) => {
                let site = ctx.emit(Instr::Jump(0));
                match ctx.loops.last_mut() {
                    Some((breaks, _)) => {
                        breaks.push(site);
                        Ok(())
                    }
                    None => Err(CompileError {
                        pos: *pos,
                        message: "`break` outside loop".into(),
                    }),
                }
            }
            Stmt::Continue(pos) => {
                let site = ctx.emit(Instr::Jump(0));
                match ctx.loops.last_mut() {
                    Some((_, continues)) => {
                        continues.push(site);
                        Ok(())
                    }
                    None => Err(CompileError {
                        pos: *pos,
                        message: "`continue` outside loop".into(),
                    }),
                }
            }
            Stmt::Block(stmts) => self.block(ctx, stmts),
        }
    }

    fn expr(&mut self, ctx: &mut FnCtx, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Int(v, _) => {
                let c = self.const_slot(Value::Int(*v));
                ctx.emit(Instr::Const(c));
                Ok(())
            }
            Expr::Bool(b, _) => {
                let c = self.const_slot(Value::Bool(*b));
                ctx.emit(Instr::Const(c));
                Ok(())
            }
            Expr::Str(s, _) => {
                let c = self.const_slot(Value::str(s.clone()));
                ctx.emit(Instr::Const(c));
                Ok(())
            }
            Expr::Name(name, pos) => {
                if let Some(slot) = ctx.lookup_local(name) {
                    ctx.emit(Instr::LoadLocal(slot));
                } else if let Some(&slot) = self.global_slots.get(name) {
                    ctx.emit(Instr::LoadGlobal(slot));
                } else {
                    return Err(CompileError {
                        pos: *pos,
                        message: format!("undeclared variable `{name}`"),
                    });
                }
                Ok(())
            }
            Expr::Array(items, _) => {
                for it in items {
                    self.expr(ctx, it)?;
                }
                ctx.emit(Instr::MakeArray(items.len()));
                Ok(())
            }
            Expr::Bin { op, lhs, rhs, .. } => {
                self.expr(ctx, lhs)?;
                self.expr(ctx, rhs)?;
                ctx.emit(match op {
                    BinOp::Add => Instr::Add,
                    BinOp::Sub => Instr::Sub,
                    BinOp::Mul => Instr::Mul,
                    BinOp::Div => Instr::Div,
                    BinOp::Mod => Instr::Mod,
                    BinOp::Eq => Instr::CmpEq,
                    BinOp::Ne => Instr::CmpNe,
                    BinOp::Lt => Instr::CmpLt,
                    BinOp::Le => Instr::CmpLe,
                    BinOp::Gt => Instr::CmpGt,
                    BinOp::Ge => Instr::CmpGe,
                });
                Ok(())
            }
            Expr::And(lhs, rhs, _) => {
                // lhs falsy -> false, else truthiness of rhs.
                self.expr(ctx, lhs)?;
                let jf1 = ctx.emit(Instr::JumpIfFalse(0));
                self.expr(ctx, rhs)?;
                let jf2 = ctx.emit(Instr::JumpIfFalse(0));
                let t = self.const_slot(Value::Bool(true));
                ctx.emit(Instr::Const(t));
                let jend = ctx.emit(Instr::Jump(0));
                let lfalse = ctx.here();
                ctx.patch_jump(jf1, lfalse);
                ctx.patch_jump(jf2, lfalse);
                let f = self.const_slot(Value::Bool(false));
                ctx.emit(Instr::Const(f));
                let end = ctx.here();
                ctx.patch_jump(jend, end);
                Ok(())
            }
            Expr::Or(lhs, rhs, _) => {
                self.expr(ctx, lhs)?;
                let jt1 = ctx.emit(Instr::JumpIfTrue(0));
                self.expr(ctx, rhs)?;
                let jt2 = ctx.emit(Instr::JumpIfTrue(0));
                let f = self.const_slot(Value::Bool(false));
                ctx.emit(Instr::Const(f));
                let jend = ctx.emit(Instr::Jump(0));
                let ltrue = ctx.here();
                ctx.patch_jump(jt1, ltrue);
                ctx.patch_jump(jt2, ltrue);
                let t = self.const_slot(Value::Bool(true));
                ctx.emit(Instr::Const(t));
                let end = ctx.here();
                ctx.patch_jump(jend, end);
                Ok(())
            }
            Expr::Un { op, expr, .. } => {
                self.expr(ctx, expr)?;
                ctx.emit(match op {
                    UnOp::Neg => Instr::Neg,
                    UnOp::Not => Instr::Not,
                });
                Ok(())
            }
            Expr::Index { array, index, .. } => {
                self.expr(ctx, array)?;
                self.expr(ctx, index)?;
                ctx.emit(Instr::IndexGet);
                Ok(())
            }
            Expr::Spawn { name, args, pos } => {
                let func = *self.fn_ids.get(name).ok_or_else(|| CompileError {
                    pos: *pos,
                    message: format!("spawn of unknown function `{name}`"),
                })?;
                if self.fn_arities[func] != args.len() {
                    return Err(CompileError {
                        pos: *pos,
                        message: format!(
                            "`{name}` takes {} arguments, spawn passes {}",
                            self.fn_arities[func],
                            args.len()
                        ),
                    });
                }
                for a in args {
                    self.expr(ctx, a)?;
                }
                ctx.emit(Instr::Spawn {
                    func,
                    argc: args.len(),
                });
                Ok(())
            }
            Expr::Call { name, args, pos } => {
                if let Some(&func) = self.fn_ids.get(name) {
                    if self.fn_arities[func] != args.len() {
                        return Err(CompileError {
                            pos: *pos,
                            message: format!(
                                "`{name}` takes {} arguments, call passes {}",
                                self.fn_arities[func],
                                args.len()
                            ),
                        });
                    }
                    for a in args {
                        self.expr(ctx, a)?;
                    }
                    ctx.emit(Instr::Call {
                        func,
                        argc: args.len(),
                    });
                    return Ok(());
                }
                let Some(builtin) = Builtin::from_name(name) else {
                    return Err(CompileError {
                        pos: *pos,
                        message: format!("unknown function `{name}`"),
                    });
                };
                let (lo, hi) = builtin.arity();
                if args.len() < lo || args.len() > hi {
                    return Err(CompileError {
                        pos: *pos,
                        message: format!(
                            "`{name}` expects {lo}..={hi} arguments, got {}",
                            args.len()
                        ),
                    });
                }
                // Atomics lower to dedicated instructions on a global slot.
                match builtin {
                    Builtin::Tas | Builtin::AtomicAdd => {
                        let Expr::Name(gname, gpos) = &args[0] else {
                            return Err(CompileError {
                                pos: args[0].pos(),
                                message: format!("`{name}` requires a global variable name"),
                            });
                        };
                        let Some(&slot) = self.global_slots.get(gname) else {
                            return Err(CompileError {
                                pos: *gpos,
                                message: format!("`{name}` target `{gname}` is not a global"),
                            });
                        };
                        if builtin == Builtin::Tas {
                            ctx.emit(Instr::Tas(slot));
                        } else {
                            self.expr(ctx, &args[1])?;
                            ctx.emit(Instr::AtomicAdd(slot));
                        }
                        Ok(())
                    }
                    _ => {
                        for a in args {
                            self.expr(ctx, a)?;
                        }
                        ctx.emit(Instr::CallBuiltin {
                            builtin,
                            argc: args.len(),
                        });
                        Ok(())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Program {
        compile(&parse(lex(src).unwrap()).unwrap()).unwrap()
    }

    fn compile_err(src: &str) -> CompileError {
        compile(&parse(lex(src).unwrap()).unwrap()).unwrap_err()
    }

    #[test]
    fn trivial_main_compiles() {
        let p = compile_src("fn main() { }");
        assert_eq!(p.functions[p.entry].name, "main");
        assert_eq!(p.functions[p.init].name, "__init");
        // main: Const(unit), Return.
        assert_eq!(p.functions[p.entry].code.len(), 2);
    }

    #[test]
    fn missing_main_rejected() {
        let e = compile_err("fn helper() { }");
        assert!(e.message.contains("main"));
        let e = compile_err("fn main(x) { }");
        assert!(e.message.contains("no parameters"));
    }

    #[test]
    fn global_shared_store_emitted() {
        let p = compile_src("var counter = 5; fn main() { counter = counter + 1; }");
        let code = &p.functions[p.entry].code;
        assert!(code.contains(&Instr::LoadGlobal(0)));
        assert!(code.contains(&Instr::StoreGlobal(0)));
        // Init stores the 5.
        assert!(p.functions[p.init].code.contains(&Instr::StoreGlobal(0)));
    }

    #[test]
    fn locals_resolve_before_globals() {
        let p = compile_src("var x = 1; fn main() { var x = 2; x = 3; }");
        let code = &p.functions[p.entry].code;
        assert!(code.contains(&Instr::StoreLocal(0)));
        assert!(!code.contains(&Instr::StoreGlobal(0)));
    }

    #[test]
    fn undeclared_names_rejected() {
        assert!(compile_err("fn main() { x = 1; }")
            .message
            .contains("undeclared"));
        assert!(compile_err("fn main() { var y = x + 1; }")
            .message
            .contains("undeclared"));
        assert!(compile_err("fn main() { frobnicate(); }")
            .message
            .contains("unknown function"));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        assert!(compile_err("var a; var a; fn main() { }")
            .message
            .contains("duplicate global"));
        assert!(compile_err("fn f() { } fn f() { } fn main() { }")
            .message
            .contains("duplicate function"));
        assert!(compile_err("fn main() { var a = 1; var a = 2; }")
            .message
            .contains("already declared"));
        assert!(compile_err("fn f(a, a) { } fn main() { }")
            .message
            .contains("duplicate parameter"));
    }

    #[test]
    fn shadowing_in_nested_block_allowed() {
        let p = compile_src("fn main() { var a = 1; { var a = 2; a = 3; } a = 4; }");
        // Two distinct slots used.
        assert!(p.functions[p.entry].locals >= 2);
    }

    #[test]
    fn break_continue_require_loop() {
        assert!(compile_err("fn main() { break; }")
            .message
            .contains("outside loop"));
        assert!(compile_err("fn main() { continue; }")
            .message
            .contains("outside loop"));
        compile_src("fn main() { while (true) { break; } }");
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(compile_err("fn main() { lock(); }")
            .message
            .contains("arguments"));
        assert!(compile_err("fn main() { send(1); }")
            .message
            .contains("arguments"));
        assert!(compile_err("fn w() {} fn main() { spawn w(1); }")
            .message
            .contains("arguments"));
        assert!(compile_err("fn w(a) {} fn main() { w(); }")
            .message
            .contains("arguments"));
    }

    #[test]
    fn tas_requires_global() {
        let p = compile_src("var flag; fn main() { var old = tas(flag); }");
        assert!(p.functions[p.entry].code.contains(&Instr::Tas(0)));
        assert!(compile_err("fn main() { var x = 0; tas(x); }")
            .message
            .contains("not a global"));
        assert!(compile_err("fn main() { tas(1 + 2); }")
            .message
            .contains("global variable name"));
    }

    #[test]
    fn atomic_add_lowering() {
        let p = compile_src("var n; fn main() { atomic_add(n, 5); }");
        assert!(p.functions[p.entry].code.contains(&Instr::AtomicAdd(0)));
    }

    #[test]
    fn builtin_shadowing_rejected() {
        assert!(compile_err("fn lock(m) { } fn main() { }")
            .message
            .contains("shadows a builtin"));
    }

    #[test]
    fn const_pool_dedup() {
        let p = compile_src("fn main() { var a = 7; var b = 7; var c = 7; }");
        let sevens = p
            .consts
            .iter()
            .filter(|v| matches!(v, Value::Int(7)))
            .count();
        assert_eq!(sevens, 1);
    }

    #[test]
    fn spawn_unknown_function_rejected() {
        assert!(compile_err("fn main() { spawn nope(); }")
            .message
            .contains("unknown function"));
    }
}
